//! Lightweight execution metrics.
//!
//! Counters are per-tasklet atomics aggregated on read; latency histograms
//! are owned by whoever measures (sink processors in the benches) behind a
//! mutex that is only touched at window-emission rate, never per event.
//!
//! On top of the raw handles sits [`MetricsRegistry`]: a tagged catalogue of
//! every instrument a job execution creates (the analogue of Jet's per-job
//! metrics system). Hot paths keep touching plain atomics / the shared
//! histogram mutex; the registry is only walked when someone asks for a
//! [`MetricsSnapshot`], which renders to Prometheus text format or JSON.
//!
//! Naming scheme: metric names are lowercase snake_case with a `jet_`
//! prefix; monotone counters end in `_total` (Prometheus convention).
//! Standard tags: `job`, `member`, `vertex`, `instance`, `ordinal`,
//! `worker`, `edge` — whichever subset identifies the instrument's scope.

use jet_util::Histogram;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Counters for one tasklet / processor instance.
#[derive(Debug, Default)]
pub struct TaskletCounters {
    /// Events consumed from inboxes.
    pub events_in: AtomicU64,
    /// Events emitted to the outbox.
    pub events_out: AtomicU64,
    /// Scheduling rounds that made progress.
    pub busy_rounds: AtomicU64,
    /// Scheduling rounds without progress.
    pub idle_rounds: AtomicU64,
    /// State records serialized into snapshots (charged by the simulator:
    /// saving large window state is what drives the paper's Fig. 13 tail).
    pub snapshot_records: AtomicU64,
    /// Bulk queue transfers performed (inbox fills, source outbox flushes).
    /// At most one per events_in/events_out increment — the cost model uses
    /// it to charge per-queue-hop overhead once per batch, not per item.
    pub queue_batches: AtomicU64,
    /// Bounded snapshot-record chunks written to the snapshot store. One
    /// per non-empty `save_snapshot` quantum: streaming snapshots write
    /// many small chunks where the old stop-the-world pass wrote one huge
    /// one, and the simulator charges the per-chunk store round-trip.
    pub snapshot_chunks: AtomicU64,
}

impl TaskletCounters {
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    #[inline]
    pub fn add_in(&self, n: u64) {
        self.events_in.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_out(&self, n: u64) {
        self.events_out.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_busy(&self, n: u64) {
        self.busy_rounds.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_idle(&self, n: u64) {
        self.idle_rounds.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_snapshot_records(&self, n: u64) {
        self.snapshot_records.fetch_add(n, Ordering::Relaxed);
    }

    pub fn snapshot_records(&self) -> u64 {
        self.snapshot_records.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn add_snapshot_chunks(&self, n: u64) {
        self.snapshot_chunks.fetch_add(n, Ordering::Relaxed);
    }

    pub fn snapshot_chunks(&self) -> u64 {
        self.snapshot_chunks.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn add_queue_batches(&self, n: u64) {
        self.queue_batches.fetch_add(n, Ordering::Relaxed);
    }

    pub fn queue_batches(&self) -> u64 {
        self.queue_batches.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.events_in.load(Ordering::Relaxed),
            self.events_out.load(Ordering::Relaxed),
            self.busy_rounds.load(Ordering::Relaxed),
            self.idle_rounds.load(Ordering::Relaxed),
        )
    }
}

/// A shareable histogram handle for latency recording from sink processors.
#[derive(Clone)]
pub struct SharedHistogram {
    inner: Arc<Mutex<Histogram>>,
}

impl SharedHistogram {
    pub fn new() -> Self {
        SharedHistogram {
            inner: Arc::new(Mutex::new(Histogram::latency())),
        }
    }

    // jet-analyze: allow(block) — histogram mutex: one steady-state recorder per handle, held for a bucket increment
    pub fn record(&self, v: u64) {
        self.inner.lock().record(v);
    }

    pub fn record_n(&self, v: u64, n: u64) {
        self.inner.lock().record_n(v, n);
    }

    /// Lock once and record a whole batch (sinks use this: one lock per
    /// inbox batch, never per event).
    // jet-analyze: allow(block) — one lock per inbox batch by design, never per event
    pub fn record_batch(&self, values: impl Iterator<Item = u64>) {
        let mut h = self.inner.lock();
        for v in values {
            h.record(v);
        }
    }

    /// Copy out the current histogram.
    pub fn snapshot(&self) -> Histogram {
        self.inner.lock().clone()
    }

    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    pub fn count(&self) -> u64 {
        self.inner.lock().count()
    }

    /// Value at an arbitrary percentile in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        self.inner.lock().percentile(p)
    }

    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    pub fn p9999(&self) -> u64 {
        self.percentile(99.99)
    }

    /// One-lock extraction of the standard quantile set plus count/min/max/
    /// mean — what bench bins and the JSON dump embed.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary::of(&self.inner.lock())
    }
}

/// Fixed quantile digest of a histogram at one point in time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
    pub p9999: u64,
}

impl HistogramSummary {
    pub fn of(h: &Histogram) -> Self {
        if h.count() == 0 {
            return HistogramSummary::default();
        }
        HistogramSummary {
            count: h.count(),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
            p50: h.percentile(50.0),
            p90: h.percentile(90.0),
            p99: h.percentile(99.0),
            p999: h.percentile(99.9),
            p9999: h.percentile(99.99),
        }
    }
}

impl Default for SharedHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Simple atomic event counter handle (used by sinks in tests/benches).
#[derive(Clone, Default)]
pub struct SharedCounter {
    inner: Arc<AtomicU64>,
}

impl SharedCounter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&self, n: u64) {
        self.inner.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }
}

/// Signed instantaneous value handle (queue depths, window sizes, lags).
#[derive(Clone, Default)]
pub struct SharedGauge {
    inner: Arc<AtomicI64>,
}

impl SharedGauge {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&self, v: i64) {
        self.inner.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.inner.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.inner.load(Ordering::Relaxed)
    }
}

/// Tag set identifying one instrument. Kept sorted by key so that equal tag
/// sets compare equal regardless of registration order.
pub type Tags = Vec<(String, String)>;

/// Convenience for building a sorted tag list from `&str` pairs.
pub fn tags(pairs: &[(&str, &str)]) -> Tags {
    let mut t: Tags = pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    t.sort();
    t
}

enum Instrument {
    Counter(SharedCounter),
    /// Monotone counter read through a closure — lets existing atomics (e.g.
    /// a field of [`TaskletCounters`]) feed the registry without relayout.
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    Gauge(SharedGauge),
    GaugeFn(Box<dyn Fn() -> i64 + Send + Sync>),
    Histogram(SharedHistogram),
}

struct Entry {
    name: String,
    tags: Tags,
    instrument: Instrument,
}

/// Catalogue of every instrument one member's job execution creates.
///
/// Registration happens at wiring time (cold); reads happen on `snapshot()`
/// (cold); the returned handles are the only thing hot paths touch. Default
/// tags (typically `job` and `member`) are merged into every instrument's
/// tag set at registration, so per-member registries can later be merged
/// into one job-level snapshot without key collisions.
#[derive(Default)]
pub struct MetricsRegistry {
    default_tags: Tags,
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_tags(default_tags: Tags) -> Self {
        let mut default_tags = default_tags;
        default_tags.sort();
        MetricsRegistry {
            default_tags,
            entries: Mutex::new(Vec::new()),
        }
    }

    fn full_tags(&self, tags: Tags) -> Tags {
        let mut t = tags;
        for (k, v) in &self.default_tags {
            if !t.iter().any(|(ek, _)| ek == k) {
                t.push((k.clone(), v.clone()));
            }
        }
        t.sort();
        t
    }

    fn register(&self, name: &str, tags: Tags, instrument: Instrument) {
        debug_assert!(
            name.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
            "metric names are lowercase snake_case: {name}"
        );
        let tags = self.full_tags(tags);
        let mut entries = self.entries.lock();
        // Re-registering the same (name, tags) replaces the old instrument,
        // keeping snapshots collision-free by construction.
        entries.retain(|e| !(e.name == name && e.tags == tags));
        entries.push(Entry {
            name: name.to_string(),
            tags,
            instrument,
        });
    }

    /// Register (or look up) a counter and return its handle.
    pub fn counter(&self, name: &str, tags: Tags) -> SharedCounter {
        let full = self.full_tags(tags);
        let mut entries = self.entries.lock();
        if let Some(e) = entries.iter().find(|e| e.name == name && e.tags == full) {
            if let Instrument::Counter(c) = &e.instrument {
                return c.clone();
            }
        }
        let c = SharedCounter::new();
        entries.retain(|e| !(e.name == name && e.tags == full));
        entries.push(Entry {
            name: name.to_string(),
            tags: full,
            instrument: Instrument::Counter(c.clone()),
        });
        c
    }

    /// Register a counter whose value is computed on read.
    pub fn counter_fn(&self, name: &str, tags: Tags, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.register(name, tags, Instrument::CounterFn(Box::new(f)));
    }

    /// Register (or look up) a gauge and return its handle.
    pub fn gauge(&self, name: &str, tags: Tags) -> SharedGauge {
        let full = self.full_tags(tags);
        let mut entries = self.entries.lock();
        if let Some(e) = entries.iter().find(|e| e.name == name && e.tags == full) {
            if let Instrument::Gauge(g) = &e.instrument {
                return g.clone();
            }
        }
        let g = SharedGauge::new();
        entries.retain(|e| !(e.name == name && e.tags == full));
        entries.push(Entry {
            name: name.to_string(),
            tags: full,
            instrument: Instrument::Gauge(g.clone()),
        });
        g
    }

    /// Register a gauge whose value is computed on read (e.g. a queue-depth
    /// probe reading the SPSC ring's position atomics).
    pub fn gauge_fn(&self, name: &str, tags: Tags, f: impl Fn() -> i64 + Send + Sync + 'static) {
        self.register(name, tags, Instrument::GaugeFn(Box::new(f)));
    }

    /// Register (or look up) a histogram and return its handle.
    pub fn histogram(&self, name: &str, tags: Tags) -> SharedHistogram {
        let full = self.full_tags(tags);
        let mut entries = self.entries.lock();
        if let Some(e) = entries.iter().find(|e| e.name == name && e.tags == full) {
            if let Instrument::Histogram(h) = &e.instrument {
                return h.clone();
            }
        }
        let h = SharedHistogram::new();
        entries.retain(|e| !(e.name == name && e.tags == full));
        entries.push(Entry {
            name: name.to_string(),
            tags: full,
            instrument: Instrument::Histogram(h.clone()),
        });
        h
    }

    /// Register an existing histogram handle under a name (sinks create the
    /// latency histogram first; the registry learns about it here).
    pub fn register_histogram(&self, name: &str, tags: Tags, h: SharedHistogram) {
        self.register(name, tags, Instrument::Histogram(h));
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read every instrument into a point-in-time snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock();
        let mut metrics: Vec<Metric> = entries
            .iter()
            .map(|e| Metric {
                name: e.name.clone(),
                tags: e.tags.clone(),
                value: match &e.instrument {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::CounterFn(f) => MetricValue::Counter(f()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::GaugeFn(f) => MetricValue::Gauge(f()),
                    Instrument::Histogram(h) => MetricValue::Histogram(h.summary()),
                },
            })
            .collect();
        metrics.sort_by(|a, b| (&a.name, &a.tags).cmp(&(&b.name, &b.tags)));
        MetricsSnapshot { metrics }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSummary),
}

#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    pub name: String,
    pub tags: Tags,
    pub value: MetricValue,
}

impl Metric {
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    pub fn as_counter(&self) -> Option<u64> {
        match self.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_gauge(&self) -> Option<i64> {
        match self.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_histogram(&self) -> Option<&HistogramSummary> {
        match &self.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

/// Point-in-time view over one or more registries, sorted by (name, tags).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub metrics: Vec<Metric>,
}

impl MetricsSnapshot {
    /// Merge another snapshot in. Identical (name, tags) keys combine:
    /// counters add, gauges add (they are occupancy-style values whose
    /// job-level meaning is the sum), histograms keep the larger digest.
    /// Distinct members carry a `member` tag, so cross-member merging is
    /// normally collision-free and this is pure concatenation.
    /// Stamp `key=value` onto every metric that does not already carry
    /// `key` — used to add job-level tags when aggregating member
    /// snapshots into one job view.
    pub fn with_tag(mut self, key: &str, value: &str) -> Self {
        for m in &mut self.metrics {
            if m.tag(key).is_none() {
                m.tags.push((key.to_string(), value.to_string()));
                m.tags.sort();
            }
        }
        self.metrics
            .sort_by(|a, b| (&a.name, &a.tags).cmp(&(&b.name, &b.tags)));
        self
    }

    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for m in &other.metrics {
            match self
                .metrics
                .iter_mut()
                .find(|e| e.name == m.name && e.tags == m.tags)
            {
                None => self.metrics.push(m.clone()),
                Some(existing) => match (&mut existing.value, &m.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                        if b.count > a.count {
                            *a = b.clone();
                        }
                    }
                    (v, _) => {
                        debug_assert!(false, "kind mismatch merging {}", m.name);
                        *v = m.value.clone();
                    }
                },
            }
        }
        self.metrics
            .sort_by(|a, b| (&a.name, &a.tags).cmp(&(&b.name, &b.tags)));
    }

    /// All metrics with this name.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Metric> {
        self.metrics.iter().filter(move |m| m.name == name)
    }

    /// The single metric with this exact name and tag subset (every given
    /// tag must match; the metric may carry more).
    pub fn find(&self, name: &str, tag_subset: &[(&str, &str)]) -> Option<&Metric> {
        self.metrics
            .iter()
            .find(|m| m.name == name && tag_subset.iter().all(|(k, v)| m.tag(k) == Some(*v)))
    }

    /// Sum of all counters with this name, optionally restricted to a tag
    /// subset. The job-level "how many events did vertex X emit" reads.
    pub fn counter_total(&self, name: &str, tag_subset: &[(&str, &str)]) -> u64 {
        self.get_all(name)
            .filter(|m| tag_subset.iter().all(|(k, v)| m.tag(k) == Some(*v)))
            .filter_map(Metric::as_counter)
            .sum()
    }

    /// Group counter sums by the value of one tag (e.g. per-vertex totals).
    pub fn counters_by(&self, name: &str, tag_key: &str) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for m in self.get_all(name) {
            if let (Some(tag), Some(v)) = (m.tag(tag_key), m.as_counter()) {
                *out.entry(tag.to_string()).or_insert(0) += v;
            }
        }
        out
    }

    /// Render in Prometheus text exposition format (version 0.0.4).
    /// Histograms render as summaries: `{quantile="..."}` series plus
    /// `_count` and `_sum`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for m in &self.metrics {
            if m.name != last_name {
                let kind = match m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "summary",
                };
                let _ = writeln!(
                    out,
                    "# HELP {} {}",
                    m.name,
                    prom_help_escape(&prom_help(&m.name))
                );
                let _ = writeln!(out, "# TYPE {} {}", m.name, kind);
                last_name = &m.name;
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", m.name, prom_labels(&m.tags, None), v);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", m.name, prom_labels(&m.tags, None), v);
                }
                MetricValue::Histogram(h) => {
                    for (q, v) in [
                        ("0.5", h.p50),
                        ("0.9", h.p90),
                        ("0.99", h.p99),
                        ("0.999", h.p999),
                        ("0.9999", h.p9999),
                    ] {
                        let _ = writeln!(out, "{}{} {}", m.name, prom_labels(&m.tags, Some(q)), v);
                    }
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        m.name,
                        prom_labels(&m.tags, None),
                        h.count
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        m.name,
                        prom_labels(&m.tags, None),
                        (h.mean * h.count as f64) as u64
                    );
                }
            }
        }
        out
    }

    /// Render as a JSON document (hand-rolled; the workspace has no JSON
    /// dependency). Shape:
    /// `{"metrics": [{"name": ..., "tags": {...}, "type": ..., ...}]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"tags\":{{", json_escape(&m.name));
            for (j, (k, v)) in m.tags.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
            }
            out.push_str("},");
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"type\":\"counter\",\"value\":{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"type\":\"gauge\",\"value\":{v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"type\":\"histogram\",\"count\":{},\"min\":{},\"max\":{},\
                         \"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\
                         \"p9999\":{}",
                        h.count, h.min, h.max, h.mean, h.p50, h.p90, h.p99, h.p999, h.p9999
                    );
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn prom_labels(tags: &Tags, quantile: Option<&str>) -> String {
    if tags.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in tags {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", k, prom_escape(v));
        first = false;
    }
    if let Some(q) = quantile {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "quantile=\"{q}\"");
    }
    out.push('}');
    out
}

fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// HELP-line escaping per the Prometheus text exposition format: only
/// backslash and newline (quotes are legal in help text, unlike in label
/// values).
fn prom_help_escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Derive a HELP string from the workspace's structured metric names
/// (`jet_<subject>[_<unit>|_total]`, enforced by jet-lint rule 6). Keeping
/// the text derived rather than registered per call site means every
/// instrument gets a spec-conformant `# HELP` line with zero registration
/// overhead.
fn prom_help(name: &str) -> String {
    fn capitalize(s: &str) -> String {
        let mut c = s.chars();
        match c.next() {
            Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
            None => String::new(),
        }
    }
    let body = name.strip_prefix("jet_").unwrap_or(name);
    if let Some(b) = body.strip_suffix("_total") {
        format!("Cumulative count of {}.", b.replace('_', " "))
    } else if let Some(b) = body.strip_suffix("_nanos") {
        format!("{} in nanoseconds.", capitalize(&b.replace('_', " ")))
    } else if let Some(b) = body.strip_suffix("_bytes") {
        format!("{} in bytes.", capitalize(&b.replace('_', " ")))
    } else {
        format!("{}.", capitalize(&body.replace('_', " ")))
    }
}

/// Escape a string for inclusion in a JSON string literal. Public because
/// `jet-bench`'s report writer emits JSON by hand too.
pub fn json_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = TaskletCounters::shared();
        c.add_in(5);
        c.add_in(2);
        c.add_out(3);
        let (i, o, _, _) = c.snapshot();
        assert_eq!((i, o), (7, 3));
    }

    #[test]
    fn shared_histogram_records_across_clones() {
        let h = SharedHistogram::new();
        let h2 = h.clone();
        h.record(100);
        h2.record(200);
        assert_eq!(h.count(), 2);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 2);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(snap.count(), 2, "snapshot must be independent");
    }

    #[test]
    fn shared_counter_is_shared() {
        let c = SharedCounter::new();
        let c2 = c.clone();
        c.add(1);
        c2.add(2);
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn histogram_summary_extracts_quantiles() {
        let h = SharedHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 10_000);
        assert!(
            (s.p50 as f64 - 5_000.0).abs() / 5_000.0 < 0.02,
            "p50={}",
            s.p50
        );
        assert!(
            (s.p99 as f64 - 9_900.0).abs() / 9_900.0 < 0.02,
            "p99={}",
            s.p99
        );
        assert!(
            (s.p9999 as f64 - 10_000.0).abs() / 10_000.0 < 0.02,
            "p9999={}",
            s.p9999
        );
        assert_eq!(h.p50(), s.p50);
        assert_eq!(h.p99(), s.p99);
        assert_eq!(h.p9999(), s.p9999);
    }

    #[test]
    fn registry_returns_same_handle_for_same_key() {
        let r = MetricsRegistry::with_tags(tags(&[("job", "j1"), ("member", "0")]));
        let a = r.counter("jet_events_in_total", tags(&[("vertex", "map")]));
        let b = r.counter("jet_events_in_total", tags(&[("vertex", "map")]));
        a.add(3);
        b.add(4);
        let snap = r.snapshot();
        assert_eq!(snap.metrics.len(), 1);
        assert_eq!(
            snap.counter_total("jet_events_in_total", &[("vertex", "map")]),
            7
        );
        // Default tags were merged in.
        assert_eq!(snap.metrics[0].tag("job"), Some("j1"));
        assert_eq!(snap.metrics[0].tag("member"), Some("0"));
    }

    #[test]
    fn snapshot_merge_aggregates_across_members() {
        let m0 = MetricsRegistry::with_tags(tags(&[("member", "0")]));
        let m1 = MetricsRegistry::with_tags(tags(&[("member", "1")]));
        m0.counter("jet_events_in_total", tags(&[("vertex", "src")]))
            .add(10);
        m1.counter("jet_events_in_total", tags(&[("vertex", "src")]))
            .add(32);
        m0.gauge("jet_queue_depth", tags(&[("vertex", "src")]))
            .set(5);
        let mut job = m0.snapshot();
        job.merge(&m1.snapshot());
        // Distinct member tags: both survive individually...
        assert_eq!(job.metrics.len(), 3);
        // ...and the per-vertex total spans members.
        assert_eq!(
            job.counter_total("jet_events_in_total", &[("vertex", "src")]),
            42
        );
        let by_member = job.counters_by("jet_events_in_total", "member");
        assert_eq!(by_member["0"], 10);
        assert_eq!(by_member["1"], 32);
    }

    #[test]
    fn merge_sums_identical_keys() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("jet_x_total", tags(&[])).add(1);
        b.counter("jet_x_total", tags(&[])).add(2);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.metrics.len(), 1);
        assert_eq!(s.counter_total("jet_x_total", &[]), 3);
    }

    #[test]
    fn merge_is_deterministic_across_member_orderings() {
        // Job-wide rollup must not depend on which member's snapshot merges
        // first: SimCluster iterates members in index order, but the
        // timeline and diagnostics would silently drift if order mattered.
        let member = |id: &str, events: u64, depth: i64, hist_count: u64| {
            let r = MetricsRegistry::with_tags(tags(&[("member", id)]));
            r.counter("jet_events_in_total", tags(&[("vertex", "src")]))
                .add(events);
            // Same key on every member (no member tag): merge must sum.
            let shared = MetricsRegistry::new();
            shared.counter("jet_shared_total", tags(&[])).add(events);
            shared.gauge("jet_queue_depth", tags(&[])).set(depth);
            let h = SharedHistogram::new();
            for i in 0..hist_count {
                h.record(1_000 * (i + 1));
            }
            shared.register_histogram("jet_latency_nanos", tags(&[]), h);
            let mut snap = r.snapshot();
            snap.merge(&shared.snapshot());
            snap
        };
        let snaps = [
            member("0", 10, 3, 5),
            member("1", 20, 4, 2),
            member("2", 5, 1, 9),
        ];
        let mut renderings = Vec::new();
        // All 6 permutations of 3 members.
        for perm in [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            let mut job = MetricsSnapshot::default();
            for i in perm {
                job.merge(&snaps[i]);
            }
            renderings.push(job.render_json());
        }
        for r in &renderings[1..] {
            assert_eq!(r, &renderings[0], "merge result depends on member order");
        }
        // And the rollup is the expected sum, not just self-consistent.
        let job = crate::metrics::MetricsSnapshot::default();
        let mut job = job;
        for s in &snaps {
            job.merge(s);
        }
        assert_eq!(job.counter_total("jet_shared_total", &[]), 35);
        assert_eq!(
            job.find("jet_queue_depth", &[]).unwrap().as_gauge(),
            Some(8)
        );
    }

    #[test]
    fn fn_instruments_read_live_values() {
        let r = MetricsRegistry::new();
        let src = Arc::new(AtomicU64::new(7));
        let src2 = src.clone();
        r.counter_fn("jet_live_total", tags(&[]), move || {
            src2.load(Ordering::Relaxed)
        });
        r.gauge_fn("jet_depth", tags(&[]), || -3);
        assert_eq!(r.snapshot().counter_total("jet_live_total", &[]), 7);
        src.store(9, Ordering::Relaxed);
        assert_eq!(r.snapshot().counter_total("jet_live_total", &[]), 9);
        assert_eq!(
            r.snapshot().find("jet_depth", &[]).unwrap().as_gauge(),
            Some(-3)
        );
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let r = MetricsRegistry::with_tags(tags(&[("job", "wordcount"), ("member", "0")]));
        r.counter(
            "jet_events_in_total",
            tags(&[("vertex", "tokenize\"quoted\"")]),
        )
        .add(5);
        r.gauge(
            "jet_queue_depth",
            tags(&[("vertex", "tokenize"), ("ordinal", "0")]),
        )
        .set(17);
        let h = r.histogram("jet_latency_nanos", tags(&[]));
        h.record(1000);
        h.record(2000);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE jet_events_in_total counter"));
        assert!(text.contains("# TYPE jet_queue_depth gauge"));
        assert!(text.contains("# TYPE jet_latency_nanos summary"));
        assert!(text.contains("vertex=\"tokenize\\\"quoted\\\"\""));
        assert!(text.contains("jet_latency_nanos_count"));
        assert!(text.contains("quantile=\"0.9999\""));
        // Every sample line is `name{labels} value` with a numeric value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(value.parse::<f64>().is_ok(), "bad sample line: {line}");
        }
    }

    #[test]
    fn prometheus_emits_help_before_type_once_per_name() {
        let r = MetricsRegistry::new();
        r.counter("jet_events_in_total", tags(&[("vertex", "a")]))
            .add(1);
        r.counter("jet_events_in_total", tags(&[("vertex", "b")]))
            .add(2);
        r.histogram("jet_latency_nanos", tags(&[])).record(5);
        let text = r.snapshot().render_prometheus();
        assert_eq!(
            text.matches("# HELP jet_events_in_total ").count(),
            1,
            "one HELP per name, not per series:\n{text}"
        );
        assert!(
            text.contains("# HELP jet_events_in_total Cumulative count of events in.\n"),
            "{text}"
        );
        assert!(
            text.contains("# HELP jet_latency_nanos Latency in nanoseconds.\n"),
            "{text}"
        );
        // HELP immediately precedes the matching TYPE.
        let lines: Vec<&str> = text.lines().collect();
        for (i, l) in lines.iter().enumerate() {
            if let Some(rest) = l.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap();
                assert!(
                    lines[i + 1].starts_with(&format!("# TYPE {name} ")),
                    "HELP for {name} not followed by its TYPE:\n{text}"
                );
            }
        }
    }

    #[test]
    fn prometheus_label_values_escape_backslash_quote_newline() {
        let r = MetricsRegistry::new();
        r.gauge("jet_queue_depth", tags(&[("vertex", "a\\b\"c\nd")]))
            .set(1);
        let text = r.snapshot().render_prometheus();
        assert!(
            text.contains("vertex=\"a\\\\b\\\"c\\nd\""),
            "label escaping broken:\n{text}"
        );
        // The raw newline must not survive into the exposition.
        let sample = text.lines().find(|l| !l.starts_with('#')).unwrap();
        assert!(sample.contains("jet_queue_depth{"), "{text}");
    }

    #[test]
    fn prometheus_help_escape_covers_backslash_and_newline() {
        assert_eq!(prom_help_escape("a\\b\nc"), "a\\\\b\\nc");
        assert_eq!(prom_help_escape("plain \"quoted\""), "plain \"quoted\"");
        // Derived help strings for the unit-suffix families.
        assert_eq!(
            prom_help("jet_bytes_sent_total"),
            "Cumulative count of bytes sent."
        );
        assert_eq!(prom_help("jet_state_bytes"), "State in bytes.");
        assert_eq!(prom_help("jet_queue_depth"), "Queue depth.");
    }

    #[test]
    fn json_rendering_escapes_and_nests() {
        let r = MetricsRegistry::new();
        r.counter("jet_x_total", tags(&[("vertex", "a\"b\\c")]))
            .add(1);
        let json = r.snapshot().render_json();
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.contains("\"vertex\":\"a\\\"b\\\\c\""));
        assert!(json.ends_with("]}"));
    }
}

//! Lightweight execution metrics.
//!
//! Counters are per-tasklet atomics aggregated on read; latency histograms
//! are owned by whoever measures (sink processors in the benches) behind a
//! mutex that is only touched at window-emission rate, never per event.

use jet_util::Histogram;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters for one tasklet / processor instance.
#[derive(Debug, Default)]
pub struct TaskletCounters {
    /// Events consumed from inboxes.
    pub events_in: AtomicU64,
    /// Events emitted to the outbox.
    pub events_out: AtomicU64,
    /// Scheduling rounds that made progress.
    pub busy_rounds: AtomicU64,
    /// Scheduling rounds without progress.
    pub idle_rounds: AtomicU64,
    /// State records serialized into snapshots (charged by the simulator:
    /// saving large window state is what drives the paper's Fig. 13 tail).
    pub snapshot_records: AtomicU64,
}

impl TaskletCounters {
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    #[inline]
    pub fn add_in(&self, n: u64) {
        self.events_in.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_out(&self, n: u64) {
        self.events_out.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_snapshot_records(&self, n: u64) {
        self.snapshot_records.fetch_add(n, Ordering::Relaxed);
    }

    pub fn snapshot_records(&self) -> u64 {
        self.snapshot_records.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.events_in.load(Ordering::Relaxed),
            self.events_out.load(Ordering::Relaxed),
            self.busy_rounds.load(Ordering::Relaxed),
            self.idle_rounds.load(Ordering::Relaxed),
        )
    }
}

/// A shareable histogram handle for latency recording from sink processors.
#[derive(Clone)]
pub struct SharedHistogram {
    inner: Arc<Mutex<Histogram>>,
}

impl SharedHistogram {
    pub fn new() -> Self {
        SharedHistogram { inner: Arc::new(Mutex::new(Histogram::latency())) }
    }

    pub fn record(&self, v: u64) {
        self.inner.lock().record(v);
    }

    pub fn record_n(&self, v: u64, n: u64) {
        self.inner.lock().record_n(v, n);
    }

    /// Lock once and record a whole batch (sinks use this: one lock per
    /// inbox batch, never per event).
    pub fn record_batch(&self, values: impl Iterator<Item = u64>) {
        let mut h = self.inner.lock();
        for v in values {
            h.record(v);
        }
    }

    /// Copy out the current histogram.
    pub fn snapshot(&self) -> Histogram {
        self.inner.lock().clone()
    }

    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    pub fn count(&self) -> u64 {
        self.inner.lock().count()
    }
}

impl Default for SharedHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Simple atomic event counter handle (used by sinks in tests/benches).
#[derive(Clone, Default)]
pub struct SharedCounter {
    inner: Arc<AtomicU64>,
}

impl SharedCounter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&self, n: u64) {
        self.inner.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = TaskletCounters::shared();
        c.add_in(5);
        c.add_in(2);
        c.add_out(3);
        let (i, o, _, _) = c.snapshot();
        assert_eq!((i, o), (7, 3));
    }

    #[test]
    fn shared_histogram_records_across_clones() {
        let h = SharedHistogram::new();
        let h2 = h.clone();
        h.record(100);
        h2.record(200);
        assert_eq!(h.count(), 2);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 2);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(snap.count(), 2, "snapshot must be independent");
    }

    #[test]
    fn shared_counter_is_shared() {
        let c = SharedCounter::new();
        let c2 = c.clone();
        c.add(1);
        c2.add(2);
        assert_eq!(c.get(), 3);
    }
}

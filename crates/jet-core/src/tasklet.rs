//! Tasklets: the small cooperative computation units that share worker
//! threads (paper §3.2, Fig. 4).
//!
//! A [`ProcessorTasklet`] drives one processor instance through a
//! non-blocking state machine. Every `call` is one short timeslice: flush
//! the outbox, then make whatever progress the current phase allows, then
//! yield. The phases mirror Jet's `ProcessorTasklet`:
//!
//! ```text
//! Process --(barrier aligned / snapshot requested)--> SaveSnapshot
//!   |  \--(an input's lanes all done)--> CompleteEdge --> Process
//!   \--(all inputs done)--> Complete --> EmitDone --> Drain --> Done
//! SaveSnapshot --> EmitBarrier --> Process (or EmitDone if terminal)
//! ```
//!
//! Barrier handling implements both consistency modes of §4.4: with
//! `ExactlyOnce`, a lane that delivered the current barrier is not drained
//! again until every lane aligned (channel blocking); with `AtLeastOnce`,
//! draining continues and the snapshot is taken when the last lane's
//! barrier arrives.

use crate::item::{Barrier, Item, SnapshotId, Ts};
use crate::metrics::{SharedHistogram, TaskletCounters};
use crate::outbound::OutboundCollector;
use crate::processor::{Guarantee, Inbox, Outbox, Processor, ProcessorContext};
use crate::snapshot::SnapshotRegistry;
use crate::trace::{TraceKind, TraceWriter};
use crate::watermark::{WatermarkCoalescer, WatermarkProbe, IDLE_CHANNEL};
use jet_queue::Conveyor;
use jet_util::clock::SharedClock;
use jet_util::progress::Progress;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Anything schedulable on a cooperative worker.
pub trait Tasklet: Send {
    /// One timeslice. Must not block and should stay well under 1 ms.
    fn call(&mut self) -> Progress;

    /// Diagnostic name.
    fn name(&self) -> &str;

    /// Cooperative tasklets share worker threads; non-cooperative ones get
    /// a dedicated thread (§3.1: blocking connectors).
    fn is_cooperative(&self) -> bool {
        true
    }

    /// Current execution state for diagnostics dumps (e.g. the processor
    /// phase). Infrastructure tasklets just report "running".
    fn state(&self) -> &'static str {
        "running"
    }

    /// Tenant job this tasklet belongs to for per-job scheduling quotas
    /// (§7.7). Job 0 is the shared pool: infrastructure tasklets and every
    /// vertex without a `job<N>-` name prefix live there.
    fn job(&self) -> u32 {
        0
    }
}

/// One input ordinal's wiring: the conveyor whose lanes are the parallel
/// upstream producers of that edge.
pub struct InputConveyor {
    pub ordinal: usize,
    pub priority: i32,
    pub conveyor: Conveyor<Item>,
}

struct InputState {
    ordinal: usize,
    priority: i32,
    conveyor: Conveyor<Item>,
    lane_done: Vec<bool>,
    done_count: usize,
    barrier_seen: Vec<bool>,
    barrier_count: usize,
    /// Offset of this ordinal's lane 0 in the global coalescer numbering.
    lane_offset: usize,
    edge_completed: bool,
}

impl InputState {
    fn lanes(&self) -> usize {
        self.conveyor.lane_count()
    }

    fn all_done(&self) -> bool {
        self.done_count == self.lanes()
    }

    fn aligned(&self) -> bool {
        (0..self.lanes()).all(|l| self.barrier_seen[l] || self.lane_done[l])
    }

    fn clear_barriers(&mut self) {
        self.barrier_seen.iter_mut().for_each(|b| *b = false);
        self.barrier_count = 0;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Process,
    SaveSnapshot,
    EmitBarrier,
    CompleteEdge(usize),
    Complete,
    EmitDone,
    Drain,
    Done,
}

/// Default number of events moved into the inbox per lane visit.
pub const DEFAULT_BATCH: usize = 256;

/// Tasklet driving one processor instance.
pub struct ProcessorTasklet {
    vertex: String,
    /// Tenant job id parsed from the vertex name (`job<N>-` prefix; 0 =
    /// shared pool).
    job: u32,
    processor: Box<dyn Processor>,
    ctx: ProcessorContext,
    inputs: Vec<InputState>,
    outputs: Vec<OutboundCollector>,
    outbox: Outbox,
    inbox: Inbox,
    /// Set when `process` left items in the inbox (outbox was full).
    pending_ordinal: Option<usize>,
    coalescer: WatermarkCoalescer,
    pending_wm: Option<Ts>,
    guarantee: Guarantee,
    registry: Arc<SnapshotRegistry>,
    last_snapshot: SnapshotId,
    current_barrier: Option<Barrier>,
    phase: Phase,
    batch: usize,
    rr_ordinal: usize,
    counters: Arc<TaskletCounters>,
    /// Outbox `events_queued_total` already credited to `counters`.
    events_out_synced: u64,
    /// Distribution of bulk-transfer sizes actually achieved on this
    /// tasklet's queue hops (inbox fills; outbox flush runs for sources) —
    /// exported as the `jet_edge_batch_size` histogram.
    batch_sizes: Option<SharedHistogram>,
    initialized: bool,
    retired: bool,
    is_source: bool,
    cooperative: bool,
    trace: TraceWriter,
    trace_name: u32,
    trace_clock: Option<SharedClock>,
    /// `(start_nanos, snapshot_id)` of the snapshot phase in flight.
    snapshot_started: Option<(u64, SnapshotId)>,
    wm_probe: Arc<WatermarkProbe>,
    /// Total queue-full stalls per output edge (shared with metric gauges).
    out_stalls: Arc<Vec<AtomicU64>>,
    /// Edges currently stalled — traces record the *transition* into a
    /// stall, not every fruitless retry, so rings aren't flooded.
    stalled_edges: Vec<bool>,
}

impl ProcessorTasklet {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        processor: Box<dyn Processor>,
        ctx: ProcessorContext,
        inputs: Vec<InputConveyor>,
        outputs: Vec<OutboundCollector>,
        registry: Arc<SnapshotRegistry>,
        batch: usize,
    ) -> Self {
        let mut lane_offset = 0;
        let mut input_states = Vec::with_capacity(inputs.len());
        for ic in inputs {
            let lanes = ic.conveyor.lane_count();
            input_states.push(InputState {
                ordinal: ic.ordinal,
                priority: ic.priority,
                conveyor: ic.conveyor,
                lane_done: vec![false; lanes],
                done_count: 0,
                barrier_seen: vec![false; lanes],
                barrier_count: 0,
                lane_offset,
                edge_completed: false,
            });
            lane_offset += lanes;
        }
        let is_source = input_states.is_empty();
        let cooperative = processor.is_cooperative();
        let out_edges = outputs.len();
        let guarantee = ctx.guarantee;
        let vertex = ctx.vertex.clone();
        let job = crate::fairness::job_of_vertex(&vertex);
        ProcessorTasklet {
            vertex,
            job,
            processor,
            ctx,
            inputs: input_states,
            outputs,
            outbox: Outbox::new(out_edges, batch.max(1)),
            inbox: Inbox::new(),
            pending_ordinal: None,
            coalescer: WatermarkCoalescer::new(lane_offset),
            pending_wm: None,
            guarantee,
            registry,
            last_snapshot: 0,
            current_barrier: None,
            phase: if is_source {
                Phase::Complete
            } else {
                Phase::Process
            },
            batch: batch.max(1),
            rr_ordinal: 0,
            counters: TaskletCounters::shared(),
            events_out_synced: 0,
            batch_sizes: None,
            initialized: false,
            retired: false,
            is_source,
            cooperative,
            trace: TraceWriter::disabled(),
            trace_name: 0,
            trace_clock: None,
            snapshot_started: None,
            wm_probe: WatermarkProbe::shared(),
            out_stalls: Arc::new((0..out_edges).map(|_| AtomicU64::new(0)).collect()),
            stalled_edges: vec![false; out_edges],
        }
    }

    /// Attach an execution-trace writer. `clock` supplies span timestamps
    /// (the cluster's virtual clock in simulation, wall clock otherwise).
    pub fn with_trace(mut self, writer: TraceWriter, clock: SharedClock) -> Self {
        self.trace_name = writer.intern(&self.vertex);
        self.trace = writer;
        self.trace_clock = Some(clock);
        self
    }

    pub fn counters(&self) -> Arc<TaskletCounters> {
        self.counters.clone()
    }

    /// Attach a histogram recording the bulk-transfer sizes this tasklet
    /// achieves on its queue hops (`jet_edge_batch_size`).
    pub fn with_batch_histogram(mut self, h: SharedHistogram) -> Self {
        self.batch_sizes = Some(h);
        self
    }

    /// Shared watermark position (seen vs. coalesced) for gauges and dumps.
    pub fn watermark_probe(&self) -> Arc<WatermarkProbe> {
        self.wm_probe.clone()
    }

    /// Per-output-edge queue-full stall totals, shared for metric export.
    pub fn stall_counters(&self) -> Arc<Vec<AtomicU64>> {
        self.out_stalls.clone()
    }

    #[inline]
    fn trace_now(&self) -> u64 {
        self.trace_clock
            .as_ref()
            .map(|c| c.now_nanos())
            .unwrap_or(0)
    }

    pub fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::Process => "process",
            Phase::SaveSnapshot => "save-snapshot",
            Phase::EmitBarrier => "emit-barrier",
            Phase::CompleteEdge(_) => "complete-edge",
            Phase::Complete => "complete",
            Phase::EmitDone => "emit-done",
            Phase::Drain => "drain",
            Phase::Done => "done",
        }
    }

    /// Deliver buffered outbox items into the outbound collectors, FIFO per
    /// edge, with control items broadcast to every target. A full downstream
    /// queue counts a backpressure stall for that edge; the transition into
    /// the stalled state is also recorded as a trace instant.
    fn flush_outbox(&mut self) -> bool {
        let mut any = false;
        let outbox = &mut self.outbox;
        let trace_ts = if self.trace.enabled() {
            self.trace_clock.as_ref().map(|c| c.now_nanos())
        } else {
            None
        };
        let is_source = self.is_source;
        for (i, col) in self.outputs.iter_mut().enumerate() {
            let buf = outbox.buf_mut(i);
            let mut stalled = false;
            while let Some(front) = buf.front() {
                if front.is_event() {
                    // Bulk-move the leading event run: one queue publish per
                    // target visited instead of one per item.
                    let moved = col.offer_event_run(buf, usize::MAX);
                    if moved > 0 {
                        any = true;
                        if is_source {
                            // Sources have no inbox fill; their queue-hop
                            // batches are the outbox flush runs.
                            self.counters.add_queue_batches(1);
                            if let Some(h) = &self.batch_sizes {
                                h.record(moved as u64);
                            }
                        }
                    }
                    if buf.front().is_some_and(Item::is_event) {
                        // Events remain: every viable target is full.
                        stalled = true;
                        break;
                    }
                } else if col.offer_to_all(front) {
                    buf.pop_front();
                    any = true;
                } else {
                    stalled = true;
                    break;
                }
            }
            if stalled {
                self.out_stalls[i].fetch_add(1, Ordering::Relaxed);
                if !self.stalled_edges[i] {
                    self.stalled_edges[i] = true;
                    if let Some(ts) = trace_ts {
                        self.trace
                            .record(TraceKind::Stall, ts, 0, self.trace_name, i as i64);
                    }
                }
            } else {
                self.stalled_edges[i] = false;
            }
        }
        any
    }

    fn all_aligned(&self) -> bool {
        self.current_barrier.is_some() && self.inputs.iter().all(|i| i.aligned())
    }

    /// Attempt to deliver a pending coalesced watermark to the processor.
    /// The all-idle marker bypasses the processor and is forwarded verbatim
    /// (it is a scheduling signal, not an event-time statement).
    fn settle_watermark(&mut self) -> bool {
        if let Some(wm) = self.pending_wm {
            let handled = if wm == crate::watermark::IDLE_CHANNEL {
                self.outbox
                    .broadcast(Item::Watermark(crate::watermark::IDLE_CHANNEL))
            } else {
                self.processor
                    .try_process_watermark(wm, &mut self.outbox, &self.ctx)
            };
            if handled {
                self.pending_wm = None;
                if wm != crate::watermark::IDLE_CHANNEL && self.trace.enabled() {
                    let ts = self.trace_now();
                    self.trace
                        .record(TraceKind::WmEmit, ts, 0, self.trace_name, wm);
                }
                return true;
            }
            return false;
        }
        true
    }

    fn note_coalesced(&mut self, advanced: Option<Ts>) {
        if let Some(wm) = advanced {
            debug_assert!(self.pending_wm.is_none());
            self.pending_wm = Some(wm);
            if wm != IDLE_CHANNEL {
                self.wm_probe.note_coalesced(wm);
                if self.trace.enabled() {
                    let ts = self.trace_now();
                    self.trace
                        .record(TraceKind::WmCoalesce, ts, 0, self.trace_name, wm);
                }
            }
        }
    }

    fn enter_snapshot(&mut self, barrier: Barrier) {
        self.current_barrier = Some(barrier);
        self.phase = Phase::SaveSnapshot;
    }

    /// The Process-phase drain over input conveyors. Returns `true` if any
    /// work was done.
    // jet-analyze: allow(panic) — phase-machine invariants: arms guarded by the preceding state checks
    fn drain_inputs(&mut self) -> bool {
        let mut worked = false;
        // Priority gating: only drain ordinals in the highest-priority
        // (numerically lowest) group that still has live lanes.
        let active_priority = self
            .inputs
            .iter()
            .filter(|i| !i.all_done())
            .map(|i| i.priority)
            .min();
        let Some(active_priority) = active_priority else {
            return worked;
        };
        let n = self.inputs.len();
        let exactly_once = self.guarantee == Guarantee::ExactlyOnce;
        for k in 0..n {
            let oi = (self.rr_ordinal + k) % n;
            if self.inputs[oi].all_done() || self.inputs[oi].priority != active_priority {
                continue;
            }
            let lanes = self.inputs[oi].lanes();
            for lane in 0..lanes {
                if self.inputs[oi].lane_done[lane] {
                    continue;
                }
                if exactly_once
                    && self.current_barrier.is_some()
                    && self.inputs[oi].barrier_seen[lane]
                {
                    continue; // §4.4: blocked until all channels align
                }
                // Fill the inbox with one bulk transfer per lane visit:
                // a single tail read and a single head publish move the
                // whole event run (up to the timeslice budget), stopping at
                // the first control item, which is handled one at a time
                // below.
                let budget = self.batch.saturating_sub(self.inbox.len());
                if budget > 0 {
                    let input = &mut self.inputs[oi];
                    let inbox = &mut self.inbox;
                    let moved =
                        input
                            .conveyor
                            .drain_lane_batch_while(lane, budget, Item::is_event, |it| {
                                let Item::Event { ts, obj } = it else {
                                    unreachable!("accept admits events only")
                                };
                                inbox.push(ts, obj);
                            });
                    if moved > 0 {
                        self.counters.add_queue_batches(1);
                        if let Some(h) = &self.batch_sizes {
                            h.record(moved as u64);
                        }
                    }
                }
                if !self.inbox.is_empty() {
                    let before = self.inbox.len();
                    let ordinal = self.inputs[oi].ordinal;
                    self.processor
                        .process(ordinal, &mut self.inbox, &mut self.outbox, &self.ctx);
                    let consumed = (before - self.inbox.len()) as u64;
                    self.counters.add_in(consumed);
                    if consumed > 0 {
                        worked = true;
                    }
                    if !self.inbox.is_empty() {
                        // Outbox full: remember and retry this ordinal first.
                        self.pending_ordinal = Some(ordinal);
                        self.rr_ordinal = oi;
                        return worked;
                    }
                }
                // Handle at most one control item at the head of this lane.
                let is_control = matches!(
                    self.inputs[oi].conveyor.peek_lane(lane),
                    Some(it) if it.is_control()
                );
                if !is_control {
                    continue;
                }
                // single-item: watermarks/barriers/done mutate coalescer and
                // alignment state per item, so they cannot be bulk-drained.
                let item = self.inputs[oi].conveyor.poll_lane(lane).expect("peeked");
                worked = true;
                let global_lane = self.inputs[oi].lane_offset + lane;
                match item {
                    Item::Watermark(w) => {
                        if w != IDLE_CHANNEL {
                            self.wm_probe.note_seen(w);
                        }
                        let adv = self.coalescer.observe(global_lane, w);
                        self.note_coalesced(adv);
                        if !self.settle_watermark() {
                            self.rr_ordinal = oi;
                            return worked;
                        }
                    }
                    Item::Barrier(b) => {
                        match self.current_barrier {
                            None => self.current_barrier = Some(b),
                            Some(cur) => debug_assert_eq!(
                                cur.snapshot_id, b.snapshot_id,
                                "overlapping snapshots in flight"
                            ),
                        }
                        self.inputs[oi].barrier_seen[lane] = true;
                        self.inputs[oi].barrier_count += 1;
                        if self.all_aligned() {
                            self.phase = Phase::SaveSnapshot;
                            self.rr_ordinal = oi;
                            return worked;
                        }
                    }
                    Item::Done => {
                        self.inputs[oi].lane_done[lane] = true;
                        self.inputs[oi].done_count += 1;
                        let adv = self.coalescer.channel_done(global_lane);
                        self.note_coalesced(adv);
                        if !self.settle_watermark() {
                            self.rr_ordinal = oi;
                            return worked;
                        }
                        // A done lane counts as aligned.
                        if self.all_aligned() {
                            self.phase = Phase::SaveSnapshot;
                            self.rr_ordinal = oi;
                            return worked;
                        }
                        if self.inputs[oi].all_done() {
                            self.phase = Phase::CompleteEdge(oi);
                            self.rr_ordinal = oi;
                            return worked;
                        }
                    }
                    Item::Event { .. } => unreachable!("peeked control"),
                }
            }
        }
        self.rr_ordinal = (self.rr_ordinal + 1) % n.max(1);
        worked
    }
}

impl ProcessorTasklet {
    // jet-analyze: allow(panic) — phase-machine invariants: the expects are guarded by the state checks above
    fn call_phase(&mut self) -> Progress {
        if self.phase == Phase::Done {
            return Progress::Done;
        }
        if !self.initialized {
            self.processor.init(&self.ctx);
            self.initialized = true;
        }
        let mut worked = self.flush_outbox();

        match self.phase {
            Phase::Process => {
                // Settle any deferred watermark before touching new input.
                if !self.settle_watermark() {
                    return Progress::from_worked(worked);
                }
                // Bounded background quantum: amortized eviction, resumed
                // window emission, deferred watermark forwarding.
                worked |= self.processor.tick(&mut self.outbox, &self.ctx);
                // Finish a partially-processed inbox first.
                if let Some(ordinal) = self.pending_ordinal {
                    let before = self.inbox.len();
                    self.processor
                        .process(ordinal, &mut self.inbox, &mut self.outbox, &self.ctx);
                    let consumed = before - self.inbox.len();
                    self.counters.add_in(consumed as u64);
                    worked |= consumed > 0;
                    if !self.inbox.is_empty() {
                        return Progress::from_worked(worked);
                    }
                    self.pending_ordinal = None;
                }
                // Barrier alignment might already hold (e.g. after restore).
                if self.all_aligned() {
                    self.phase = Phase::SaveSnapshot;
                    return Progress::MadeProgress;
                }
                worked |= self.drain_inputs();
                // All inputs done and completed -> move to Complete.
                if self.phase == Phase::Process
                    && self.inputs.iter().all(|i| i.all_done() && i.edge_completed)
                {
                    self.phase = Phase::Complete;
                    worked = true;
                }
                Progress::from_worked(worked)
            }
            Phase::SaveSnapshot => {
                let b = self
                    .current_barrier
                    .expect("snapshot phase without barrier");
                if self.trace.enabled() && self.snapshot_started.is_none() {
                    self.snapshot_started = Some((self.trace_now(), b.snapshot_id));
                }
                let done = self
                    .processor
                    .save_snapshot(b.snapshot_id, &mut self.outbox, &self.ctx);
                // Streaming snapshots: each quantum's bounded chunk of
                // records is written out immediately (the snapshot store
                // appends; a partial set of chunks never becomes a recovery
                // point because the barrier only commits after `done`).
                let records = self.outbox.take_snapshot_records();
                if !records.is_empty() {
                    self.counters.add_snapshot_records(records.len() as u64);
                    self.counters.add_snapshot_chunks(1);
                    self.registry
                        .write_records(b.snapshot_id, &self.vertex, records);
                }
                if done {
                    self.phase = Phase::EmitBarrier;
                }
                Progress::MadeProgress
            }
            Phase::EmitBarrier => {
                let b = self.current_barrier.expect("emit phase without barrier");
                if self.outbox.broadcast(Item::Barrier(b)) {
                    if let Some((start, sid)) = self.snapshot_started.take() {
                        let end = self.trace_now();
                        self.trace.record(
                            TraceKind::SnapshotPhase,
                            start,
                            end.saturating_sub(start).max(1),
                            self.trace_name,
                            sid as i64,
                        );
                    }
                    self.registry.ack(b.snapshot_id);
                    self.last_snapshot = b.snapshot_id;
                    self.current_barrier = None;
                    for input in &mut self.inputs {
                        input.clear_barriers();
                    }
                    self.flush_outbox();
                    self.phase = if b.terminal {
                        Phase::EmitDone
                    } else if self.is_source {
                        Phase::Complete
                    } else {
                        Phase::Process
                    };
                }
                Progress::MadeProgress
            }
            Phase::CompleteEdge(oi) => {
                let ordinal = self.inputs[oi].ordinal;
                if self
                    .processor
                    .complete_edge(ordinal, &mut self.outbox, &self.ctx)
                {
                    self.inputs[oi].edge_completed = true;
                    self.phase = if self.inputs.iter().all(|i| i.all_done() && i.edge_completed) {
                        Phase::Complete
                    } else {
                        Phase::Process
                    };
                }
                Progress::MadeProgress
            }
            Phase::Complete => {
                // Sources participate in snapshots from here (§4.4: "Jet
                // instructs source vertices to take a state snapshot").
                if self.is_source && self.registry.enabled() {
                    let req = self.registry.requested();
                    if req > self.last_snapshot {
                        if !self.outbox.is_fully_flushed() {
                            // Keep barriers ordered after buffered events.
                            return Progress::from_worked(worked);
                        }
                        self.enter_snapshot(Barrier {
                            snapshot_id: req,
                            terminal: self.registry.is_terminal(req),
                        });
                        return Progress::MadeProgress;
                    }
                }
                let before_out = self.outbox.buffered();
                let mut done = self.processor.complete(&mut self.outbox, &self.ctx);
                if self.is_source && self.ctx.is_cancelled() {
                    done = true;
                }
                let emitted = self.outbox.buffered() - before_out;
                worked |= emitted > 0;
                if done {
                    self.phase = Phase::EmitDone;
                    worked = true;
                }
                Progress::from_worked(worked)
            }
            Phase::EmitDone => {
                if self.outbox.broadcast(Item::Done) || self.outputs.is_empty() {
                    self.phase = Phase::Drain;
                }
                Progress::MadeProgress
            }
            Phase::Drain => {
                if self.outbox.is_fully_flushed() {
                    self.phase = Phase::Done;
                    if !self.retired {
                        self.retired = true;
                        self.registry.retire_participant();
                    }
                    return Progress::Done;
                }
                Progress::from_worked(worked)
            }
            Phase::Done => Progress::Done,
        }
    }
}

impl Tasklet for ProcessorTasklet {
    fn call(&mut self) -> Progress {
        let progress = self.call_phase();
        // Credit events_out from the outbox's monotone emission counter.
        // Counting at the outbox (not per phase) also credits transforms and
        // window operators, which emit from `process` — the old per-phase
        // accounting only saw sources emitting from `complete`.
        let queued = self.outbox.events_queued_total();
        if queued > self.events_out_synced {
            self.counters.add_out(queued - self.events_out_synced);
            self.events_out_synced = queued;
        }
        progress
    }

    fn name(&self) -> &str {
        &self.vertex
    }

    fn is_cooperative(&self) -> bool {
        self.cooperative
    }

    fn state(&self) -> &'static str {
        self.phase_name()
    }

    fn job(&self) -> u32 {
        self.job
    }
}

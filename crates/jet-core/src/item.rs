//! In-band items: everything that flows through an edge's queues.
//!
//! Jet signals watermarks, snapshot barriers, and end-of-stream *in-band*,
//! interleaved with events in the same SPSC queues — that is what lets a
//! tasklet handle all control flow without ever blocking (§3.2, §4.4).

use crate::object::BoxedObject;

/// Event-time / processing-time timestamp, nanoseconds. `i64` so sentinel
/// values (`Ts::MIN` for "no watermark yet") and lag arithmetic are natural.
pub type Ts = i64;

/// Identifier of one checkpoint round (monotonically increasing per job).
pub type SnapshotId = u64;

/// A snapshot barrier flowing through the dataflow (Chandy-Lamport, §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Barrier {
    pub snapshot_id: SnapshotId,
    /// Terminal barriers are used for suspend-with-snapshot: processing
    /// stops once the terminal snapshot completes.
    pub terminal: bool,
}

/// One slot's worth of in-band traffic.
pub enum Item {
    /// A data event with its event timestamp.
    Event { ts: Ts, obj: BoxedObject },
    /// Watermark: no event with `ts <= wm` will arrive on this channel.
    Watermark(Ts),
    /// Snapshot barrier.
    Barrier(Barrier),
    /// The producer on this channel is done; no more items will arrive.
    Done,
}

impl Item {
    pub fn event(ts: Ts, obj: BoxedObject) -> Item {
        Item::Event { ts, obj }
    }

    pub fn is_event(&self) -> bool {
        matches!(self, Item::Event { .. })
    }

    pub fn is_control(&self) -> bool {
        !self.is_event()
    }

    /// Approximate in-flight "wire size" used by the flow-control model:
    /// a fixed 16-byte frame header plus the payload's own size estimate
    /// (see [`crate::object::Object::approx_size`]), so receive windows
    /// react to what events actually weigh instead of a hardcoded guess.
    pub fn wire_size(&self) -> usize {
        match self {
            Item::Event { obj, .. } => 16 + obj.approx_size(),
            _ => 16,
        }
    }
}

impl Clone for Item {
    fn clone(&self) -> Self {
        match self {
            Item::Event { ts, obj } => Item::Event {
                ts: *ts,
                obj: obj.clone_object(),
            },
            Item::Watermark(w) => Item::Watermark(*w),
            Item::Barrier(b) => Item::Barrier(*b),
            Item::Done => Item::Done,
        }
    }
}

impl std::fmt::Debug for Item {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Item::Event { ts, obj } => write!(f, "Event(ts={ts}, {})", obj.debug_fmt()),
            Item::Watermark(w) => write!(f, "Watermark({w})"),
            Item::Barrier(b) => write!(
                f,
                "Barrier({}{})",
                b.snapshot_id,
                if b.terminal { ", terminal" } else { "" }
            ),
            Item::Done => write!(f, "Done"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{boxed, downcast};

    #[test]
    fn event_roundtrip() {
        let item = Item::event(5, boxed(99u32));
        assert!(item.is_event());
        assert!(!item.is_control());
        match item {
            Item::Event { ts, obj } => {
                assert_eq!(ts, 5);
                assert_eq!(*downcast::<u32>(obj), 99);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn clone_duplicates_payload() {
        let item = Item::event(1, boxed("x".to_string()));
        let copy = item.clone();
        match (item, copy) {
            (Item::Event { obj: a, .. }, Item::Event { obj: b, .. }) => {
                assert_eq!(*downcast::<String>(a), *downcast::<String>(b));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn control_items_are_control() {
        assert!(Item::Watermark(3).is_control());
        assert!(Item::Barrier(Barrier {
            snapshot_id: 1,
            terminal: false
        })
        .is_control());
        assert!(Item::Done.is_control());
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Item::Watermark(7)), "Watermark(7)");
        assert_eq!(
            format!(
                "{:?}",
                Item::Barrier(Barrier {
                    snapshot_id: 2,
                    terminal: true
                })
            ),
            "Barrier(2, terminal)"
        );
        assert_eq!(
            format!("{:?}", Item::event(1, boxed(3u8))),
            "Event(ts=1, 3)"
        );
    }
}

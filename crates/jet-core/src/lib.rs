//! # jet-core — the execution engine
//!
//! A Rust reconstruction of Hazelcast Jet's core (VLDB 2021: "Hazelcast Jet:
//! Low-latency Stream Processing at the 99.99th Percentile"). The engine
//! follows the paper's architecture:
//!
//! * **Dataflow DAGs** ([`dag`]) of vertices and edges with explicit
//!   routing (unicast / isolated / partitioned / broadcast), priorities and
//!   queue sizes — the Core API of §2.2.
//! * **Processors** ([`processor`], [`processors`]) with inbox/outbox and a
//!   strictly non-blocking cooperative contract — §3.2.
//! * **Tasklets** ([`tasklet`]) driving processors through snapshot
//!   barriers, watermark coalescing, edge priorities and completion — the
//!   coroutine-like units that share worker threads.
//! * **Executors** ([`exec`]): cooperative worker threads with progressive
//!   backoff (the paper's design), a deterministic sequential driver, and
//!   the thread-per-operator baseline used by the ablation benches.
//! * **Event time** ([`watermark`]): allowed-lag watermarks, idle-source
//!   handling, min-coalescing.
//! * **Snapshots** ([`snapshot`]): Chandy-Lamport aligned barriers with
//!   exactly-once and at-least-once modes (§4.4), persisted in the
//!   replicated in-memory grid (`jet-imdg`).
//! * **Flow-controlled distributed edges** ([`network`]): the adaptive
//!   receive-window protocol of §3.3.
//!
//! Single-member wiring lives in [`plan`]; multi-member wiring, recovery and
//! scaling live in the `jet-cluster` crate.

pub mod dag;
pub mod exec;
pub mod fairness;
pub mod flight;
pub mod item;
pub mod log;
pub mod metrics;
pub mod network;
pub mod object;
pub mod outbound;
pub mod plan;
pub mod processor;
pub mod processors;
pub mod snapshot;
pub mod state;
pub mod sync;
pub mod tasklet;
pub mod telemetry;
pub mod trace;
pub mod watermark;

pub use dag::{Dag, Edge, Routing, Vertex, VertexId};
pub use fairness::{job_of_vertex, FairPoller, JobQuotas};
pub use flight::{FlightRecorder, LatencyWatchdog};
pub use item::{Barrier, Item, SnapshotId, Ts};
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use object::{boxed, downcast, downcast_ref, BoxedObject, Object};
pub use processor::{
    supplier, Guarantee, Inbox, Outbox, Processor, ProcessorContext, ProcessorSupplier,
};
pub use snapshot::SnapshotRegistry;
pub use tasklet::{InputConveyor, ProcessorTasklet, Tasklet};
pub use trace::{SpanRecord, TraceData, TraceKind, TraceWriter, Tracer};

//! Executors: cooperative worker threads (the paper's design, §3.2) plus a
//! deterministic sequential driver used by tests and the simulator, plus the
//! thread-per-operator baseline executor used by the ablation benches.
//!
//! "Jet deploys as many JVM threads as there are CPU cores. [...] On each
//! thread, Jet runs a loop that executes its tasklets in a round-robin
//! fashion." A round with no progress from any tasklet engages the
//! progressive backoff idle strategy so idle jobs cost (almost) nothing —
//! the property multi-tenancy (§7.7) relies on.

use crate::tasklet::Tasklet;
use jet_util::idle::{BackoffIdle, IdleStrategy};
use jet_util::progress::Progress;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Handle to a running threaded execution.
pub struct ExecutionHandle {
    cancelled: Arc<AtomicBool>,
    live_tasklets: Arc<AtomicUsize>,
    joins: Vec<JoinHandle<()>>,
}

impl ExecutionHandle {
    /// Request cooperative cancellation: sources stop, the pipeline drains.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Number of tasklets that have not finished yet.
    pub fn live_tasklets(&self) -> usize {
        self.live_tasklets.load(Ordering::SeqCst)
    }

    pub fn is_finished(&self) -> bool {
        self.live_tasklets() == 0
    }

    /// Block until all workers exit (all tasklets `Done`).
    pub fn join(self) {
        for j in self.joins {
            let _ = j.join();
        }
    }

    /// Cancel and wait for completion.
    pub fn cancel_and_join(self) {
        self.cancel();
        self.join();
    }
}

/// Run one worker's round-robin loop until all its tasklets are done.
fn worker_loop(mut tasklets: Vec<Box<dyn Tasklet>>, live: Arc<AtomicUsize>) {
    let mut idle = BackoffIdle::jet_default();
    let mut idle_rounds = 0u64;
    while !tasklets.is_empty() {
        let mut progressed = false;
        tasklets.retain_mut(|t| match t.call() {
            Progress::MadeProgress => {
                progressed = true;
                true
            }
            Progress::NoProgress => true,
            Progress::Done => {
                progressed = true;
                live.fetch_sub(1, Ordering::SeqCst);
                false
            }
        });
        if progressed {
            idle_rounds = 0;
            idle.reset();
        } else {
            idle_rounds += 1;
            idle.idle(idle_rounds);
        }
    }
}

/// Spawn `threads` cooperative workers sharing the cooperative tasklets
/// round-robin, plus one dedicated thread per non-cooperative tasklet
/// (§3.1: "Jet must start dedicated threads" for blocking connectors).
pub fn spawn_threaded(
    tasklets: Vec<Box<dyn Tasklet>>,
    threads: usize,
    cancelled: Arc<AtomicBool>,
) -> ExecutionHandle {
    let threads = threads.max(1);
    let live = Arc::new(AtomicUsize::new(tasklets.len()));
    let mut coop: Vec<Vec<Box<dyn Tasklet>>> = (0..threads).map(|_| Vec::new()).collect();
    let mut joins = Vec::new();
    let mut next = 0usize;
    for t in tasklets {
        if t.is_cooperative() {
            coop[next % threads].push(t);
            next += 1;
        } else {
            let live = live.clone();
            joins.push(std::thread::spawn(move || worker_loop(vec![t], live)));
        }
    }
    for worker_tasklets in coop {
        if worker_tasklets.is_empty() {
            continue;
        }
        let live = live.clone();
        joins.push(std::thread::spawn(move || worker_loop(worker_tasklets, live)));
    }
    ExecutionHandle { cancelled, live_tasklets: live, joins }
}

/// Deterministic single-threaded driver: round-robin all tasklets until all
/// are done or `max_rounds` is reached. Returns `true` when everything
/// completed. Used by unit tests and as the inner loop of the virtual-time
/// simulator.
pub fn run_sequential(tasklets: &mut Vec<Box<dyn Tasklet>>, max_rounds: usize) -> bool {
    for _ in 0..max_rounds {
        if tasklets.is_empty() {
            return true;
        }
        tasklets.retain_mut(|t| !matches!(t.call(), Progress::Done));
    }
    tasklets.is_empty()
}

/// The **thread-per-operator baseline** (ablation A1): every tasklet gets its
/// own OS thread regardless of cooperativeness — the "typical
/// operator-per-core model" the paper contrasts Jet's tasklets with (§3.1).
/// With hundreds of operators this drowns in context switches, which is the
/// behaviour the ablation bench demonstrates.
pub fn spawn_thread_per_operator(
    tasklets: Vec<Box<dyn Tasklet>>,
    cancelled: Arc<AtomicBool>,
) -> ExecutionHandle {
    let live = Arc::new(AtomicUsize::new(tasklets.len()));
    let joins: Vec<JoinHandle<()>> = tasklets
        .into_iter()
        .map(|t| {
            let live = live.clone();
            std::thread::spawn(move || worker_loop(vec![t], live))
        })
        .collect();
    ExecutionHandle { cancelled, live_tasklets: live, joins }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountDown {
        n: usize,
        name: String,
    }

    impl Tasklet for CountDown {
        fn call(&mut self) -> Progress {
            if self.n == 0 {
                return Progress::Done;
            }
            self.n -= 1;
            Progress::MadeProgress
        }
        fn name(&self) -> &str {
            &self.name
        }
    }

    fn countdown(n: usize) -> Box<dyn Tasklet> {
        Box::new(CountDown { n, name: format!("cd{n}") })
    }

    #[test]
    fn sequential_runs_to_completion() {
        let mut ts = vec![countdown(3), countdown(7), countdown(1)];
        assert!(run_sequential(&mut ts, 100));
        assert!(ts.is_empty());
    }

    #[test]
    fn sequential_respects_round_budget() {
        let mut ts = vec![countdown(1000)];
        assert!(!run_sequential(&mut ts, 10));
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn threaded_executor_drains_all_tasklets() {
        let tasklets: Vec<Box<dyn Tasklet>> = (0..20).map(|i| countdown(i * 3 + 1)).collect();
        let h = spawn_threaded(tasklets, 4, Arc::new(AtomicBool::new(false)));
        h.join();
    }

    #[test]
    fn thread_per_operator_also_completes() {
        let tasklets: Vec<Box<dyn Tasklet>> = (0..8).map(|_| countdown(5)).collect();
        let h = spawn_thread_per_operator(tasklets, Arc::new(AtomicBool::new(false)));
        h.join();
    }

    #[test]
    fn live_count_reaches_zero() {
        let h = spawn_threaded(vec![countdown(2)], 1, Arc::new(AtomicBool::new(false)));
        // joining implies finished
        h.join();
    }

    struct NonCoop;
    impl Tasklet for NonCoop {
        fn call(&mut self) -> Progress {
            Progress::Done
        }
        fn name(&self) -> &str {
            "noncoop"
        }
        fn is_cooperative(&self) -> bool {
            false
        }
    }

    #[test]
    fn non_cooperative_tasklets_get_their_own_thread() {
        let ts: Vec<Box<dyn Tasklet>> = vec![Box::new(NonCoop), countdown(3)];
        let h = spawn_threaded(ts, 1, Arc::new(AtomicBool::new(false)));
        h.join();
    }
}

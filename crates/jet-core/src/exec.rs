//! Executors: cooperative worker threads (the paper's design, §3.2) plus a
//! deterministic sequential driver used by tests and the simulator, plus the
//! thread-per-operator baseline executor used by the ablation benches.
//!
//! "Jet deploys as many JVM threads as there are CPU cores. [...] On each
//! thread, Jet runs a loop that executes its tasklets in a round-robin
//! fashion." A round with no progress from any tasklet engages the
//! progressive backoff idle strategy so idle jobs cost (almost) nothing —
//! the property multi-tenancy (§7.7) relies on.

use crate::fairness::{FairPoller, JobQuotas};
use crate::log::RateLimitedLog;
use crate::metrics::{tags, MetricsRegistry, SharedCounter, SharedHistogram, TaskletCounters};
use crate::tasklet::Tasklet;
use crate::trace::{TraceKind, TraceWriter, Tracer};
use jet_util::idle::{BackoffIdle, IdleStrategy};
use jet_util::progress::Progress;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Process-wide epoch for threaded-executor trace timestamps, so spans from
/// different worker threads land on one consistent timeline.
fn trace_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    // jet-lint: allow(instant) — initialized once per process (cold).
    *EPOCH.get_or_init(Instant::now)
}

/// Default wall-clock budget for one cooperative `call()`. Jet's contract
/// (§3.2) is that cooperative tasklets return in microseconds; a call this
/// long means something inside is blocking or looping and the worker's other
/// tasklets are being starved.
pub const DEFAULT_HOG_BUDGET: Duration = Duration::from_millis(10);

/// Default minimum spacing between two emitted hog warnings.
pub const DEFAULT_HOG_LOG_INTERVAL: Duration = Duration::from_secs(5);

/// Observability wiring for the threaded executor: where to register worker
/// metrics, the per-call budget, and the rate-limited warning channel.
#[derive(Clone)]
pub struct ExecObservability {
    pub registry: Arc<MetricsRegistry>,
    pub hog_budget: Duration,
    pub hog_log: Arc<RateLimitedLog>,
    /// Execution tracing handle; [`Tracer::disabled`] (the default) keeps
    /// every per-call trace probe to a single branch.
    pub tracer: Tracer,
}

impl ExecObservability {
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        ExecObservability {
            registry,
            hog_budget: DEFAULT_HOG_BUDGET,
            hog_log: Arc::new(RateLimitedLog::new(DEFAULT_HOG_LOG_INTERVAL)),
            tracer: Tracer::disabled(),
        }
    }

    pub fn with_hog_budget(mut self, budget: Duration) -> Self {
        self.hog_budget = budget;
        self
    }

    pub fn with_hog_log(mut self, log: Arc<RateLimitedLog>) -> Self {
        self.hog_log = log;
        self
    }

    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Instruments for one worker thread: busy/idle round counters (the
    /// previously dead `TaskletCounters` fields), a per-`call()` duration
    /// histogram, and a hog counter — all tagged `worker=<label>`.
    fn for_worker(&self, label: &str) -> WorkerObs {
        let counters = TaskletCounters::shared();
        let t = tags(&[("worker", label)]);
        let c = counters.clone();
        self.registry
            .counter_fn("jet_worker_busy_rounds_total", t.clone(), move || {
                c.busy_rounds.load(Ordering::Relaxed)
            });
        let c = counters.clone();
        self.registry
            .counter_fn("jet_worker_idle_rounds_total", t.clone(), move || {
                c.idle_rounds.load(Ordering::Relaxed)
            });
        let trace = self.tracer.writer(0, &format!("worker-{label}"));
        let idle_name = trace.intern("worker-idle");
        WorkerObs {
            counters,
            call_hist: self
                .registry
                .histogram("jet_worker_call_duration_nanos", t.clone()),
            hogs: self.registry.counter("jet_tasklet_hog_total", t),
            hog_budget_nanos: self.hog_budget.as_nanos() as u64,
            hog_log: self.hog_log.clone(),
            label: label.to_string(),
            trace,
            idle_name,
        }
    }
}

/// Per-worker observability state threaded into `worker_loop`.
struct WorkerObs {
    counters: Arc<TaskletCounters>,
    call_hist: SharedHistogram,
    hogs: SharedCounter,
    hog_budget_nanos: u64,
    hog_log: Arc<RateLimitedLog>,
    label: String,
    trace: TraceWriter,
    idle_name: u32,
}

/// Handle to a running threaded execution.
pub struct ExecutionHandle {
    cancelled: Arc<AtomicBool>,
    live_tasklets: Arc<AtomicUsize>,
    joins: Vec<JoinHandle<()>>,
}

impl ExecutionHandle {
    /// Request cooperative cancellation: sources stop, the pipeline drains.
    pub fn cancel(&self) {
        // ordering: SeqCst — cancellation is a rare control action; a total
        // order with the live-tasklet countdown keeps shutdown reasoning
        // simple and costs nothing off the hot path.
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Number of tasklets that have not finished yet.
    pub fn live_tasklets(&self) -> usize {
        // ordering: SeqCst — pairs with the worker's fetch_sub so a zero
        // here means every tasklet's effects are visible.
        self.live_tasklets.load(Ordering::SeqCst)
    }

    pub fn is_finished(&self) -> bool {
        self.live_tasklets() == 0
    }

    /// Block until all workers exit (all tasklets `Done`).
    pub fn join(self) {
        for j in self.joins {
            let _ = j.join();
        }
    }

    /// Cancel and wait for completion.
    pub fn cancel_and_join(self) {
        self.cancel();
        self.join();
    }
}

/// Run one worker's round-robin loop until all its tasklets are done.
fn worker_loop(tasklets: Vec<Box<dyn Tasklet>>, live_tasklets: Arc<AtomicUsize>) {
    worker_loop_observed(tasklets, live_tasklets, None)
}

/// One observed tasklet call: per-call wall-clock histogram, trace span on
/// progress, and the rate-limited hog warning when a cooperative call
/// overruns its budget.
// jet-analyze: allow(panic, instant) — self-profiling timestamps; the hog-warning text is built inside the rate-limited log closure
fn observed_call(
    t: &mut dyn Tasklet,
    trace_name: u32,
    o: &mut WorkerObs,
    epoch: Instant,
) -> Progress {
    // jet-lint: allow(instant) — throttled by construction: only taken when
    // self-profiling (`obs`) is enabled for the run.
    let start = Instant::now();
    let result = t.call();
    let nanos = start.elapsed().as_nanos() as u64;
    o.call_hist.record(nanos.max(1));
    if o.trace.enabled() && !matches!(result, Progress::NoProgress) {
        let end_ns = epoch.elapsed().as_nanos() as u64;
        o.trace
            .record_call(end_ns.saturating_sub(nanos), nanos, trace_name);
    }
    if nanos > o.hog_budget_nanos && t.is_cooperative() {
        o.hogs.add(1);
        o.hog_log.warn(|| {
            format!(
                "cooperative tasklet '{}' hogged worker {} for {:.3} ms \
                 (budget {:.3} ms); cooperative call()s must not block",
                t.name(),
                o.label,
                nanos as f64 / 1e6,
                o.hog_budget_nanos as f64 / 1e6,
            )
        });
    }
    result
}

/// Weighted-fair variant of the worker loop (§7.7): tasklets are polled
/// through a [`FairPoller`], so every tenant job receives its quota of
/// timeslice turns per scheduling cycle regardless of how many tasklets it
/// deploys. The idle strategy engages when one full *coverage round* (every
/// live tasklet polled at least once) makes no progress — the same
/// "nothing can run" condition the flat loop uses.
// jet-analyze: allow(alloc, instant) — one-time tasklet and trace-name setup before the poll loop; idle-park timestamps only when tracing is enabled
fn worker_loop_fair(
    tasklets: Vec<Box<dyn Tasklet>>,
    live_tasklets: Arc<AtomicUsize>,
    quotas: &JobQuotas,
    mut obs: Option<WorkerObs>,
) {
    let mut tasklets: Vec<(Box<dyn Tasklet>, u32)> = tasklets
        .into_iter()
        .map(|t| {
            let id = match &obs {
                Some(o) => o.trace.intern(t.name()),
                None => 0,
            };
            (t, id)
        })
        .collect();
    let jobs: Vec<u32> = tasklets.iter().map(|(t, _)| t.job()).collect();
    let mut poller = FairPoller::new(&jobs, quotas);
    let epoch = trace_epoch();
    let mut idle = BackoffIdle::jet_default();
    let mut idle_rounds = 0u64;
    while !tasklets.is_empty() {
        let mut progressed = false;
        for _ in 0..poller.coverage_polls() {
            let Some(idx) = poller.next() else {
                break;
            };
            let (t, trace_name) = &mut tasklets[idx];
            let result = match &mut obs {
                Some(o) => observed_call(t.as_mut(), *trace_name, o, epoch),
                None => t.call(),
            };
            match result {
                Progress::MadeProgress => progressed = true,
                Progress::NoProgress => {}
                Progress::Done => {
                    progressed = true;
                    // ordering: SeqCst — pairs with `live_tasklets` exactly
                    // as in the flat loop.
                    live_tasklets.fetch_sub(1, Ordering::SeqCst);
                    tasklets.remove(idx);
                    poller.remove_index(idx);
                }
            }
        }
        if progressed {
            idle_rounds = 0;
            idle.reset();
            if let Some(o) = &mut obs {
                o.counters.add_busy(1);
            }
        } else {
            idle_rounds += 1;
            if let Some(o) = &mut obs {
                o.counters.add_idle(1);
                if o.trace.enabled() {
                    if let Some(park) = idle.park_duration(idle_rounds) {
                        let ts = epoch.elapsed().as_nanos() as u64;
                        o.trace.record(
                            TraceKind::IdlePark,
                            ts,
                            park.as_nanos() as u64,
                            o.idle_name,
                            idle_rounds as i64,
                        );
                    }
                }
            }
            idle.idle(idle_rounds);
        }
    }
}

/// `worker_loop` with optional self-profiling: per-round busy/idle counters,
/// a per-`call()` wall-clock histogram, and the rate-limited warning when a
/// cooperative tasklet overruns its call budget.
// jet-analyze: allow(alloc, instant) — one-time tasklet and trace-name setup before the poll loop; idle-park timestamps only when tracing is enabled
fn worker_loop_observed(
    tasklets: Vec<Box<dyn Tasklet>>,
    live_tasklets: Arc<AtomicUsize>,
    mut obs: Option<WorkerObs>,
) {
    // Tasklet names are interned once here (cold); the hot loop only ever
    // touches the u32 ids.
    let mut tasklets: Vec<(Box<dyn Tasklet>, u32)> = tasklets
        .into_iter()
        .map(|t| {
            let id = match &obs {
                Some(o) => o.trace.intern(t.name()),
                None => 0,
            };
            (t, id)
        })
        .collect();
    let epoch = trace_epoch();
    let mut idle = BackoffIdle::jet_default();
    let mut idle_rounds = 0u64;
    while !tasklets.is_empty() {
        let mut progressed = false;
        tasklets.retain_mut(|(t, trace_name)| {
            let result = match &mut obs {
                Some(o) => observed_call(t.as_mut(), *trace_name, o, epoch),
                None => t.call(),
            };
            match result {
                Progress::MadeProgress => {
                    progressed = true;
                    true
                }
                Progress::NoProgress => true,
                Progress::Done => {
                    progressed = true;
                    // ordering: SeqCst — pairs with `live_tasklets`: the
                    // decrement must totally order after this tasklet's
                    // final effects. Runs once per tasklet lifetime.
                    live_tasklets.fetch_sub(1, Ordering::SeqCst);
                    false
                }
            }
        });
        if progressed {
            idle_rounds = 0;
            idle.reset();
            if let Some(o) = &mut obs {
                o.counters.add_busy(1);
            }
        } else {
            idle_rounds += 1;
            if let Some(o) = &mut obs {
                o.counters.add_idle(1);
                if o.trace.enabled() {
                    if let Some(park) = idle.park_duration(idle_rounds) {
                        let ts = epoch.elapsed().as_nanos() as u64;
                        o.trace.record(
                            TraceKind::IdlePark,
                            ts,
                            park.as_nanos() as u64,
                            o.idle_name,
                            idle_rounds as i64,
                        );
                    }
                }
            }
            idle.idle(idle_rounds);
        }
    }
}

/// Spawn `threads` cooperative workers sharing the cooperative tasklets
/// round-robin, plus one dedicated thread per non-cooperative tasklet
/// (§3.1: "Jet must start dedicated threads" for blocking connectors).
pub fn spawn_threaded(
    tasklets: Vec<Box<dyn Tasklet>>,
    threads: usize,
    cancelled: Arc<AtomicBool>,
) -> ExecutionHandle {
    spawn_threaded_inner(tasklets, threads, cancelled, None)
}

/// [`spawn_threaded`] with scheduler self-profiling: every worker registers
/// busy/idle round counters and a per-`call()` duration histogram in
/// `obs.registry`, and cooperative calls overrunning `obs.hog_budget` emit a
/// rate-limited hog warning through `obs.hog_log`. Dedicated threads for
/// non-cooperative tasklets are profiled too (tagged `worker=dedicated-N`)
/// but never hog-warned — blocking is what they are for.
pub fn spawn_threaded_observed(
    tasklets: Vec<Box<dyn Tasklet>>,
    threads: usize,
    cancelled: Arc<AtomicBool>,
    obs: &ExecObservability,
) -> ExecutionHandle {
    spawn_threaded_inner(tasklets, threads, cancelled, Some(obs))
}

/// [`spawn_threaded_observed`] with per-job fairness quotas (§7.7): each
/// cooperative worker polls its tasklets through a weighted round-robin
/// over job groups ([`Tasklet::job`]) instead of flat tasklet round-robin,
/// so a latency-critical tenant's share of every worker is set by its
/// weight, not by how many tasklets its neighbours deploy. Non-cooperative
/// tasklets still get dedicated threads, where quotas are meaningless.
pub fn spawn_threaded_fair(
    tasklets: Vec<Box<dyn Tasklet>>,
    threads: usize,
    cancelled: Arc<AtomicBool>,
    obs: Option<&ExecObservability>,
    quotas: JobQuotas,
) -> ExecutionHandle {
    let threads = threads.max(1);
    let live_tasklets = Arc::new(AtomicUsize::new(tasklets.len()));
    let mut coop: Vec<Vec<Box<dyn Tasklet>>> = (0..threads).map(|_| Vec::new()).collect();
    let mut joins = Vec::new();
    let mut next = 0usize;
    let mut dedicated = 0usize;
    for t in tasklets {
        if t.is_cooperative() {
            coop[next % threads].push(t);
            next += 1;
        } else {
            let live_tasklets = live_tasklets.clone();
            let wo = obs.map(|o| o.for_worker(&format!("dedicated-{dedicated}")));
            dedicated += 1;
            joins.push(std::thread::spawn(move || {
                worker_loop_observed(vec![t], live_tasklets, wo)
            }));
        }
    }
    for (i, worker_tasklets) in coop.into_iter().enumerate() {
        if worker_tasklets.is_empty() {
            continue;
        }
        let live_tasklets = live_tasklets.clone();
        let wo = obs.map(|o| o.for_worker(&i.to_string()));
        let quotas = quotas.clone();
        joins.push(std::thread::spawn(move || {
            worker_loop_fair(worker_tasklets, live_tasklets, &quotas, wo)
        }));
    }
    ExecutionHandle {
        cancelled,
        live_tasklets,
        joins,
    }
}

fn spawn_threaded_inner(
    tasklets: Vec<Box<dyn Tasklet>>,
    threads: usize,
    cancelled: Arc<AtomicBool>,
    obs: Option<&ExecObservability>,
) -> ExecutionHandle {
    let threads = threads.max(1);
    let live_tasklets = Arc::new(AtomicUsize::new(tasklets.len()));
    let mut coop: Vec<Vec<Box<dyn Tasklet>>> = (0..threads).map(|_| Vec::new()).collect();
    let mut joins = Vec::new();
    let mut next = 0usize;
    let mut dedicated = 0usize;
    for t in tasklets {
        if t.is_cooperative() {
            coop[next % threads].push(t);
            next += 1;
        } else {
            let live_tasklets = live_tasklets.clone();
            let wo = obs.map(|o| o.for_worker(&format!("dedicated-{dedicated}")));
            dedicated += 1;
            joins.push(std::thread::spawn(move || {
                worker_loop_observed(vec![t], live_tasklets, wo)
            }));
        }
    }
    for (i, worker_tasklets) in coop.into_iter().enumerate() {
        if worker_tasklets.is_empty() {
            continue;
        }
        let live_tasklets = live_tasklets.clone();
        let wo = obs.map(|o| o.for_worker(&i.to_string()));
        joins.push(std::thread::spawn(move || {
            worker_loop_observed(worker_tasklets, live_tasklets, wo)
        }));
    }
    ExecutionHandle {
        cancelled,
        live_tasklets,
        joins,
    }
}

/// Deterministic single-threaded driver: round-robin all tasklets until all
/// are done or `max_rounds` is reached. Returns `true` when everything
/// completed. Used by unit tests and as the inner loop of the virtual-time
/// simulator.
pub fn run_sequential(tasklets: &mut Vec<Box<dyn Tasklet>>, max_rounds: usize) -> bool {
    for _ in 0..max_rounds {
        if tasklets.is_empty() {
            return true;
        }
        tasklets.retain_mut(|t| !matches!(t.call(), Progress::Done));
    }
    tasklets.is_empty()
}

/// The **thread-per-operator baseline** (ablation A1): every tasklet gets its
/// own OS thread regardless of cooperativeness — the "typical
/// operator-per-core model" the paper contrasts Jet's tasklets with (§3.1).
/// With hundreds of operators this drowns in context switches, which is the
/// behaviour the ablation bench demonstrates.
pub fn spawn_thread_per_operator(
    tasklets: Vec<Box<dyn Tasklet>>,
    cancelled: Arc<AtomicBool>,
) -> ExecutionHandle {
    let live_tasklets = Arc::new(AtomicUsize::new(tasklets.len()));
    let joins: Vec<JoinHandle<()>> = tasklets
        .into_iter()
        .map(|t| {
            let live_tasklets = live_tasklets.clone();
            std::thread::spawn(move || worker_loop(vec![t], live_tasklets))
        })
        .collect();
    ExecutionHandle {
        cancelled,
        live_tasklets,
        joins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountDown {
        n: usize,
        name: String,
    }

    impl Tasklet for CountDown {
        fn call(&mut self) -> Progress {
            if self.n == 0 {
                return Progress::Done;
            }
            self.n -= 1;
            Progress::MadeProgress
        }
        fn name(&self) -> &str {
            &self.name
        }
    }

    fn countdown(n: usize) -> Box<dyn Tasklet> {
        Box::new(CountDown {
            n,
            name: format!("cd{n}"),
        })
    }

    #[test]
    fn sequential_runs_to_completion() {
        let mut ts = vec![countdown(3), countdown(7), countdown(1)];
        assert!(run_sequential(&mut ts, 100));
        assert!(ts.is_empty());
    }

    #[test]
    fn sequential_respects_round_budget() {
        let mut ts = vec![countdown(1000)];
        assert!(!run_sequential(&mut ts, 10));
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn threaded_executor_drains_all_tasklets() {
        let tasklets: Vec<Box<dyn Tasklet>> = (0..20).map(|i| countdown(i * 3 + 1)).collect();
        let h = spawn_threaded(tasklets, 4, Arc::new(AtomicBool::new(false)));
        h.join();
    }

    #[test]
    fn thread_per_operator_also_completes() {
        let tasklets: Vec<Box<dyn Tasklet>> = (0..8).map(|_| countdown(5)).collect();
        let h = spawn_thread_per_operator(tasklets, Arc::new(AtomicBool::new(false)));
        h.join();
    }

    #[test]
    fn live_count_reaches_zero() {
        let h = spawn_threaded(vec![countdown(2)], 1, Arc::new(AtomicBool::new(false)));
        // joining implies finished
        h.join();
    }

    struct NonCoop;
    impl Tasklet for NonCoop {
        fn call(&mut self) -> Progress {
            Progress::Done
        }
        fn name(&self) -> &str {
            "noncoop"
        }
        fn is_cooperative(&self) -> bool {
            false
        }
    }

    #[test]
    fn non_cooperative_tasklets_get_their_own_thread() {
        let ts: Vec<Box<dyn Tasklet>> = vec![Box::new(NonCoop), countdown(3)];
        let h = spawn_threaded(ts, 1, Arc::new(AtomicBool::new(false)));
        h.join();
    }

    /// Progresses `busy` times, stalls for `stall` rounds, then finishes —
    /// exercises both branches of the round accounting.
    struct BusyThenStall {
        busy: usize,
        stall: usize,
    }

    impl Tasklet for BusyThenStall {
        fn call(&mut self) -> Progress {
            if self.busy > 0 {
                self.busy -= 1;
                Progress::MadeProgress
            } else if self.stall > 0 {
                self.stall -= 1;
                Progress::NoProgress
            } else {
                Progress::Done
            }
        }
        fn name(&self) -> &str {
            "busy-then-stall"
        }
    }

    #[test]
    fn observed_worker_wires_busy_and_idle_round_counters() {
        let registry = Arc::new(MetricsRegistry::new());
        let obs = ExecObservability::new(registry.clone());
        let ts: Vec<Box<dyn Tasklet>> = vec![Box::new(BusyThenStall { busy: 10, stall: 4 })];
        spawn_threaded_observed(ts, 1, Arc::new(AtomicBool::new(false)), &obs).join();
        let snap = registry.snapshot();
        // 10 progressing rounds + the final Done round.
        assert_eq!(
            snap.counter_total("jet_worker_busy_rounds_total", &[("worker", "0")]),
            11
        );
        assert_eq!(
            snap.counter_total("jet_worker_idle_rounds_total", &[("worker", "0")]),
            4
        );
        // Every call() landed in the duration histogram.
        let m = snap
            .find("jet_worker_call_duration_nanos", &[("worker", "0")])
            .unwrap();
        match &m.value {
            crate::metrics::MetricValue::Histogram(h) => assert_eq!(h.count, 15),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    struct SlowTasklet {
        calls: usize,
    }

    impl Tasklet for SlowTasklet {
        fn call(&mut self) -> Progress {
            if self.calls == 0 {
                return Progress::Done;
            }
            self.calls -= 1;
            std::thread::sleep(Duration::from_millis(2));
            Progress::MadeProgress
        }
        fn name(&self) -> &str {
            "deliberately-slow"
        }
    }

    #[test]
    fn hog_warning_fires_exactly_once_under_rate_limiting() {
        let registry = Arc::new(MetricsRegistry::new());
        let warnings = Arc::new(parking_lot::Mutex::new(Vec::<String>::new()));
        let sink = warnings.clone();
        let hog_log = Arc::new(RateLimitedLog::new(Duration::from_secs(3600)));
        hog_log.set_sink(move |m| sink.lock().push(m.to_string()));
        let obs = ExecObservability::new(registry.clone())
            .with_hog_budget(Duration::from_micros(100))
            .with_hog_log(hog_log.clone());
        let ts: Vec<Box<dyn Tasklet>> = vec![Box::new(SlowTasklet { calls: 6 })];
        spawn_threaded_observed(ts, 1, Arc::new(AtomicBool::new(false)), &obs).join();
        // All six slow calls overran the budget...
        assert_eq!(
            registry
                .snapshot()
                .counter_total("jet_tasklet_hog_total", &[]),
            6
        );
        // ...but rate limiting let exactly one warning through.
        assert_eq!(hog_log.emitted(), 1);
        assert_eq!(hog_log.suppressed(), 5);
        let seen = warnings.lock();
        assert_eq!(seen.len(), 1);
        assert!(
            seen[0].contains("deliberately-slow") && seen[0].contains("hogged worker"),
            "unexpected warning text: {}",
            seen[0]
        );
    }

    #[test]
    fn non_cooperative_tasklets_never_hog_warn() {
        struct SlowNonCoop {
            calls: usize,
        }
        impl Tasklet for SlowNonCoop {
            fn call(&mut self) -> Progress {
                if self.calls == 0 {
                    return Progress::Done;
                }
                self.calls -= 1;
                std::thread::sleep(Duration::from_millis(2));
                Progress::MadeProgress
            }
            fn name(&self) -> &str {
                "blocking-connector"
            }
            fn is_cooperative(&self) -> bool {
                false
            }
        }
        let registry = Arc::new(MetricsRegistry::new());
        let obs =
            ExecObservability::new(registry.clone()).with_hog_budget(Duration::from_micros(100));
        obs.hog_log.set_sink(|_| {});
        let ts: Vec<Box<dyn Tasklet>> = vec![Box::new(SlowNonCoop { calls: 3 })];
        spawn_threaded_observed(ts, 1, Arc::new(AtomicBool::new(false)), &obs).join();
        assert_eq!(obs.hog_log.emitted(), 0);
        assert_eq!(
            registry
                .snapshot()
                .counter_total("jet_tasklet_hog_total", &[]),
            0
        );
        // The dedicated worker is still profiled.
        assert!(
            registry
                .snapshot()
                .counter_total("jet_worker_busy_rounds_total", &[("worker", "dedicated-0")])
                > 0
        );
    }

    /// Tagged tenant tasklet: logs its job id per call, progresses `left`
    /// times, then finishes.
    struct Tagged {
        job: u32,
        left: usize,
        log: Arc<parking_lot::Mutex<Vec<u32>>>,
    }

    impl Tasklet for Tagged {
        fn call(&mut self) -> Progress {
            self.log.lock().push(self.job);
            if self.left == 0 {
                return Progress::Done;
            }
            self.left -= 1;
            Progress::MadeProgress
        }
        fn name(&self) -> &str {
            "tagged"
        }
        fn job(&self) -> u32 {
            self.job
        }
    }

    #[test]
    fn fair_worker_interleaves_jobs_by_weight() {
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let ts: Vec<Box<dyn Tasklet>> = vec![
            Box::new(Tagged {
                job: 1,
                left: 30,
                log: log.clone(),
            }),
            Box::new(Tagged {
                job: 2,
                left: 10,
                log: log.clone(),
            }),
        ];
        let quotas = JobQuotas::new().with_weight(1, 3);
        let h = spawn_threaded_fair(ts, 1, Arc::new(AtomicBool::new(false)), None, quotas);
        h.join();
        let seen = log.lock();
        // One cycle while both jobs live: [job1, job2, job1, job1].
        assert_eq!(&seen[..8], &[1, 2, 1, 1, 1, 2, 1, 1]);
    }

    #[test]
    fn fair_worker_protects_one_tenant_from_a_hundred_neighbours() {
        // Job 1 (weight 100, one tasklet) vs 100 single-tasklet jobs at
        // weight 1: flat round-robin would give job 1 less than 1% of the
        // polls; the quota holds it at half.
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut ts: Vec<Box<dyn Tasklet>> = vec![Box::new(Tagged {
            job: 1,
            left: 1_000,
            log: log.clone(),
        })];
        for j in 2..=101 {
            ts.push(Box::new(Tagged {
                job: j,
                left: 1_000,
                log: log.clone(),
            }));
        }
        let quotas = JobQuotas::new().with_weight(1, 100);
        let h = spawn_threaded_fair(ts, 1, Arc::new(AtomicBool::new(false)), None, quotas);
        h.join();
        let seen = log.lock();
        // While all jobs live, a cycle is 100 job-1 turns + 100 neighbour
        // turns: job 1 holds exactly half of the first two cycles.
        let head = &seen[..400];
        let job1 = head.iter().filter(|&&j| j == 1).count();
        assert_eq!(job1, 200);
    }

    #[test]
    fn fair_worker_drains_everything_with_observability() {
        let registry = Arc::new(MetricsRegistry::new());
        let obs = ExecObservability::new(registry.clone());
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let ts: Vec<Box<dyn Tasklet>> = (0..12)
            .map(|i| {
                Box::new(Tagged {
                    job: i % 3,
                    left: 5 + i as usize,
                    log: log.clone(),
                }) as Box<dyn Tasklet>
            })
            .collect();
        let quotas = JobQuotas::new().with_weight(2, 4);
        let h = spawn_threaded_fair(ts, 2, Arc::new(AtomicBool::new(false)), Some(&obs), quotas);
        h.join();
        assert!(
            registry
                .snapshot()
                .counter_total("jet_worker_busy_rounds_total", &[])
                > 0
        );
    }

    #[test]
    fn traced_worker_records_call_spans_with_tasklet_names() {
        let registry = Arc::new(MetricsRegistry::new());
        let tracer = Tracer::enabled();
        let obs = ExecObservability::new(registry).with_tracer(tracer.clone());
        let ts: Vec<Box<dyn Tasklet>> = vec![countdown(5), countdown(3)];
        spawn_threaded_observed(ts, 1, Arc::new(AtomicBool::new(false)), &obs).join();
        let data = tracer.drain();
        let calls: Vec<_> = data.of_kind(TraceKind::Call).collect();
        // Every progressing call (5+1 done) + (3+1 done) landed as a span.
        assert_eq!(calls.len(), 10);
        let names: std::collections::HashSet<&str> =
            calls.iter().map(|e| data.name(e.rec.name)).collect();
        assert!(names.contains("cd5") && names.contains("cd3"), "{names:?}");
        assert_eq!(data.tracks.len(), 1);
        assert!(data.tracks[0].label.starts_with("worker-"));
        assert_eq!(data.dropped, 0);
    }
}

//! Multi-tenant fairness: per-job scheduling quotas on shared workers
//! (paper §7.7).
//!
//! The paper's multi-tenancy result rests on two properties: idle jobs cost
//! (almost) nothing (the idle strategy, PR 1), and *busy* neighbours cannot
//! crowd a latency-critical job off the cores. Plain round-robin gives every
//! tasklet one timeslice per round, so a tenant's share of a worker is
//! proportional to its tasklet count — a hundred small jobs starve the one
//! that matters. [`JobQuotas`] replaces that with weighted round-robin over
//! *job groups*: each scheduling cycle hands every job `weight` timeslice
//! turns regardless of how many tasklets it deploys, and the cycle
//! interleaves turns (heavy jobs appear in every slot, not as one burst) so
//! latency-critical turns are never far away.
//!
//! Jobs are identified by [`Tasklet::job`](crate::tasklet::Tasklet::job);
//! DAG vertices opt in by name prefix (`job<N>-…`, see [`job_of_vertex`]).
//! With no quotas configured, executors keep their original tasklet-level
//! round-robin loop untouched — bit-identical schedules, zero cost.

/// Per-job scheduling weights. A job's weight is the number of timeslice
/// turns it receives per scheduling cycle; unlisted jobs get
/// `default_weight`. Weights are clamped to at least 1 (a zero weight would
/// silently never schedule a job — starvation must be impossible by
/// construction).
#[derive(Debug, Clone)]
pub struct JobQuotas {
    weights: Vec<(u32, u32)>,
    default_weight: u32,
}

impl Default for JobQuotas {
    fn default() -> Self {
        JobQuotas::new()
    }
}

impl JobQuotas {
    pub fn new() -> JobQuotas {
        JobQuotas {
            weights: Vec::new(),
            default_weight: 1,
        }
    }

    /// Set `job`'s turns per scheduling cycle.
    pub fn with_weight(mut self, job: u32, weight: u32) -> JobQuotas {
        self.weights.retain(|(j, _)| *j != job);
        self.weights.push((job, weight.max(1)));
        self
    }

    /// Turns per cycle for jobs without an explicit weight.
    pub fn with_default_weight(mut self, weight: u32) -> JobQuotas {
        self.default_weight = weight.max(1);
        self
    }

    pub fn weight(&self, job: u32) -> u32 {
        self.weights
            .iter()
            .find(|(j, _)| *j == job)
            .map(|(_, w)| *w)
            .unwrap_or(self.default_weight)
            .max(1)
    }
}

/// Job id of a vertex by naming convention: a `job<N>-` prefix tags the
/// vertex (and every tasklet instance derived from it) as belonging to
/// tenant job `N`. Anything else — including infrastructure tasklets like
/// senders and receivers — belongs to job 0, the shared pool.
pub fn job_of_vertex(name: &str) -> u32 {
    let Some(rest) = name.strip_prefix("job") else {
        return 0;
    };
    let digits: &str =
        &rest[..rest.len() - rest.trim_start_matches(|c: char| c.is_ascii_digit()).len()];
    if digits.is_empty() || !rest[digits.len()..].starts_with('-') {
        return 0;
    }
    digits.parse().unwrap_or(0)
}

struct Group {
    job: u32,
    /// Tasklet indices (into the caller's storage) belonging to this job.
    members: Vec<usize>,
    /// Round-robin cursor within the group.
    rr: usize,
    /// Turns this group receives per cycle (= its job's weight).
    turns: u32,
}

/// Weighted round-robin polling order over job groups.
///
/// The poller owns *indices only*; the caller owns the tasklets and keeps
/// their storage index-stable between [`FairPoller::remove_index`] calls
/// (which mirror a `Vec::remove` on the caller's side). One scheduling
/// cycle consists of [`FairPoller::cycle_len`] slots; slot order interleaves
/// jobs — for turn `t` in `0..max_weight`, every job with `weight > t`
/// appears once — so a high-weight job is polled throughout the cycle
/// rather than in one burst.
pub struct FairPoller {
    groups: Vec<Group>,
    /// Group index per slot, one full cycle.
    slots: Vec<usize>,
    cursor: usize,
}

impl FairPoller {
    /// Build the polling order for tasklets whose job ids are `jobs[i]`.
    // jet-analyze: allow(alloc) — poller tables are built once per worker at execution start
    pub fn new(jobs: &[u32], quotas: &JobQuotas) -> FairPoller {
        let mut groups: Vec<Group> = Vec::new();
        for (idx, &job) in jobs.iter().enumerate() {
            match groups.iter_mut().find(|g| g.job == job) {
                Some(g) => g.members.push(idx),
                None => groups.push(Group {
                    job,
                    members: vec![idx],
                    rr: 0,
                    turns: quotas.weight(job),
                }),
            }
        }
        // Deterministic slot order independent of tasklet placement order.
        groups.sort_by_key(|g| g.job);
        let max_weight = groups.iter().map(|g| g.turns).max().unwrap_or(1);
        let mut slots = Vec::new();
        for turn in 0..max_weight {
            for (gi, g) in groups.iter().enumerate() {
                if g.turns > turn {
                    slots.push(gi);
                }
            }
        }
        FairPoller {
            groups,
            slots,
            cursor: 0,
        }
    }

    /// Slots in one scheduling cycle (= sum of live jobs' weights).
    pub fn cycle_len(&self) -> usize {
        self.slots.len()
    }

    /// Consecutive [`FairPoller::next`] calls guaranteeing every live
    /// tasklet was polled at least once: the group needing the most cycles
    /// to cover its members (`ceil(members / turns)`) times the cycle
    /// length. Executors use this as the "one round" unit for idle
    /// detection — a fruitless coverage round means nothing can progress.
    pub fn coverage_polls(&self) -> usize {
        let cycles = self
            .groups
            .iter()
            .filter(|g| !g.members.is_empty())
            .map(|g| g.members.len().div_ceil(g.turns as usize))
            .max()
            .unwrap_or(0);
        cycles * self.slots.len().max(1)
    }

    pub fn is_empty(&self) -> bool {
        self.groups.iter().all(|g| g.members.is_empty())
    }

    /// Next tasklet index to poll: advance at most one full cycle of slots,
    /// skipping emptied groups; `None` means every group is empty.
    // Not `Iterator`: `None` is "nothing runnable right now", not exhaustion —
    // adding members makes a drained poller yield again.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<usize> {
        for _ in 0..self.slots.len() {
            let slot = self.slots[self.cursor];
            self.cursor = (self.cursor + 1) % self.slots.len().max(1);
            let g = &mut self.groups[slot];
            if g.members.is_empty() {
                continue;
            }
            g.rr %= g.members.len();
            let idx = g.members[g.rr];
            g.rr += 1;
            return Some(idx);
        }
        None
    }

    /// Tasklet `idx` finished and the caller removed it with the equivalent
    /// of `Vec::remove(idx)`: drop it here and shift higher indices down.
    pub fn remove_index(&mut self, idx: usize) {
        for g in &mut self.groups {
            if let Some(pos) = g.members.iter().position(|&m| m == idx) {
                g.members.remove(pos);
                if pos < g.rr {
                    g.rr -= 1;
                }
            }
            for m in &mut g.members {
                if *m > idx {
                    *m -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_job_prefix_parses() {
        assert_eq!(job_of_vertex("job3-source"), 3);
        assert_eq!(job_of_vertex("job12-window-accumulate"), 12);
        assert_eq!(job_of_vertex("source"), 0);
        assert_eq!(job_of_vertex("job-source"), 0, "no digits");
        assert_eq!(job_of_vertex("job7source"), 0, "no dash");
        assert_eq!(job_of_vertex("jobber-3"), 0);
        assert_eq!(job_of_vertex("job0-sink"), 0);
    }

    #[test]
    fn weights_default_and_clamp() {
        let q = JobQuotas::new().with_weight(1, 8).with_weight(2, 0);
        assert_eq!(q.weight(1), 8);
        assert_eq!(q.weight(2), 1, "zero weight clamps to 1");
        assert_eq!(q.weight(99), 1, "default weight");
        let q = q.with_default_weight(3);
        assert_eq!(q.weight(99), 3);
    }

    #[test]
    fn heavy_job_gets_weight_share_of_slots() {
        // Job 1 weight 4, jobs 2..=4 weight 1: cycle = 4 + 3 slots, and
        // job 1 holds 4 of the 7.
        let jobs = [1, 2, 3, 4];
        let q = JobQuotas::new().with_weight(1, 4);
        let mut p = FairPoller::new(&jobs, &q);
        assert_eq!(p.cycle_len(), 7);
        let mut counts = [0usize; 5];
        for _ in 0..70 {
            counts[jobs[p.next().unwrap()] as usize] += 1;
        }
        assert_eq!(counts[1], 40);
        assert_eq!(counts[2], 10);
    }

    #[test]
    fn turns_interleave_rather_than_burst() {
        let jobs = [1, 2];
        let q = JobQuotas::new().with_weight(1, 3);
        let mut p = FairPoller::new(&jobs, &q);
        let order: Vec<usize> = (0..p.cycle_len()).map(|_| p.next().unwrap()).collect();
        // Cycle: turn 0 -> [job1, job2], turns 1,2 -> [job1]: 0 1 0 0.
        assert_eq!(order, vec![0, 1, 0, 0]);
    }

    #[test]
    fn group_rr_covers_all_members_of_a_job() {
        // Job 1 has 3 tasklets at weight 1; job 2 has 1.
        let jobs = [1, 1, 1, 2];
        let q = JobQuotas::new();
        let mut p = FairPoller::new(&jobs, &q);
        // coverage = ceil(3/1) cycles * 2 slots = 6 polls.
        assert_eq!(p.coverage_polls(), 6);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..p.coverage_polls() {
            seen.insert(p.next().unwrap());
        }
        assert_eq!(seen.len(), 4, "every tasklet polled within coverage");
    }

    #[test]
    fn remove_index_shifts_and_skips_empty_groups() {
        let jobs = [1, 2, 2];
        let q = JobQuotas::new();
        let mut p = FairPoller::new(&jobs, &q);
        // Remove tasklet 0 (all of job 1): caller does Vec::remove(0).
        p.remove_index(0);
        assert!(!p.is_empty());
        // Remaining indices are the shifted job-2 members {0, 1}.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            if let Some(i) = p.next() {
                seen.insert(i);
            }
        }
        assert_eq!(seen, [0usize, 1].into_iter().collect());
        p.remove_index(1);
        p.remove_index(0);
        assert!(p.is_empty());
        assert_eq!(p.next(), None);
    }
}

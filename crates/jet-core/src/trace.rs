//! Execution tracing: low-overhead span records for latency *attribution*.
//!
//! PR 1's metrics say *how much* time the job spent; this module says
//! *where*. Every instrumented writer (a cooperative worker / virtual core,
//! a processor tasklet, a network sender/receiver) owns a private fixed-size
//! lock-free ring of [`SpanRecord`]s and appends to it without ever blocking
//! the hot loop: when the ring is full the record is dropped and counted,
//! never waited for. A collector (see `jet-cluster`) drains the rings into a
//! job-level [`TraceData`] which renders as Chrome trace-event JSON — open
//! `results/TRACE_*.json` in <https://ui.perfetto.dev> — and feeds the
//! plain-text diagnostics dump.
//!
//! Cost discipline:
//! * Disabled tracing allocates nothing: [`Tracer::disabled`] hands out
//!   [`TraceWriter`]s that carry no ring, and every `record_*` call reduces
//!   to one branch on an `Option` discriminant.
//! * Enabled tracing touches only the writer's own cache lines plus one
//!   release store per record; string names are interned to `u32` ids at
//!   wiring time (cold), never on the hot path.
//! * Call spans can be sampled (`1/2^k`) to bound volume on multi-minute
//!   runs; drops from sampling are *not* counted (they are policy), drops
//!   from a full ring are.

use crate::metrics::json_escape;
use crate::sync::{AtomicU64, AtomicUsize, CachePadded, Ordering, UnsafeCell};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// What a span record describes. The numeric `arg` field of [`SpanRecord`]
/// is kind-specific (documented per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// One tasklet `call()` timeslice. `arg` = 0. Has a duration.
    Call = 0,
    /// A flush found a full downstream queue (backpressure). `arg` = output
    /// ordinal of the stalled edge.
    Stall = 1,
    /// An idle worker parked. `arg` = consecutive idle rounds. Has a
    /// duration (the park time).
    IdlePark = 2,
    /// A watermark left this tasklet's outbox. `arg` = watermark ts.
    WmEmit = 3,
    /// The input coalescer's min-watermark advanced. `arg` = new coalesced
    /// watermark ts.
    WmCoalesce = 4,
    /// One snapshot barrier's full lifetime inside a tasklet: from barrier
    /// alignment through state save to barrier re-emission. `arg` =
    /// snapshot id. Has a duration.
    SnapshotPhase = 5,
    /// A network batch was shipped. `arg` = payload bytes.
    NetSend = 6,
    /// A network batch was received. `arg` = item count.
    NetRecv = 7,
    /// Failure-detector state change (suspect / clear / fence). `arg` =
    /// member id. The span name distinguishes the transition.
    Detect = 8,
    /// One recovery attempt, from decision to rebuilt execution. `arg` =
    /// restored snapshot id (-1 = cold restart). Has a duration when the
    /// attempt succeeded.
    Recovery = 9,
    /// A scheduled fault was injected. `arg` = member id where applicable,
    /// -1 otherwise. The span name carries the fault label.
    FaultInject = 10,
}

impl TraceKind {
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Call => "call",
            TraceKind::Stall => "stall",
            TraceKind::IdlePark => "idle-park",
            TraceKind::WmEmit => "wm-emit",
            TraceKind::WmCoalesce => "wm-coalesce",
            TraceKind::SnapshotPhase => "snapshot",
            TraceKind::NetSend => "net-send",
            TraceKind::NetRecv => "net-recv",
            TraceKind::Detect => "detect",
            TraceKind::Recovery => "recovery",
            TraceKind::FaultInject => "fault-inject",
        }
    }
}

/// One fixed-size trace record: 32 bytes, `Copy`, no heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Start time, nanos (wall or virtual, whichever clock the execution
    /// runs on).
    pub ts: u64,
    /// Duration in nanos; 0 renders as an instant event.
    pub dur: u64,
    /// Interned name id (see [`Tracer::intern`]): the vertex/tasklet the
    /// record belongs to.
    pub name: u32,
    pub kind: TraceKind,
    /// Kind-specific payload (see [`TraceKind`]).
    pub arg: i64,
}

impl SpanRecord {
    fn zeroed() -> SpanRecord {
        SpanRecord {
            ts: 0,
            dur: 0,
            name: 0,
            kind: TraceKind::Call,
            arg: 0,
        }
    }
}

/// The per-writer ring: single producer (the owning worker/tasklet), single
/// consumer (the collector), wait-free on both sides, drop-counted on
/// overflow. Same Lamport-ring discipline as `jet_queue::spsc`, specialised
/// to a `Copy` record type so slots need no `MaybeUninit` bookkeeping.
struct Ring {
    buf: Box<[UnsafeCell<SpanRecord>]>,
    mask: usize,
    /// Next slot the collector reads. Written by the collector only.
    head: CachePadded<AtomicUsize>,
    /// Next slot the writer fills. Written by the writer only.
    tail: CachePadded<AtomicUsize>,
    /// Records discarded because the ring was full when they were offered.
    dropped: AtomicU64,
}

// The writer only stores into slots in `head..head+capacity` that it owns
// (it checks fullness against an acquire-loaded head before writing and
// publishes with a release store of tail); the collector only reads slots in
// `head..tail` (acquire-loaded). SpanRecord is Copy, so torn *ownership* is
// the only hazard. The protocol is model-checked by `loom_tests` below.
//
// SAFETY: the head/tail protocol above excludes concurrent access to any
// slot, so the ring may move across threads.
unsafe impl Send for Ring {}
// SAFETY: as above — writer and collector get exclusive access to disjoint
// slots even through shared references.
unsafe impl Sync for Ring {}

impl Ring {
    fn new(capacity: usize) -> Ring {
        let cap = capacity.max(2).next_power_of_two();
        Ring {
            buf: (0..cap)
                .map(|_| UnsafeCell::new(SpanRecord::zeroed()))
                .collect(),
            mask: cap - 1,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Writer side. Never blocks: a full ring counts a drop and returns.
    #[inline]
    fn push(&self, rec: SpanRecord) {
        // ordering: Relaxed — `tail` is only ever written by this writer, so
        // its own last value is always what a relaxed load returns.
        let tail = self.tail.load(Ordering::Relaxed);
        // ordering: Acquire pairs with the collector's Release store of
        // `head` in `drain_into`: slots the collector freed are fully read
        // before we may overwrite them.
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            // ordering: Relaxed — the drop counter is a statistic, not a
            // synchronization point.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: `tail` is within `head..head+capacity`, so the collector
        // cannot be reading this slot; the record becomes visible to it only
        // through the release store of `tail` below.
        self.buf[tail & self.mask].with_mut(|p| unsafe { *p = rec });
        // ordering: Release pairs with the collector's Acquire load of
        // `tail`: the slot write above is visible before the new position.
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
    }

    /// Collector side: move every published record into `out`.
    fn drain_into(&self, out: &mut Vec<SpanRecord>) -> usize {
        // ordering: Acquire pairs with the writer's Release store of `tail`.
        let tail = self.tail.load(Ordering::Acquire);
        // ordering: Relaxed — `head` is only ever written by this collector.
        let mut head = self.head.load(Ordering::Relaxed);
        let n = tail.wrapping_sub(head);
        for _ in 0..n {
            // SAFETY: slots in `head..tail` hold records the writer
            // published (acquire-loaded `tail` above) and will not touch
            // again until `head` is released past them.
            out.push(self.buf[head & self.mask].with(|p| unsafe { *p }));
            head = head.wrapping_add(1);
        }
        // ordering: Release pairs with the writer's Acquire load of `head`
        // in `push`: our slot reads complete before the writer may reuse
        // the slots.
        self.head.store(head, Ordering::Release);
        n
    }

    fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }
}

/// Identity of one trace track (≈ one ring): which member it belongs to
/// (Perfetto `pid`), its per-job track index (`tid`), and a human label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackInfo {
    pub pid: u32,
    pub tid: u32,
    pub label: String,
}

struct Track {
    info: TrackInfo,
    ring: Arc<Ring>,
}

struct NameTable {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl NameTable {
    fn new() -> NameTable {
        // Id 0 is reserved for "?" so a zeroed record still renders.
        NameTable {
            names: vec!["?".to_string()],
            index: HashMap::new(),
        }
    }

    // jet-analyze: allow(alloc) — names are interned once per distinct string at wiring time
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }
}

struct TracerInner {
    names: Mutex<NameTable>,
    tracks: Mutex<Vec<Track>>,
    ring_capacity: usize,
    /// Record one in `2^sample_shift` Call spans (other kinds always
    /// record).
    sample_shift: u32,
    next_tid: AtomicUsize,
    /// Ring-full drops already swept into some [`TraceData`] by
    /// [`Tracer::drain_into`] (whose per-ring counters reset on drain);
    /// adding the live counters gives the run-cumulative total.
    drained_dropped: AtomicU64,
}

/// Default records per ring: 4096 × 32 B = 128 KiB per instrumented writer.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Handle to the tracing subsystem. Cheap to clone; `disabled()` is the
/// always-available no-op used everywhere tracing is not requested.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// The no-op tracer: writers carry no ring and record nothing.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An active tracer with default ring capacity and no sampling.
    pub fn enabled() -> Tracer {
        Tracer::with_config(DEFAULT_RING_CAPACITY, 0)
    }

    /// `ring_capacity` records per writer (rounded up to a power of two);
    /// `sample_shift` records one in `2^shift` Call spans.
    pub fn with_config(ring_capacity: usize, sample_shift: u32) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                names: Mutex::new(NameTable::new()),
                tracks: Mutex::new(Vec::new()),
                ring_capacity,
                sample_shift,
                next_tid: AtomicUsize::new(0),
                drained_dropped: AtomicU64::new(0),
            })),
        }
    }

    /// Call spans are recorded 1-in-`2^shift` (0 when disabled).
    pub fn sample_shift(&self) -> u32 {
        self.inner.as_ref().map_or(0, |i| i.sample_shift)
    }

    /// Records per writer ring (0 when disabled).
    pub fn ring_capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.ring_capacity)
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Intern a name (cold path: wiring/registration time only). Returns 0
    /// when disabled.
    pub fn intern(&self, name: &str) -> u32 {
        match &self.inner {
            Some(inner) => inner.names.lock().intern(name),
            None => 0,
        }
    }

    /// Create the writer for one instrumented entity. `pid` groups tracks in
    /// the timeline viewer (we use the member id); `label` becomes the
    /// track's thread name. Disabled tracers return a no-op writer without
    /// allocating.
    pub fn writer(&self, pid: u32, label: &str) -> TraceWriter {
        let Some(inner) = &self.inner else {
            return TraceWriter { inner: None };
        };
        let ring = Arc::new(Ring::new(inner.ring_capacity));
        // ordering: Relaxed — the id only needs uniqueness, and the track
        // list it keys is published under the `tracks` mutex.
        let tid = inner.next_tid.fetch_add(1, Ordering::Relaxed) as u32;
        inner.tracks.lock().push(Track {
            info: TrackInfo {
                pid,
                tid,
                label: label.to_string(),
            },
            ring: ring.clone(),
        });
        TraceWriter {
            inner: Some(WriterInner {
                ring,
                tracer: inner.clone(),
                sample_mask: (1u64 << inner.sample_shift) - 1,
                calls_seen: 0,
            }),
        }
    }

    /// Records discarded because some ring was full, since the last drain.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner
                .tracks
                .lock()
                .iter()
                .map(|t| t.ring.dropped.load(Ordering::Relaxed))
                .sum(),
            None => 0,
        }
    }

    /// Run-cumulative ring-full drops: drains reset the per-ring counters
    /// (the drops move into the drained [`TraceData`]), so the flight
    /// recorder's fidelity metric adds the already-swept total back in.
    pub fn dropped_total(&self) -> u64 {
        match &self.inner {
            Some(inner) => {
                // ordering: Relaxed — statistics, no ordering obligations.
                inner.drained_dropped.load(Ordering::Relaxed) + self.dropped()
            }
            None => 0,
        }
    }

    /// Records currently buffered (pending drain) across all rings.
    pub fn pending(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.tracks.lock().iter().map(|t| t.ring.len()).sum(),
            None => 0,
        }
    }

    /// Drain every ring into `data`, refreshing its name table and track
    /// list. Call periodically during long runs (rings are small by design)
    /// and once at the end. Records beyond `data.capacity` are discarded and
    /// counted in `data.dropped`.
    pub fn drain_into(&self, data: &mut TraceData) {
        let Some(inner) = &self.inner else { return };
        {
            let names = inner.names.lock();
            data.names = names.names.clone();
        }
        let tracks = inner.tracks.lock();
        for t in tracks.iter() {
            if data.tracks.len() <= t.info.tid as usize {
                data.tracks.resize(t.info.tid as usize + 1, t.info.clone());
            }
            data.tracks[t.info.tid as usize] = t.info.clone();
            let mut scratch = Vec::new();
            t.ring.drain_into(&mut scratch);
            for rec in scratch {
                if data.events.len() >= data.capacity {
                    data.dropped += 1;
                } else {
                    data.events.push(TraceEvent {
                        track: t.info.tid,
                        rec,
                    });
                }
            }
            // ordering: Relaxed — the drop counter is a statistic; RMW
            // atomicity alone keeps drain-and-reset lossless.
            let swept = t.ring.dropped.swap(0, Ordering::Relaxed);
            data.dropped += swept;
            inner.drained_dropped.fetch_add(swept, Ordering::Relaxed);
        }
    }

    /// Convenience: drain everything into a fresh [`TraceData`].
    pub fn drain(&self) -> TraceData {
        let mut d = TraceData::new();
        self.drain_into(&mut d);
        d
    }
}

struct WriterInner {
    ring: Arc<Ring>,
    tracer: Arc<TracerInner>,
    sample_mask: u64,
    calls_seen: u64,
}

/// The hot-path handle one instrumented entity records through. Single
/// owner (not `Clone`): each writer is the sole producer of its ring.
pub struct TraceWriter {
    inner: Option<WriterInner>,
}

impl Default for TraceWriter {
    fn default() -> Self {
        TraceWriter::disabled()
    }
}

impl TraceWriter {
    /// A writer that records nothing and owns nothing.
    pub fn disabled() -> TraceWriter {
        TraceWriter { inner: None }
    }

    /// Whether records are being kept. Use to skip clock reads and payload
    /// computation entirely when tracing is off.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Intern a name through the owning tracer (cold path). 0 when
    /// disabled.
    // jet-analyze: allow(block) — names are interned once per distinct string at wiring time
    pub fn intern(&self, name: &str) -> u32 {
        match &self.inner {
            Some(w) => w.tracer.names.lock().intern(name),
            None => 0,
        }
    }

    /// Record one span/instant. No-op when disabled.
    #[inline]
    pub fn record(&mut self, kind: TraceKind, ts: u64, dur: u64, name: u32, arg: i64) {
        if let Some(w) = &self.inner {
            w.ring.push(SpanRecord {
                ts,
                dur,
                name,
                kind,
                arg,
            });
        }
    }

    /// Record a `Call` span, subject to the tracer's sampling policy.
    #[inline]
    pub fn record_call(&mut self, ts: u64, dur: u64, name: u32) {
        if let Some(w) = &mut self.inner {
            w.calls_seen = w.calls_seen.wrapping_add(1);
            if w.calls_seen & w.sample_mask != 0 {
                return;
            }
            w.ring.push(SpanRecord {
                ts,
                dur,
                name,
                kind: TraceKind::Call,
                arg: 0,
            });
        }
    }
}

/// One drained record with the track it came from.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Index into [`TraceData::tracks`].
    pub track: u32,
    pub rec: SpanRecord,
}

/// A job-level trace: everything drained from a tracer's rings, ready to
/// render. Bounded by `capacity` (overflow is counted in `dropped`).
pub struct TraceData {
    pub names: Vec<String>,
    pub tracks: Vec<TrackInfo>,
    pub events: Vec<TraceEvent>,
    /// Records lost to full rings or the collector capacity.
    pub dropped: u64,
    /// Max events retained (default 1M ≈ 150 MB of JSON; benches lower it).
    pub capacity: usize,
}

impl Default for TraceData {
    fn default() -> Self {
        TraceData::new()
    }
}

impl TraceData {
    pub fn new() -> TraceData {
        TraceData {
            names: vec!["?".to_string()],
            tracks: Vec::new(),
            events: Vec::new(),
            dropped: 0,
            capacity: 1_000_000,
        }
    }

    pub fn with_capacity(capacity: usize) -> TraceData {
        TraceData {
            capacity,
            ..TraceData::new()
        }
    }

    pub fn name(&self, id: u32) -> &str {
        self.names
            .get(id as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Move another drain's events into this trace (capacity-bounded, the
    /// overflow counted in `dropped`), adopting its name table / track list
    /// (which only ever grow) and taking over its drop count. Lets one
    /// periodic `drain_into` a scratch buffer feed several consumers.
    pub fn absorb(&mut self, other: &mut TraceData) {
        if other.names.len() > self.names.len() {
            self.names.clone_from(&other.names);
        }
        if other.tracks.len() > self.tracks.len() {
            self.tracks.clone_from(&other.tracks);
        }
        for ev in other.events.drain(..) {
            if self.events.len() >= self.capacity {
                self.dropped += 1;
            } else {
                self.events.push(ev);
            }
        }
        self.dropped += other.dropped;
        other.dropped = 0;
    }

    /// Events of one kind, in drain order.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.rec.kind == kind)
    }

    /// The `k` slowest `Call` spans whose name contains `name_filter`
    /// (empty matches all), slowest first.
    pub fn top_k_slowest_calls(&self, name_filter: &str, k: usize) -> Vec<&TraceEvent> {
        let mut calls: Vec<&TraceEvent> = self
            .of_kind(TraceKind::Call)
            .filter(|e| name_filter.is_empty() || self.name(e.rec.name).contains(name_filter))
            .collect();
        calls.sort_by(|a, b| b.rec.dur.cmp(&a.rec.dur).then(a.rec.ts.cmp(&b.rec.ts)));
        calls.truncate(k);
        calls
    }

    /// Render as Chrome trace-event JSON (the format Perfetto and
    /// `chrome://tracing` load). Spans with a duration become complete
    /// events (`"ph":"X"`); zero-duration records become thread-scoped
    /// instants (`"ph":"i"`). Timestamps are microseconds (fractional
    /// nanos preserved).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 150);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut emit = |s: String, out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(&s);
        };
        // Track metadata: name each pid (member) and tid (writer label).
        let mut seen_pids: Vec<u32> = Vec::new();
        for t in &self.tracks {
            if !seen_pids.contains(&t.pid) {
                seen_pids.push(t.pid);
                emit(
                    format!(
                        "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\
                         \"args\":{{\"name\":\"member-{}\"}}}}",
                        t.pid, t.pid
                    ),
                    &mut out,
                );
            }
            emit(
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{},\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    t.pid,
                    t.tid,
                    json_escape(&t.label)
                ),
                &mut out,
            );
        }
        for e in &self.events {
            let Some(track) = self.tracks.get(e.track as usize) else {
                continue;
            };
            let r = &e.rec;
            let ts_us = r.ts as f64 / 1_000.0;
            let name = json_escape(self.name(r.name));
            let kind = r.kind.name();
            let s = if r.dur > 0 {
                format!(
                    "{{\"ph\":\"X\",\"name\":\"{name}\",\"cat\":\"{kind}\",\
                     \"ts\":{ts_us:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{},\
                     \"args\":{{\"arg\":{}}}}}",
                    r.dur as f64 / 1_000.0,
                    track.pid,
                    track.tid,
                    r.arg
                )
            } else {
                format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{name}\",\"cat\":\"{kind}\",\
                     \"ts\":{ts_us:.3},\"pid\":{},\"tid\":{},\
                     \"args\":{{\"arg\":{}}}}}",
                    track.pid, track.tid, r.arg
                )
            };
            emit(s, &mut out);
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Loom models of the trace ring's writer/collector protocol. Run with
/// `RUSTFLAGS="--cfg loom" cargo test -p jet-core --lib trace::loom_tests`.
#[cfg(all(loom, test))]
mod loom_tests {
    use super::*;
    use loom::thread;

    fn rec(ts: u64) -> SpanRecord {
        SpanRecord {
            ts,
            dur: 1,
            name: 0,
            kind: TraceKind::Call,
            arg: 0,
        }
    }

    /// A writer racing a draining collector on a 2-slot ring: every record
    /// is either drained in order or counted as dropped — never lost, never
    /// duplicated, never torn.
    #[test]
    fn ring_accepts_or_counts_every_record() {
        loom::model(|| {
            let ring = crate::sync::Arc::new(Ring::new(2));
            let writer = thread::spawn({
                let ring = ring.clone();
                move || {
                    for i in 0..3u64 {
                        ring.push(rec(i));
                    }
                    // ordering: Relaxed — the writer reads its own counter.
                    ring.dropped.load(Ordering::Relaxed)
                }
            });
            let mut out = Vec::new();
            ring.drain_into(&mut out);
            let dropped = writer.join().unwrap();
            // Writer is done: one final drain empties the ring.
            ring.drain_into(&mut out);
            assert_eq!(
                out.len() as u64 + dropped,
                3,
                "records lost or duplicated: drained {out:?}, dropped {dropped}"
            );
            // Drained records keep the writer's order and are never torn.
            for pair in out.windows(2) {
                assert!(pair[0].ts < pair[1].ts, "reordered: {pair:?}");
            }
            for r in &out {
                assert_eq!(r.dur, 1, "torn record: {r:?}");
            }
        });
    }

    /// The sampling counter together with the ring under a concurrent
    /// drain: exactly one of every 2 calls is kept, none of the kept
    /// records can be lost (ring never fills at this rate).
    #[test]
    fn sampled_writer_with_concurrent_collector() {
        loom::model(|| {
            let tracer = Tracer::with_config(4, 1); // keep 1 in 2 calls
            let mut data = TraceData::new();
            let writer = thread::spawn({
                let mut w = tracer.writer(0, "w");
                move || {
                    for i in 0..4u64 {
                        w.record_call(i, 1, 0);
                    }
                }
            });
            tracer.drain_into(&mut data);
            writer.join().unwrap();
            tracer.drain_into(&mut data);
            let ts: Vec<u64> = data.events.iter().map(|e| e.rec.ts).collect();
            assert_eq!(ts, vec![1, 3], "sampling must keep calls 2 and 4");
            assert_eq!(data.dropped, 0, "sampling is not a drop");
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn rec(ts: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            ts,
            dur,
            name: 1,
            kind: TraceKind::Call,
            arg: 0,
        }
    }

    #[test]
    fn span_record_is_fixed_size() {
        assert!(std::mem::size_of::<SpanRecord>() <= 32);
    }

    #[test]
    fn ring_wraps_around_many_times() {
        let ring = Ring::new(8);
        let mut out = Vec::new();
        for round in 0u64..100 {
            for i in 0..5 {
                ring.push(rec(round * 10 + i, 1));
            }
            out.clear();
            assert_eq!(ring.drain_into(&mut out), 5);
            assert_eq!(out.len(), 5);
            assert_eq!(out[0].ts, round * 10);
            assert_eq!(out[4].ts, round * 10 + 4);
        }
        assert_eq!(ring.dropped.load(Ordering::Relaxed), 0, "no drops expected");
    }

    #[test]
    fn ring_counts_drops_under_overflow_and_never_blocks() {
        let ring = Ring::new(4); // power of two, 4 slots
        for i in 0..10 {
            ring.push(rec(i, 1));
        }
        assert_eq!(ring.dropped.load(Ordering::Relaxed), 6);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        // The first 4 records survived, in order.
        assert_eq!(
            out.iter().map(|r| r.ts).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // After draining there is room again.
        ring.push(rec(99, 1));
        out.clear();
        ring.drain_into(&mut out);
        assert_eq!(out[0].ts, 99);
    }

    #[test]
    fn concurrent_writer_and_reader_lose_nothing_that_was_accepted() {
        let tracer = Tracer::with_config(1 << 12, 0);
        let mut writer = tracer.writer(0, "w");
        const N: u64 = if cfg!(miri) { 500 } else { 200_000 };
        let collector = std::thread::spawn({
            let tracer = tracer.clone();
            move || {
                let mut data = TraceData::new();
                // Drain until the writer signals completion via a sentinel.
                loop {
                    tracer.drain_into(&mut data);
                    if data.events.iter().any(|e| e.rec.ts == u64::MAX) {
                        return data;
                    }
                    std::thread::yield_now();
                }
            }
        });
        for i in 0..N {
            writer.record(TraceKind::Call, i, 1, 1, 0);
        }
        // The sentinel can itself be dropped when the ring is momentarily
        // full — retry until the ring accepts it, and keep the retries out
        // of the loss accounting.
        let mut sentinel_drops = 0;
        loop {
            let before = tracer.dropped();
            writer.record(TraceKind::Call, u64::MAX, 1, 1, 0);
            if tracer.dropped() == before {
                break;
            }
            sentinel_drops += 1;
            std::thread::yield_now();
        }
        let data = collector.join().unwrap();
        // accepted = drained + sentinel; accepted + dropped = offered.
        let drained = data.events.len() as u64 - 1;
        assert_eq!(
            drained + (data.dropped - sentinel_drops),
            N,
            "records leaked or duplicated"
        );
        // Drained timestamps are strictly increasing (order preserved).
        let mut last = None;
        for e in data.events.iter().take(data.events.len() - 1) {
            if let Some(prev) = last {
                assert!(e.rec.ts > prev, "out of order: {} after {prev}", e.rec.ts);
            }
            last = Some(e.rec.ts);
        }
    }

    #[test]
    fn disabled_tracer_records_nothing_and_allocates_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let mut w = tracer.writer(0, "hot");
        assert!(!w.enabled());
        // A no-op writer holds no ring: the whole handle is a None.
        assert_eq!(
            std::mem::size_of_val(&w.inner),
            std::mem::size_of::<Option<WriterInner>>()
        );
        assert!(
            w.inner.is_none(),
            "disabled writer must not allocate a ring"
        );
        for i in 0..1000 {
            w.record(TraceKind::Stall, i, 0, 0, 0);
            w.record_call(i, 5, 0);
        }
        assert_eq!(tracer.intern("x"), 0);
        assert_eq!(tracer.dropped(), 0);
        let data = tracer.drain();
        assert!(data.events.is_empty());
        assert!(data.tracks.is_empty());
    }

    #[test]
    fn call_sampling_keeps_one_in_2k() {
        let tracer = Tracer::with_config(1 << 12, 2); // 1 in 4
        let mut w = tracer.writer(0, "sampled");
        for i in 0..100 {
            w.record_call(i, 1, 0);
        }
        let data = tracer.drain();
        assert_eq!(data.events.len(), 25);
        assert_eq!(data.dropped, 0, "sampling is not a drop");
        // Non-call kinds are never sampled away.
        let mut w2 = tracer.writer(0, "unsampled");
        for i in 0..10 {
            w2.record(TraceKind::WmEmit, i, 0, 0, i as i64);
        }
        let data = tracer.drain();
        assert_eq!(data.events.len(), 10);
    }

    #[test]
    fn interning_is_stable_and_shared() {
        let tracer = Tracer::enabled();
        let a = tracer.intern("vertex-a");
        let b = tracer.intern("vertex-b");
        assert_ne!(a, b);
        assert_eq!(tracer.intern("vertex-a"), a);
        let w = tracer.writer(0, "w");
        assert_eq!(w.intern("vertex-b"), b);
        let data = tracer.drain();
        assert_eq!(data.name(a), "vertex-a");
        assert_eq!(data.name(0), "?");
    }

    #[test]
    fn collector_capacity_bounds_job_trace() {
        let tracer = Tracer::enabled();
        let mut w = tracer.writer(0, "w");
        for i in 0..100 {
            w.record(TraceKind::Call, i, 1, 0, 0);
        }
        let mut data = TraceData::with_capacity(30);
        tracer.drain_into(&mut data);
        assert_eq!(data.events.len(), 30);
        assert_eq!(data.dropped, 70);
    }

    #[test]
    fn chrome_json_is_well_formed_and_complete() {
        let tracer = Tracer::enabled();
        let name = tracer.intern("map \"v\"");
        let mut w = tracer.writer(3, "m3/core-0");
        w.record(TraceKind::Call, 1_500, 2_000, name, 0);
        w.record(TraceKind::WmEmit, 4_000, 0, name, 42);
        let data = tracer.drain();
        let json = data.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        // Complete event with proper ph/ts/dur/pid/tid fields.
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains("\"pid\":3"));
        // Instant event for the zero-duration record.
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"arg\":42"));
        // Metadata names the process and thread.
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("member-3"));
        assert!(json.contains("m3/core-0"));
        // Escaped name survived.
        assert!(json.contains("map \\\"v\\\""));
        // Structural sanity: balanced braces/brackets.
        assert_eq!(
            json.matches(['{', '[']).count(),
            json.matches(['}', ']']).count()
        );
    }

    #[test]
    fn top_k_slowest_calls_sorts_and_filters() {
        let tracer = Tracer::enabled();
        let a = tracer.intern("vertex-a");
        let b = tracer.intern("vertex-b");
        let mut w = tracer.writer(0, "w");
        w.record(TraceKind::Call, 0, 10, a, 0);
        w.record(TraceKind::Call, 1, 50, b, 0);
        w.record(TraceKind::Call, 2, 30, a, 0);
        w.record(TraceKind::Stall, 3, 0, a, 0);
        let data = tracer.drain();
        let top = data.top_k_slowest_calls("", 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].rec.dur, 50);
        assert_eq!(top[1].rec.dur, 30);
        let only_a = data.top_k_slowest_calls("vertex-a", 10);
        assert_eq!(only_a.len(), 2);
        assert!(only_a.iter().all(|e| data.name(e.rec.name) == "vertex-a"));
    }
}

//! Execution planning: turning a [`Dag`] into wired tasklets for one member.
//!
//! Jet "deploys the *complete* dataflow graph on every available CPU core"
//! (§3.1, Fig. 3): each vertex gets `local_parallelism` processor instances
//! (default: one per cooperative thread), and every edge becomes a mesh of
//! SPSC queues — producer instance i owns lane i of every consumer's
//! conveyor. Multi-member wiring (distributed edges through the
//! flow-controlled sender/receiver pair) is layered on top by `jet-cluster`,
//! reusing these primitives.

use crate::dag::{Dag, Routing};
use crate::item::{Item, SnapshotId};
use crate::outbound::OutboundCollector;
use crate::processor::{Guarantee, ProcessorContext};
use crate::snapshot::SnapshotRegistry;
use crate::tasklet::{InputConveyor, ProcessorTasklet, Tasklet, DEFAULT_BATCH};
use jet_imdg::SnapshotStore;
use jet_queue::{Conveyor, Producer};
use jet_util::clock::SharedClock;
use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Configuration for a single-member execution.
#[derive(Clone)]
pub struct LocalConfig {
    /// Cooperative worker threads; also the default vertex parallelism.
    pub threads: usize,
    /// Inbox batch size per tasklet timeslice.
    pub batch: usize,
    pub guarantee: Guarantee,
    pub clock: SharedClock,
    /// Key partition space (defaults to IMDG's 271).
    pub partition_count: u32,
}

impl LocalConfig {
    pub fn new(threads: usize) -> Self {
        LocalConfig {
            threads: threads.max(1),
            batch: DEFAULT_BATCH,
            guarantee: Guarantee::None,
            clock: jet_util::clock::system_clock(),
            partition_count: jet_imdg::DEFAULT_PARTITION_COUNT,
        }
    }

    pub fn with_guarantee(mut self, g: Guarantee) -> Self {
        self.guarantee = g;
        self
    }

    pub fn with_clock(mut self, clock: SharedClock) -> Self {
        self.clock = clock;
        self
    }

    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }
}

/// A fully wired single-member execution, ready to hand to an executor.
pub struct LocalExecution {
    pub tasklets: Vec<Box<dyn Tasklet>>,
    pub cancelled: Arc<AtomicBool>,
}

/// Wire `dag` into tasklets for a single member. When `restore` is given,
/// every processor is fed the vertex's records from that snapshot before
/// execution starts (§4.4 recovery).
pub fn build_local(
    dag: &Dag,
    cfg: &LocalConfig,
    registry: &Arc<SnapshotRegistry>,
    restore: Option<(&SnapshotStore, SnapshotId)>,
) -> Result<LocalExecution, String> {
    dag.validate()?;
    for e in dag.edges() {
        if e.distributed {
            return Err(
                "distributed edge in single-member plan; use jet-cluster for multi-member jobs"
                    .into(),
            );
        }
    }
    let nv = dag.vertices().len();
    let lp: Vec<usize> = dag
        .vertices()
        .iter()
        .map(|v| v.local_parallelism.unwrap_or(cfg.threads))
        .collect();

    // Per (consumer vertex, instance): input conveyors in ordinal order.
    let mut inputs: HashMap<(usize, usize), Vec<InputConveyor>> = HashMap::new();
    // Per (producer vertex, instance, out ordinal): one producer handle per
    // consumer instance.
    let mut out_handles: HashMap<(usize, usize, usize), Vec<Producer<Item>>> = HashMap::new();

    for e in dag.edges() {
        let producers = lp[e.from];
        let consumers = lp[e.to];
        for j in 0..consumers {
            let (conveyor, handles) = Conveyor::new(producers, e.queue_capacity);
            inputs.entry((e.to, j)).or_default().push(InputConveyor {
                ordinal: e.to_ordinal,
                priority: e.priority,
                conveyor,
            });
            for (i, h) in handles.into_iter().enumerate() {
                out_handles
                    .entry((e.from, i, e.from_ordinal))
                    .or_default()
                    .push(h);
            }
        }
    }

    let cancelled = Arc::new(AtomicBool::new(false));
    let mut tasklets: Vec<Box<dyn Tasklet>> = Vec::new();
    let mut participants = 0usize;

    for v in 0..nv {
        let vertex = &dag.vertices()[v];
        let out_edges = dag.out_edges(v);
        let parallelism = lp[v];
        let restore_records: Option<Vec<(Vec<u8>, Vec<u8>)>> =
            restore.map(|(store, id)| store.read_vertex(id, &vertex.name));
        for i in 0..parallelism {
            // Ownership: partitioned edges route partition p to instance
            // p % parallelism (single member).
            let owned: Vec<bool> = (0..cfg.partition_count)
                .map(|p| (p as usize) % parallelism == i)
                .collect();
            let ctx = ProcessorContext {
                vertex: vertex.name.clone(),
                global_index: i,
                total_parallelism: parallelism,
                member: 0,
                clock: cfg.clock.clone(),
                guarantee: cfg.guarantee,
                cancelled: cancelled.clone(),
                partition_count: cfg.partition_count,
                owned_partitions: Arc::new(owned),
            };
            let mut processor = (vertex.supplier)(i);
            if let Some(records) = &restore_records {
                for (k, val) in records {
                    processor.restore_from_snapshot(k, val, &ctx);
                }
                processor.finish_snapshot_restore(&ctx);
            }
            // Build collectors in out-ordinal order.
            let mut collectors = Vec::new();
            for e in &out_edges {
                let targets = out_handles
                    .remove(&(v, i, e.from_ordinal))
                    .ok_or_else(|| format!("missing out wiring for {}:{}", vertex.name, i))?;
                let consumers = lp[e.to];
                let ptt: Vec<u16> = match &e.routing {
                    Routing::Partitioned(_) => (0..cfg.partition_count)
                        .map(|p| ((p as usize) % consumers) as u16)
                        .collect(),
                    _ => Vec::new(),
                };
                collectors.push(OutboundCollector::new(
                    e.routing.clone(),
                    targets,
                    ptt,
                    cfg.partition_count,
                    i.min(consumers - 1),
                ));
            }
            let ins = inputs.remove(&(v, i)).unwrap_or_default();
            let tasklet =
                ProcessorTasklet::new(processor, ctx, ins, collectors, registry.clone(), cfg.batch);
            participants += 1;
            tasklets.push(Box::new(tasklet));
        }
    }
    registry.set_participants(participants);
    Ok(LocalExecution {
        tasklets,
        cancelled,
    })
}

//! The Core API's DAG: vertices (operators) connected by edges with
//! explicit routing, locality, priority and queue sizing (paper §2.2).

use crate::object::Object;
use crate::processor::ProcessorSupplier;
use std::sync::Arc;

/// Index of a vertex within its DAG.
pub type VertexId = usize;

/// Key-hash extractor for partitioned edges: maps an event payload to the
/// stable hash of its partitioning key.
pub type KeyHashFn = Arc<dyn Fn(&dyn Object) -> u64 + Send + Sync>;

/// How events on an edge are routed to the consumer's parallel instances
/// (§3.1).
#[derive(Clone)]
pub enum Routing {
    /// Any instance may get any item; the engine round-robins for balance.
    Unicast,
    /// Producer instance i feeds exactly consumer instance i (requires equal
    /// parallelism). This is what operator fusion degenerates to when the
    /// planner cannot fuse but wants no reshuffling.
    Isolated,
    /// Route by key hash so all events of one key hit one instance. The
    /// partition space is IMDG's (271 partitions), aligning processing with
    /// state placement (§4.1).
    Partitioned(KeyHashFn),
    /// Every instance receives every item (cloned).
    Broadcast,
}

impl std::fmt::Debug for Routing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Routing::Unicast => write!(f, "Unicast"),
            Routing::Isolated => write!(f, "Isolated"),
            Routing::Partitioned(_) => write!(f, "Partitioned"),
            Routing::Broadcast => write!(f, "Broadcast"),
        }
    }
}

/// Default SPSC queue capacity between two tasklets (Jet's default is 1024).
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// An edge between two vertices.
#[derive(Clone, Debug)]
pub struct Edge {
    pub from: VertexId,
    /// Output ordinal at the producer.
    pub from_ordinal: usize,
    pub to: VertexId,
    /// Input ordinal at the consumer.
    pub to_ordinal: usize,
    pub routing: Routing,
    /// Distributed edges cross member boundaries through the flow-controlled
    /// sender/receiver pair (§3.3); local edges never leave the node.
    pub distributed: bool,
    /// Lower value = consumed earlier. A vertex finishes all higher-priority
    /// inputs before draining lower-priority ones — how the hash join
    /// consumes its build side before probing (Listing 2).
    pub priority: i32,
    pub queue_capacity: usize,
}

impl Edge {
    /// Local unicast edge `from:0 -> to:0`.
    pub fn between(from: VertexId, to: VertexId) -> Edge {
        Edge {
            from,
            from_ordinal: 0,
            to,
            to_ordinal: 0,
            routing: Routing::Unicast,
            distributed: false,
            priority: 0,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
        }
    }

    pub fn from_ordinal(mut self, o: usize) -> Edge {
        self.from_ordinal = o;
        self
    }

    pub fn to_ordinal(mut self, o: usize) -> Edge {
        self.to_ordinal = o;
        self
    }

    pub fn isolated(mut self) -> Edge {
        self.routing = Routing::Isolated;
        self
    }

    pub fn broadcast(mut self) -> Edge {
        self.routing = Routing::Broadcast;
        self
    }

    /// Partition by a key extracted from the concrete payload type `T`.
    pub fn partitioned_by<T, K, F>(mut self, key_fn: F) -> Edge
    where
        T: 'static,
        K: std::hash::Hash,
        F: Fn(&T) -> K + Send + Sync + 'static,
    {
        self.routing = Routing::Partitioned(Arc::new(move |obj: &dyn Object| {
            let t = crate::object::downcast_ref::<T>(obj);
            jet_util::seq::hash_of(&key_fn(t))
        }));
        self
    }

    /// Partition by an already-computed hash function over the payload.
    pub fn partitioned_raw(mut self, f: KeyHashFn) -> Edge {
        self.routing = Routing::Partitioned(f);
        self
    }

    pub fn distributed(mut self) -> Edge {
        self.distributed = true;
        self
    }

    pub fn priority(mut self, p: i32) -> Edge {
        self.priority = p;
        self
    }

    pub fn queue_capacity(mut self, cap: usize) -> Edge {
        self.queue_capacity = cap;
        self
    }
}

/// A vertex: name + parallelism + processor factory.
#[derive(Clone)]
pub struct Vertex {
    pub name: String,
    /// Parallel instances per member; `None` = one per cooperative thread
    /// (Jet's default — "deploys the complete dataflow graph on every
    /// available CPU core", §3.1).
    pub local_parallelism: Option<usize>,
    pub supplier: ProcessorSupplier,
}

/// The dataflow graph handed to the execution planner.
#[derive(Default, Clone)]
pub struct Dag {
    vertices: Vec<Vertex>,
    edges: Vec<Edge>,
}

impl Dag {
    pub fn new() -> Dag {
        Dag {
            vertices: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add a vertex; returns its id.
    pub fn vertex(&mut self, name: impl Into<String>, supplier: ProcessorSupplier) -> VertexId {
        self.vertices.push(Vertex {
            name: name.into(),
            local_parallelism: None,
            supplier,
        });
        self.vertices.len() - 1
    }

    /// Add a vertex with explicit local parallelism.
    pub fn vertex_with_parallelism(
        &mut self,
        name: impl Into<String>,
        local_parallelism: usize,
        supplier: ProcessorSupplier,
    ) -> VertexId {
        assert!(local_parallelism > 0);
        self.vertices.push(Vertex {
            name: name.into(),
            local_parallelism: Some(local_parallelism),
            supplier,
        });
        self.vertices.len() - 1
    }

    pub fn edge(&mut self, e: Edge) {
        assert!(e.from < self.vertices.len(), "edge.from out of range");
        assert!(e.to < self.vertices.len(), "edge.to out of range");
        self.edges.push(e);
    }

    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    pub fn vertex_named(&self, name: &str) -> Option<VertexId> {
        self.vertices.iter().position(|v| v.name == name)
    }

    /// Input edges of `v`, sorted by input ordinal.
    pub fn in_edges(&self, v: VertexId) -> Vec<&Edge> {
        let mut es: Vec<&Edge> = self.edges.iter().filter(|e| e.to == v).collect();
        es.sort_by_key(|e| e.to_ordinal);
        es
    }

    /// Output edges of `v`, sorted by output ordinal.
    pub fn out_edges(&self, v: VertexId) -> Vec<&Edge> {
        let mut es: Vec<&Edge> = self.edges.iter().filter(|e| e.from == v).collect();
        es.sort_by_key(|e| e.from_ordinal);
        es
    }

    /// Source vertices (no inputs).
    pub fn sources(&self) -> Vec<VertexId> {
        (0..self.vertices.len())
            .filter(|&v| self.edges.iter().all(|e| e.to != v))
            .collect()
    }

    /// Render the DAG in Graphviz dot format (the Management Center's job
    /// graph view, §2: "a web UI ... from where users can manage and
    /// monitor Jet jobs" — this is the embeddable equivalent).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph jet {\n  rankdir=LR;\n  node [shape=box];\n");
        for (i, v) in self.vertices.iter().enumerate() {
            let lp = v
                .local_parallelism
                .map(|n| format!(" x{n}"))
                .unwrap_or_default();
            let _ = writeln!(out, "  v{i} [label=\"{}{}\"];", v.name, lp);
        }
        for e in &self.edges {
            let style = match e.routing {
                Routing::Unicast => "",
                Routing::Isolated => " [style=dotted,label=\"isolated\"]",
                Routing::Partitioned(_) => " [color=blue,label=\"partitioned\"]",
                Routing::Broadcast => " [color=red,label=\"broadcast\"]",
            };
            let _ = writeln!(out, "  v{} -> v{}{};", e.from, e.to, style);
        }
        out.push_str("}\n");
        out
    }

    /// Validate the graph: acyclic, dense ordinals, isolated-edge
    /// parallelism compatibility. Returns a topological order.
    pub fn validate(&self) -> Result<Vec<VertexId>, String> {
        // Ordinal density per vertex.
        for v in 0..self.vertices.len() {
            for (i, e) in self.in_edges(v).iter().enumerate() {
                if e.to_ordinal != i {
                    return Err(format!(
                        "vertex '{}': input ordinals not dense (missing ordinal {i})",
                        self.vertices[v].name
                    ));
                }
            }
            for (i, e) in self.out_edges(v).iter().enumerate() {
                if e.from_ordinal != i {
                    return Err(format!(
                        "vertex '{}': output ordinals not dense (missing ordinal {i})",
                        self.vertices[v].name
                    ));
                }
            }
        }
        // Isolated edges need equal parallelism (when both set explicitly).
        for e in &self.edges {
            if matches!(e.routing, Routing::Isolated) {
                let (a, b) = (
                    self.vertices[e.from].local_parallelism,
                    self.vertices[e.to].local_parallelism,
                );
                if let (Some(a), Some(b)) = (a, b) {
                    if a != b {
                        return Err(format!(
                            "isolated edge '{}'->'{}' requires equal parallelism ({a} != {b})",
                            self.vertices[e.from].name, self.vertices[e.to].name
                        ));
                    }
                }
                if e.distributed {
                    return Err("isolated edges cannot be distributed".into());
                }
            }
        }
        // Kahn's algorithm for cycle detection.
        let n = self.vertices.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.to] += 1;
        }
        let mut queue: Vec<VertexId> = (0..n).filter(|&v| indegree[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for e in &self.edges {
                if e.from == v {
                    indegree[e.to] -= 1;
                    if indegree[e.to] == 0 {
                        queue.push(e.to);
                    }
                }
            }
        }
        if order.len() != n {
            return Err("DAG contains a cycle".into());
        }
        Ok(order)
    }
}

impl std::fmt::Debug for Dag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Dag {{")?;
        for (i, v) in self.vertices.iter().enumerate() {
            writeln!(f, "  [{i}] {} (lp={:?})", v.name, v.local_parallelism)?;
        }
        for e in &self.edges {
            writeln!(
                f,
                "  {}:{} -> {}:{} {:?}{}{}",
                self.vertices[e.from].name,
                e.from_ordinal,
                self.vertices[e.to].name,
                e.to_ordinal,
                e.routing,
                if e.distributed { " dist" } else { "" },
                if e.priority != 0 {
                    format!(" prio={}", e.priority)
                } else {
                    String::new()
                },
            )?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::{supplier, Inbox, Outbox, Processor, ProcessorContext};

    struct Nop;
    impl Processor for Nop {
        fn process(&mut self, _: usize, _: &mut Inbox, _: &mut Outbox, _: &ProcessorContext) {}
    }

    fn nop() -> ProcessorSupplier {
        supplier(|_| Box::new(Nop))
    }

    #[test]
    fn build_linear_dag_and_validate() {
        let mut dag = Dag::new();
        let a = dag.vertex("src", nop());
        let b = dag.vertex("map", nop());
        let c = dag.vertex("sink", nop());
        dag.edge(Edge::between(a, b));
        dag.edge(Edge::between(b, c));
        let order = dag.validate().unwrap();
        assert_eq!(order.len(), 3);
        assert_eq!(dag.sources(), vec![a]);
        assert_eq!(dag.vertex_named("map"), Some(b));
        assert!(dag.vertex_named("nope").is_none());
    }

    #[test]
    fn cycle_is_rejected() {
        let mut dag = Dag::new();
        let a = dag.vertex("a", nop());
        let b = dag.vertex("b", nop());
        dag.edge(Edge::between(a, b));
        dag.edge(Edge::between(b, a));
        assert!(dag.validate().unwrap_err().contains("cycle"));
    }

    #[test]
    fn sparse_ordinals_rejected() {
        let mut dag = Dag::new();
        let a = dag.vertex("a", nop());
        let b = dag.vertex("b", nop());
        dag.edge(Edge::between(a, b).to_ordinal(1));
        assert!(dag.validate().unwrap_err().contains("ordinals"));
    }

    #[test]
    fn isolated_edge_parallelism_mismatch_rejected() {
        let mut dag = Dag::new();
        let a = dag.vertex_with_parallelism("a", 2, nop());
        let b = dag.vertex_with_parallelism("b", 3, nop());
        dag.edge(Edge::between(a, b).isolated());
        assert!(dag.validate().unwrap_err().contains("isolated"));
    }

    #[test]
    fn distributed_isolated_rejected() {
        let mut dag = Dag::new();
        let a = dag.vertex("a", nop());
        let b = dag.vertex("b", nop());
        dag.edge(Edge::between(a, b).isolated().distributed());
        assert!(dag.validate().is_err());
    }

    #[test]
    fn in_out_edges_sorted_by_ordinal() {
        let mut dag = Dag::new();
        let a = dag.vertex("a", nop());
        let b = dag.vertex("b", nop());
        let j = dag.vertex("join", nop());
        dag.edge(Edge::between(b, j).to_ordinal(1).priority(-1));
        dag.edge(Edge::between(a, j).to_ordinal(0));
        let ins = dag.in_edges(j);
        assert_eq!(ins[0].from, a);
        assert_eq!(ins[1].from, b);
        assert_eq!(ins[1].priority, -1);
        dag.validate().unwrap();
    }

    #[test]
    fn to_dot_renders_vertices_and_edge_styles() {
        let mut dag = Dag::new();
        let a = dag.vertex_with_parallelism("src", 2, nop());
        let b = dag.vertex("agg", nop());
        dag.edge(Edge::between(a, b).partitioned_by::<u64, _, _>(|v| *v));
        let dot = dag.to_dot();
        assert!(dot.contains("digraph jet"));
        assert!(dot.contains("src x2"));
        assert!(dot.contains("agg"));
        assert!(dot.contains("partitioned"));
        assert!(dot.contains("v0 -> v1"));
    }

    #[test]
    fn partitioned_edge_hashes_by_key() {
        let e = Edge::between(0, 0).partitioned_by::<(u64, String), _, _>(|t| t.0);
        match e.routing {
            Routing::Partitioned(f) => {
                let a = f(crate::object::boxed((5u64, "x".to_string())).as_ref());
                let b = f(crate::object::boxed((5u64, "y".to_string())).as_ref());
                let c = f(crate::object::boxed((6u64, "x".to_string())).as_ref());
                assert_eq!(a, b, "same key must hash equal");
                assert_ne!(a, c);
            }
            _ => panic!("expected partitioned routing"),
        }
    }
}

//! The dynamic object model events travel through the engine as.
//!
//! Like Jet on the JVM (where everything on an edge is an `Object`), the
//! core engine is dynamically typed: the typed Pipeline API (crate
//! `jet-pipeline`) wraps user functions in adapters that downcast payloads
//! back to their concrete types. Payloads must be `Clone` so broadcast
//! edges and active-active job replicas can duplicate them.
//!
//! Unlike the JVM, small payloads never touch the heap: [`SmallObject`]
//! stores values up to [`INLINE_CAP`] bytes (u64 keys, timestamps, small
//! tuples — the bulk of hot-path traffic) inline behind a hand-rolled
//! vtable, falling back to `Box<dyn Object>` for larger ones. The alias
//! `BoxedObject = SmallObject` keeps every processor signature unchanged.

use std::any::{Any, TypeId};
use std::mem::{align_of, size_of, MaybeUninit};

/// A type-erased, cloneable, sendable event payload.
pub trait Object: Any + Send {
    fn clone_object(&self) -> BoxedObject;
    fn as_any(&self) -> &dyn Any;
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
    /// Best-effort debug rendering for diagnostics.
    fn debug_fmt(&self) -> String {
        "<object>".to_string()
    }
    /// Approximate serialized size in bytes, used by the flow-control model
    /// (receive windows) to estimate bytes in flight. The default is the
    /// payload's inline size; types owning indirect storage (Strings, Vecs)
    /// may override with a better estimate.
    fn approx_size(&self) -> usize {
        INLINE_CAP
    }
}

impl<T: Any + Send + Clone + std::fmt::Debug> Object for T {
    // jet-analyze: allow(alloc) — deep clone is the defined semantics of Object fan-out to multiple outputs
    fn clone_object(&self) -> BoxedObject {
        SmallObject::of(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn debug_fmt(&self) -> String {
        format!("{self:?}")
    }

    fn approx_size(&self) -> usize {
        size_of::<T>()
    }
}

/// Payloads at most this many bytes (and at most 8-byte aligned) are stored
/// inline in [`SmallObject`] with no heap allocation. 32 bytes covers u64s,
/// timestamps, 3-4 word tuples, and the windowed hot-path records
/// (`WindowResult<u64, u64>`, `FrameChunk<u64, (i64, i64)>` are exactly 32)
/// while keeping `Item` at 56 bytes — still under a cache line.
pub const INLINE_CAP: usize = 32;

/// Manual vtable for the inline representation. One `'static` instance per
/// concrete type, produced by const promotion in [`vtable_of`].
struct InlineVtable {
    type_id: fn() -> TypeId,
    size: usize,
    /// Clone the value at `src` into the (uninitialized) `dst` buffer.
    /// SAFETY: callers pass pointers into buffers admitted with this vtable.
    clone_into: unsafe fn(src: *const u8, dst: *mut u8),
    /// Run the value's destructor in place.
    /// SAFETY: callers pass a pointer to a live value of the vtable's type.
    drop_in_place: unsafe fn(*mut u8),
    /// Reinterpret the buffer as the concrete type and widen to `dyn Object`
    /// (which also carries `dyn Any` access via `as_any`).
    /// SAFETY: callers pass a pointer to a live value of the vtable's type.
    as_object: unsafe fn(*const u8) -> *const (dyn Object + 'static),
}

fn vtable_of<T: Any + Send + Clone + std::fmt::Debug>() -> &'static InlineVtable {
    // SAFETY requirements of each fn: `src`/`p` point to a valid, aligned,
    // initialized `T` inside an inline buffer; `dst` to a writable buffer of
    // at least `size_of::<T>()` bytes. Callers (SmallObject methods) uphold
    // this by construction: a vtable is only ever paired with the buffer it
    // was admitted with.
    trait HasVtable {
        const VTABLE: InlineVtable;
    }
    impl<T: Any + Send + Clone + std::fmt::Debug> HasVtable for T {
        const VTABLE: InlineVtable = InlineVtable {
            type_id: TypeId::of::<T>,
            size: size_of::<T>(),
            // SAFETY: contract above — `src` is a valid `T`, `dst` has
            // room for one.
            clone_into: |src, dst| unsafe {
                (dst as *mut T).write((*(src as *const T)).clone());
            },
            drop_in_place: |p| unsafe {
                // SAFETY: contract above — `p` is a valid `T` that will not
                // be used again.
                std::ptr::drop_in_place(p as *mut T);
            },
            as_object: |p| p as *const T as *const (dyn Object + 'static),
        };
    }
    &T::VTABLE
}

/// Inline storage: [`INLINE_CAP`] bytes at 8-byte alignment.
#[repr(C, align(8))]
struct InlineBuf([MaybeUninit<u8>; INLINE_CAP]);

struct Inline {
    vtable: &'static InlineVtable,
    buf: InlineBuf,
}

// SAFETY: the buffer only ever holds a `T: Send` (enforced by the bounds on
// `SmallObject::of` / `vtable_of`), so moving the erased value across
// threads is as sound as moving the `T` itself.
unsafe impl Send for Inline {}

impl Inline {
    fn ptr(&self) -> *const u8 {
        self.buf.0.as_ptr() as *const u8
    }

    fn as_object(&self) -> &dyn Object {
        // SAFETY: the buffer holds a valid value of the vtable's type; the
        // returned reference borrows `self`, so it cannot outlive the value.
        unsafe { &*(self.vtable.as_object)(self.ptr()) }
    }
}

impl Drop for Inline {
    fn drop(&mut self) {
        // SAFETY: the buffer holds a valid value of the vtable's type and is
        // dropped exactly once, here.
        unsafe { (self.vtable.drop_in_place)(self.ptr() as *mut u8) }
    }
}

enum Repr {
    Inline(Inline),
    Boxed(Box<dyn Object>),
}

/// A type-erased payload that stores values up to [`INLINE_CAP`] bytes
/// inline — zero heap allocations on the small-event hot path — and boxes
/// larger ones. Construct with [`boxed`] / [`SmallObject::of`]; consume with
/// [`take`] / [`downcast`]; borrow with [`SmallObject::as_ref`].
pub struct SmallObject {
    repr: Repr,
}

/// The engine-wide payload handle. Historically a `Box<dyn Object>`; the
/// alias keeps that name at every call site while the representation is now
/// allocation-free for small payloads.
pub type BoxedObject = SmallObject;

impl SmallObject {
    /// Erase `value`, storing it inline if it fits (≤ [`INLINE_CAP`] bytes,
    /// ≤ 8-byte alignment) and boxing it otherwise.
    #[inline]
    // jet-analyze: allow(alloc) — boxing at object-creation time is the cost of the dynamic Object model, paid at ingress
    pub fn of<T: Any + Send + Clone + std::fmt::Debug>(value: T) -> SmallObject {
        if size_of::<T>() <= INLINE_CAP && align_of::<T>() <= align_of::<InlineBuf>() {
            let mut buf = InlineBuf([MaybeUninit::uninit(); INLINE_CAP]);
            // SAFETY: the size/alignment check above guarantees the buffer
            // can hold a `T`; the value is moved in exactly once and owned
            // by the new `Inline` from here on.
            unsafe { (buf.0.as_mut_ptr() as *mut T).write(value) };
            SmallObject {
                repr: Repr::Inline(Inline {
                    vtable: vtable_of::<T>(),
                    buf,
                }),
            }
        } else {
            SmallObject {
                repr: Repr::Boxed(Box::new(value)),
            }
        }
    }

    /// Borrow the payload as `&dyn Object` (same shape as the old
    /// `Box::as_ref`, so `downcast_ref::<T>(obj.as_ref())` call sites are
    /// untouched).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &dyn Object {
        match &self.repr {
            Repr::Inline(i) => i.as_object(),
            Repr::Boxed(b) => b.as_ref(),
        }
    }

    /// Duplicate the payload (inline stays inline, boxed stays boxed).
    #[inline]
    pub fn clone_object(&self) -> SmallObject {
        match &self.repr {
            Repr::Inline(i) => {
                let mut buf = InlineBuf([MaybeUninit::uninit(); INLINE_CAP]);
                // SAFETY: source buffer holds a valid value of the vtable's
                // type; the destination has identical size/alignment.
                unsafe { (i.vtable.clone_into)(i.ptr(), buf.0.as_mut_ptr() as *mut u8) };
                SmallObject {
                    repr: Repr::Inline(Inline {
                        vtable: i.vtable,
                        buf,
                    }),
                }
            }
            Repr::Boxed(b) => b.clone_object(),
        }
    }

    /// Best-effort debug rendering for diagnostics.
    pub fn debug_fmt(&self) -> String {
        self.as_ref().debug_fmt()
    }

    /// Approximate serialized size in bytes (see [`Object::approx_size`]).
    #[inline]
    pub fn approx_size(&self) -> usize {
        match &self.repr {
            Repr::Inline(i) => i.vtable.size,
            Repr::Boxed(b) => b.approx_size(),
        }
    }

    /// Is the payload stored inline (no heap allocation)?
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline(_))
    }

    fn stored_type_id(&self) -> TypeId {
        match &self.repr {
            Repr::Inline(i) => (i.vtable.type_id)(),
            Repr::Boxed(b) => b.as_any().type_id(),
        }
    }

    fn try_take<T: Any>(self) -> Result<T, SmallObject> {
        if self.stored_type_id() != TypeId::of::<T>() {
            return Err(self);
        }
        match self.repr {
            Repr::Inline(i) => {
                // SAFETY: the type check above proves the buffer holds a
                // `T`; reading it out transfers ownership, and forgetting
                // the `Inline` prevents `drop_in_place` from running on the
                // moved-out value.
                let value = unsafe { (i.ptr() as *const T).read() };
                std::mem::forget(i);
                Ok(value)
            }
            Repr::Boxed(b) => match b.into_any().downcast::<T>() {
                Ok(v) => Ok(*v),
                // The type id already matched; `downcast` cannot fail here.
                Err(_) => unreachable!("type id matched but downcast failed"),
            },
        }
    }
}

/// Consume the payload into its concrete type, panicking with a helpful
/// message on mismatch (a mismatch is always an engine-wiring bug, never a
/// data error, so failing fast is right). Allocation-free for inline
/// payloads — prefer this over [`downcast`] on hot paths.
// jet-analyze: allow(panic) — type-contract violations are documented to panic
pub fn take<T: Any>(obj: BoxedObject) -> T {
    obj.try_take::<T>().unwrap_or_else(|obj| {
        panic!(
            "edge carried a payload of unexpected type {}; expected {}",
            obj.debug_fmt(),
            std::any::type_name::<T>()
        )
    })
}

/// Downcast a payload to a concrete type, panicking on mismatch. Kept for
/// API compatibility; boxes inline payloads, so hot paths should use
/// [`take`] instead.
pub fn downcast<T: Any>(obj: BoxedObject) -> Box<T> {
    Box::new(take::<T>(obj))
}

/// Borrow-downcast without consuming.
// jet-analyze: allow(panic) — type-contract violations are documented to panic
pub fn downcast_ref<T: Any>(obj: &dyn Object) -> &T {
    obj.as_any().downcast_ref::<T>().unwrap_or_else(|| {
        panic!(
            "edge carried a payload of unexpected type; expected {}",
            std::any::type_name::<T>()
        )
    })
}

/// Convenience constructor.
#[inline]
pub fn boxed<T: Any + Send + Clone + std::fmt::Debug>(value: T) -> BoxedObject {
    SmallObject::of(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_downcast() {
        let obj = boxed(42u64);
        assert_eq!(*downcast::<u64>(obj), 42);
    }

    #[test]
    fn roundtrip_take() {
        assert_eq!(take::<u64>(boxed(42u64)), 42);
        assert_eq!(
            take::<(String, i64)>(boxed(("a".to_string(), 5i64))),
            ("a".to_string(), 5)
        );
    }

    #[test]
    fn clone_object_preserves_value() {
        let obj = boxed(("a".to_string(), 5i64));
        let copy = obj.clone_object();
        assert_eq!(*downcast::<(String, i64)>(copy), ("a".to_string(), 5));
        assert_eq!(*downcast::<(String, i64)>(obj), ("a".to_string(), 5));
    }

    #[test]
    fn downcast_ref_borrows() {
        let obj = boxed(vec![1u32, 2, 3]);
        assert_eq!(downcast_ref::<Vec<u32>>(obj.as_ref()), &vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn mismatched_downcast_panics() {
        let obj = boxed(1u8);
        let _ = downcast::<String>(obj);
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn mismatched_take_panics() {
        let obj = boxed(1u8);
        let _ = take::<String>(obj);
    }

    #[test]
    fn debug_fmt_renders() {
        assert_eq!(boxed(7u32).debug_fmt(), "7");
    }

    #[test]
    fn small_payloads_are_inline_and_large_ones_boxed() {
        assert!(boxed(7u64).is_inline());
        assert!(boxed((1u64, 2u64, 3u64, 4u64)).is_inline()); // exactly INLINE_CAP
        assert!(boxed([0u8; 32]).is_inline());
        assert!(!boxed([0u8; 33]).is_inline());
        assert!(boxed([0u64; 4]).is_inline());
        assert!(!boxed([0u64; 5]).is_inline());
        // A String is 24 bytes of handle but owns heap storage either way;
        // the handle itself still rides inline.
        assert!(boxed("hello".to_string()).is_inline());
    }

    #[test]
    fn inline_clone_is_independent() {
        let obj = boxed((3u64, 4u64));
        let copy = obj.clone_object();
        assert!(copy.is_inline());
        drop(obj);
        assert_eq!(take::<(u64, u64)>(copy), (3, 4));
    }

    #[test]
    fn inline_drop_runs_destructor_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        #[derive(Clone, Debug)]
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let obj = boxed(D(drops.clone()));
        assert!(obj.is_inline(), "Arc handle (8 bytes) must ride inline");
        let copy = obj.clone_object();
        drop(obj);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        // take() moves the value out: dropping the taken value is the only
        // remaining destructor run; the emptied shell must not double-drop.
        let taken = take::<D>(copy);
        drop(taken);
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn inline_value_survives_cross_thread_move() {
        let obj = boxed((11u64, 22i64));
        let handle = std::thread::spawn(move || take::<(u64, i64)>(obj));
        assert_eq!(handle.join().unwrap(), (11, 22));
    }

    #[test]
    fn approx_size_reports_payload_size() {
        assert_eq!(boxed(7u64).approx_size(), 8);
        assert_eq!(boxed((1u64, 2u64, 3u64)).approx_size(), 24);
        assert_eq!(boxed([0u8; 40]).approx_size(), 40); // boxed path
        assert_eq!(boxed(()).approx_size(), 0);
    }

    #[test]
    fn mismatched_take_returns_payload_intact_via_panic_message() {
        // try_take's Err path must hand the object back untouched (no
        // double-drop); exercised through the public API by catching the
        // panic and checking the message contains the rendered payload.
        let err = std::panic::catch_unwind(|| take::<String>(boxed(5u8))).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains('5'), "payload lost on mismatch: {msg}");
    }
}

//! The dynamic object model events travel through the engine as.
//!
//! Like Jet on the JVM (where everything on an edge is an `Object`), the
//! core engine is dynamically typed: the typed Pipeline API (crate
//! `jet-pipeline`) wraps user functions in adapters that downcast payloads
//! back to their concrete types. Payloads must be `Clone` so broadcast
//! edges and active-active job replicas can duplicate them.

use std::any::Any;

/// A type-erased, cloneable, sendable event payload.
pub trait Object: Any + Send {
    fn clone_object(&self) -> BoxedObject;
    fn as_any(&self) -> &dyn Any;
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
    /// Best-effort debug rendering for diagnostics.
    fn debug_fmt(&self) -> String {
        "<object>".to_string()
    }
}

impl<T: Any + Send + Clone + std::fmt::Debug> Object for T {
    fn clone_object(&self) -> BoxedObject {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn debug_fmt(&self) -> String {
        format!("{self:?}")
    }
}

/// Boxed type-erased payload.
pub type BoxedObject = Box<dyn Object>;

/// Downcast a boxed object to a concrete type, panicking with a helpful
/// message on mismatch (a mismatch is always an engine-wiring bug, never a
/// data error, so failing fast is right).
pub fn downcast<T: Any>(obj: BoxedObject) -> Box<T> {
    obj.into_any().downcast::<T>().unwrap_or_else(|_| {
        panic!(
            "edge carried a payload of unexpected type; expected {}",
            std::any::type_name::<T>()
        )
    })
}

/// Borrow-downcast without consuming.
pub fn downcast_ref<T: Any>(obj: &dyn Object) -> &T {
    obj.as_any().downcast_ref::<T>().unwrap_or_else(|| {
        panic!(
            "edge carried a payload of unexpected type; expected {}",
            std::any::type_name::<T>()
        )
    })
}

/// Convenience constructor.
pub fn boxed<T: Any + Send + Clone + std::fmt::Debug>(value: T) -> BoxedObject {
    Box::new(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_downcast() {
        let obj = boxed(42u64);
        assert_eq!(*downcast::<u64>(obj), 42);
    }

    #[test]
    fn clone_object_preserves_value() {
        let obj = boxed(("a".to_string(), 5i64));
        let copy = obj.clone_object();
        assert_eq!(*downcast::<(String, i64)>(copy), ("a".to_string(), 5));
        assert_eq!(*downcast::<(String, i64)>(obj), ("a".to_string(), 5));
    }

    #[test]
    fn downcast_ref_borrows() {
        let obj = boxed(vec![1u32, 2, 3]);
        assert_eq!(downcast_ref::<Vec<u32>>(obj.as_ref()), &vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn mismatched_downcast_panics() {
        let obj = boxed(1u8);
        let _ = downcast::<String>(obj);
    }

    #[test]
    fn debug_fmt_renders() {
        assert_eq!(boxed(7u32).debug_fmt(), "7");
    }
}

//! Built-in processors: the operator library of the execution engine
//! (paper §2.3 — "implementations of very efficient operators for
//! partitioning, window aggregation, joins, as well as the base source and
//! sink operators").

pub mod agg;
pub mod join;
pub mod sink;
pub mod source;
pub mod transform;
pub mod window;

pub use agg::{averaging, cogroup2, counting, maxing, summing, AggregateOp};
pub use join::HashJoinP;
pub use sink::{CollectSink, CountSink, IMapSink, IdempotentSink, LatencySink, TransactionalSink};
pub use source::{GeneratorSource, JournalSource, VecSource, WatermarkPolicy, GENERATOR_SHARDS};
pub use transform::{
    filter_stage, flat_map_stage, map_stage, FanOutP, Stage, StatefulMapP, TransformP,
};
pub use window::{
    AccumulateFrameP, CombineFramesP, FrameChunk, SlidingWindowP, WindowDef, WindowKey,
    WindowResult,
};

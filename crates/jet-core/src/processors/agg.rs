//! Aggregate operations: the algebra windowed aggregation is built on.
//!
//! Mirrors Jet's `AggregateOperation`: `create` / `accumulate` (one per
//! input ordinal, enabling windowed co-group/join) / `combine` (merge
//! partial accumulators — the two-stage distributed aggregation of §3.1) /
//! optional `deduct` (remove a partial — this is what makes a 10 ms slide
//! affordable: each slide costs O(keys), not O(keys × frames)) / `finish`.

use crate::object::Object;
use crate::state::Snap;
use std::sync::Arc;

type CreateFn<A> = Arc<dyn Fn() -> A + Send + Sync>;
type AccumulateFn<A> = Arc<dyn Fn(&mut A, &dyn Object) + Send + Sync>;
type CombineFn<A> = Arc<dyn Fn(&mut A, &A) + Send + Sync>;
type FinishFn<A, R> = Arc<dyn Fn(&A) -> R + Send + Sync>;

/// An aggregate operation over accumulator `A` producing result `R`.
pub struct AggregateOp<A, R> {
    pub create: CreateFn<A>,
    /// One accumulate function per input ordinal.
    pub accumulate: Vec<AccumulateFn<A>>,
    pub combine: CombineFn<A>,
    /// Inverse of combine, when the algebra admits one.
    pub deduct: Option<CombineFn<A>>,
    pub finish: FinishFn<A, R>,
    /// True when `A` created fresh and never accumulated into is a neutral
    /// element that `finish` may be skipped for (empty-group suppression).
    pub emit_empty: bool,
}

impl<A, R> Clone for AggregateOp<A, R> {
    fn clone(&self) -> Self {
        AggregateOp {
            create: self.create.clone(),
            accumulate: self.accumulate.clone(),
            combine: self.combine.clone(),
            deduct: self.deduct.clone(),
            finish: self.finish.clone(),
            emit_empty: self.emit_empty,
        }
    }
}

impl<A: Snap + Clone + Send + 'static, R> AggregateOp<A, R> {
    /// Single-input operation from typed closures. `I` is the concrete
    /// payload type on the input edge.
    pub fn of<I, FAcc, FComb, FFin>(
        create: impl Fn() -> A + Send + Sync + 'static,
        accumulate: FAcc,
        combine: FComb,
        finish: FFin,
    ) -> Self
    where
        I: 'static,
        FAcc: Fn(&mut A, &I) + Send + Sync + 'static,
        FComb: Fn(&mut A, &A) + Send + Sync + 'static,
        FFin: Fn(&A) -> R + Send + Sync + 'static,
    {
        AggregateOp {
            create: Arc::new(create),
            accumulate: vec![Arc::new(move |a: &mut A, obj: &dyn Object| {
                accumulate(a, crate::object::downcast_ref::<I>(obj))
            })],
            combine: Arc::new(combine),
            deduct: None,
            finish: Arc::new(finish),
            emit_empty: false,
        }
    }

    /// Attach a deduct function (inverse combine).
    pub fn with_deduct(mut self, deduct: impl Fn(&mut A, &A) + Send + Sync + 'static) -> Self {
        self.deduct = Some(Arc::new(deduct));
        self
    }

    /// Add an accumulate function for a further input ordinal (co-group).
    pub fn and_input<I, F>(mut self, accumulate: F) -> Self
    where
        I: 'static,
        F: Fn(&mut A, &I) + Send + Sync + 'static,
    {
        self.accumulate
            .push(Arc::new(move |a: &mut A, obj: &dyn Object| {
                accumulate(a, crate::object::downcast_ref::<I>(obj))
            }));
        self
    }
}

/// `count()`: number of items, deductible.
pub fn counting<I: 'static>() -> AggregateOp<u64, u64> {
    AggregateOp::of::<I, _, _, _>(|| 0u64, |a, _| *a += 1, |a, b| *a += *b, |a| *a)
        .with_deduct(|a, b| *a -= *b)
}

/// `sum(f)`: i64 sum of a projection, deductible.
pub fn summing<I: 'static>(f: impl Fn(&I) -> i64 + Send + Sync + 'static) -> AggregateOp<i64, i64> {
    AggregateOp::of::<I, _, _, _>(|| 0i64, move |a, i| *a += f(i), |a, b| *a += *b, |a| *a)
        .with_deduct(|a, b| *a -= *b)
}

/// `avg(f)`: arithmetic mean of a projection, deductible.
pub fn averaging<I: 'static>(
    f: impl Fn(&I) -> i64 + Send + Sync + 'static,
) -> AggregateOp<(i64, i64), f64> {
    AggregateOp::of::<I, _, _, _>(
        || (0i64, 0i64),
        move |a, i| {
            a.0 += f(i);
            a.1 += 1;
        },
        |a, b| {
            a.0 += b.0;
            a.1 += b.1;
        },
        |a| {
            if a.1 == 0 {
                0.0
            } else {
                a.0 as f64 / a.1 as f64
            }
        },
    )
    .with_deduct(|a, b| {
        a.0 -= b.0;
        a.1 -= b.1;
    })
}

/// `max(f)`: maximum of a projection. Not deductible (max has no inverse),
/// exercising the recombine fallback path.
pub fn maxing<I: 'static>(
    f: impl Fn(&I) -> i64 + Send + Sync + 'static,
) -> AggregateOp<Option<i64>, i64> {
    AggregateOp::of::<I, _, _, _>(
        || None,
        move |a: &mut Option<i64>, i| {
            let v = f(i);
            *a = Some(a.map_or(v, |m| m.max(v)));
        },
        |a, b| {
            if let Some(bv) = b {
                *a = Some(a.map_or(*bv, |m| m.max(*bv)));
            }
        },
        |a| a.unwrap_or(i64::MIN),
    )
}

/// Accumulator (and result) of [`cogroup2`]: both inputs collected as-is.
pub type CoGrouped<L, R> = (Vec<L>, Vec<R>);

/// Collect both inputs into two vectors — the windowed co-group used for
/// stream-stream window joins (NEXMark Q8).
pub fn cogroup2<L, R>() -> AggregateOp<CoGrouped<L, R>, CoGrouped<L, R>>
where
    L: Snap + Clone + Send + std::fmt::Debug + 'static,
    R: Snap + Clone + Send + std::fmt::Debug + 'static,
{
    AggregateOp::of::<L, _, _, _>(
        || (Vec::new(), Vec::new()),
        |a: &mut (Vec<L>, Vec<R>), i: &L| a.0.push(i.clone()),
        |a, b| {
            a.0.extend(b.0.iter().cloned());
            a.1.extend(b.1.iter().cloned());
        },
        |a| a.clone(),
    )
    .and_input::<R, _>(|a, i| a.1.push(i.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::boxed;

    #[test]
    fn counting_accumulates_combines_deducts() {
        let op = counting::<u64>();
        let mut a = (op.create)();
        let item = boxed(5u64);
        (op.accumulate[0])(&mut a, item.as_ref());
        (op.accumulate[0])(&mut a, item.as_ref());
        assert_eq!(a, 2);
        let b = 3u64;
        (op.combine)(&mut a, &b);
        assert_eq!(a, 5);
        (op.deduct.as_ref().unwrap())(&mut a, &b);
        assert_eq!(a, 2);
        assert_eq!((op.finish)(&a), 2);
    }

    #[test]
    fn summing_projects() {
        let op = summing::<(u64, i64)>(|t| t.1);
        let mut a = (op.create)();
        (op.accumulate[0])(&mut a, boxed((1u64, 10i64)).as_ref());
        (op.accumulate[0])(&mut a, boxed((2u64, -3i64)).as_ref());
        assert_eq!((op.finish)(&a), 7);
    }

    #[test]
    fn averaging_divides() {
        let op = averaging::<i64>(|v| *v);
        let mut a = (op.create)();
        for v in [2i64, 4, 6] {
            (op.accumulate[0])(&mut a, boxed(v).as_ref());
        }
        assert_eq!((op.finish)(&a), 4.0);
        assert_eq!((op.finish)(&(op.create)()), 0.0);
    }

    #[test]
    fn maxing_has_no_deduct() {
        let op = maxing::<i64>(|v| *v);
        assert!(op.deduct.is_none());
        let mut a = (op.create)();
        (op.accumulate[0])(&mut a, boxed(3i64).as_ref());
        (op.accumulate[0])(&mut a, boxed(9i64).as_ref());
        (op.accumulate[0])(&mut a, boxed(7i64).as_ref());
        assert_eq!((op.finish)(&a), 9);
    }

    #[test]
    fn cogroup_routes_by_ordinal() {
        let op = cogroup2::<u64, String>();
        assert_eq!(op.accumulate.len(), 2);
        let mut a = (op.create)();
        (op.accumulate[0])(&mut a, boxed(1u64).as_ref());
        (op.accumulate[1])(&mut a, boxed("x".to_string()).as_ref());
        (op.accumulate[0])(&mut a, boxed(2u64).as_ref());
        let (l, r) = (op.finish)(&a);
        assert_eq!(l, vec![1, 2]);
        assert_eq!(r, vec!["x".to_string()]);
    }
}

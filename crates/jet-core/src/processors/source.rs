//! Source processors.
//!
//! * [`GeneratorSource`] — the rate-controlled, replayable synthetic source
//!   every experiment uses (§7.1 fixes input throughput and starts each
//!   event's latency clock at its *predetermined occurrence time*; any
//!   emission delay — scheduling, backpressure — is charged to latency).
//! * [`VecSource`] — a finite batch source (Listing 2's "build side").
//! * [`JournalSource`] — replays an IMap's event journal: the replayable
//!   source contract of §4.5 backed by the grid, and the CDC/view-
//!   maintenance pattern of §6.
//!
//! `GeneratorSource` is sharded for rescaling: the event space is split into
//! [`GENERATOR_SHARDS`] interleaved sub-streams; an instance owns the shards
//! whose hash falls in its partitions, so offsets snapshotted by N instances
//! restore cleanly onto M ≠ N instances.

use crate::item::{Item, Ts};
use crate::object::BoxedObject;
use crate::processor::Inbox;
use crate::processor::{Outbox, Processor, ProcessorContext};
use crate::state::Snap;
use crate::watermark::{EventTimeMapper, WmAction};
use jet_util::seq;
use std::sync::Arc;

/// Fixed shard count for generator offset state (rescale granularity).
pub const GENERATOR_SHARDS: u64 = 64;

/// Builds an event payload from its global sequence number and timestamp.
pub type EventFactory = Arc<dyn Fn(u64, Ts) -> BoxedObject + Send + Sync>;

/// Watermark policy knobs for sources.
#[derive(Debug, Clone)]
pub struct WatermarkPolicy {
    pub allowed_lag: Ts,
    pub stride: Ts,
    pub idle_timeout_nanos: u64,
}

impl Default for WatermarkPolicy {
    fn default() -> Self {
        // 1 ms stride, no allowed lag (generator is in-order per shard),
        // 100 ms idle timeout.
        WatermarkPolicy {
            allowed_lag: 0,
            stride: 1_000_000,
            idle_timeout_nanos: 100_000_000,
        }
    }
}

/// Rate-controlled generator source.
pub struct GeneratorSource {
    /// Aggregate rate across all instances (events/second).
    total_rate: u64,
    factory: EventFactory,
    /// Stop after this many events globally (None = unbounded streaming).
    limit: Option<u64>,
    policy: WatermarkPolicy,
    /// Shards this instance owns, with the next per-shard sequence `k`
    /// (shard s emits global sequences `k * SHARDS + s`).
    shards: Vec<(u64, u64)>,
    mapper: EventTimeMapper,
    /// Max events emitted per `complete` call (timeslice bound).
    burst: usize,
    origin_nanos: u64,
    initialized: bool,
    /// Set once an instance with no shards has told downstream it is idle.
    idle_marked: bool,
}

impl GeneratorSource {
    pub fn new(total_rate: u64, factory: EventFactory) -> Self {
        assert!(total_rate > 0);
        GeneratorSource {
            total_rate,
            factory,
            limit: None,
            policy: WatermarkPolicy::default(),
            shards: Vec::new(),
            mapper: EventTimeMapper::new(0, 1, 0),
            burst: 512,
            origin_nanos: 0,
            initialized: false,
            idle_marked: false,
        }
    }

    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }

    pub fn with_policy(mut self, policy: WatermarkPolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn with_burst(mut self, burst: usize) -> Self {
        self.burst = burst.max(1);
        self
    }

    /// Scheduled occurrence time (nanos) of global event `seq`.
    #[inline]
    fn schedule_of(&self, seq: u64) -> u64 {
        self.origin_nanos + (seq as u128 * 1_000_000_000 / self.total_rate as u128) as u64
    }

    fn shard_state_key(shard: u64) -> Vec<u8> {
        shard.to_bytes()
    }
}

impl Processor for GeneratorSource {
    // jet-analyze: allow(alloc) — init runs once before the first call()
    fn init(&mut self, ctx: &ProcessorContext) {
        self.mapper = EventTimeMapper::new(
            self.policy.allowed_lag,
            self.policy.stride,
            self.policy.idle_timeout_nanos,
        );
        if self.shards.is_empty() {
            // Fresh start (no restore): claim owned shards at k = 0.
            for s in 0..GENERATOR_SHARDS {
                if ctx.owns_key_hash(seq::hash_of(&s)) {
                    self.shards.push((s, 0));
                }
            }
        }
        self.initialized = true;
    }

    // jet-analyze: allow(panic) — emission state-machine invariant; the arm is guarded by the preceding checks
    fn process(&mut self, _: usize, _: &mut Inbox, _: &mut Outbox, _: &ProcessorContext) {
        unreachable!("sources have no inputs")
    }

    fn complete(&mut self, outbox: &mut Outbox, ctx: &ProcessorContext) -> bool {
        if ctx.is_cancelled() {
            return true;
        }
        if self.shards.is_empty() {
            // An instance that owns no shards must not hold back event time:
            // mark its output channels idle so downstream watermark
            // coalescing skips them (§2.2 idle-source handling).
            if !self.idle_marked
                && outbox.broadcast(Item::Watermark(crate::watermark::IDLE_CHANNEL))
            {
                self.idle_marked = true;
            }
            return self.limit.is_some();
        }
        let now = ctx.now_nanos();
        let mut emitted = 0usize;
        let mut done = false;
        loop {
            // Emit in global-sequence (= schedule) order across owned
            // shards. After a snapshot restore the whole backlog is
            // immediately eligible; draining one shard ahead of the others
            // would advance the watermark past their pending events, and
            // downstream windows would drop them as stragglers.
            let mut idx = 0usize;
            let mut global_seq = u64::MAX;
            for (i, &(shard, k)) in self.shards.iter().enumerate() {
                let seq = k * GENERATOR_SHARDS + shard;
                if seq < global_seq {
                    global_seq = seq;
                    idx = i;
                }
            }
            if let Some(limit) = self.limit {
                // The minimum past the limit means every shard is past it.
                if global_seq >= limit {
                    done = true;
                    break;
                }
            }
            let sched = self.schedule_of(global_seq);
            if sched > now {
                break;
            }
            if emitted >= self.burst || !outbox.has_room(0) {
                // Timeslice budget spent, or backpressure (§3.3): stop and
                // resume from the same frontier on the next slice.
                break;
            }
            // The event's timestamp is its *scheduled* occurrence: if we
            // are emitting late (backpressure, scheduling), downstream
            // latency measurements see the delay (§7.1).
            let ts = sched as Ts;
            let obj = (self.factory)(global_seq, ts);
            let ok = outbox.offer_event(0, ts, obj);
            debug_assert!(ok);
            emitted += 1;
            self.shards[idx].1 += 1;
            if let WmAction::Emit(wm) = self.mapper.observe_event(ts, now) {
                if !outbox.broadcast(Item::Watermark(wm)) {
                    // Possible only with multiple out edges; the mapper
                    // will regenerate an equal-or-later watermark.
                    break;
                }
            }
        }
        if emitted == 0 {
            if let WmAction::MarkIdle = self.mapper.observe_idle(now) {
                let _ = outbox.broadcast(Item::Watermark(crate::watermark::IDLE_CHANNEL));
            }
        }
        // Batch mode: done when every shard ran past the limit.
        done
    }

    fn save_snapshot(&mut self, _id: u64, outbox: &mut Outbox, _ctx: &ProcessorContext) -> bool {
        for (shard, k) in &self.shards {
            outbox.offer_snapshot(Self::shard_state_key(*shard), k.to_bytes());
        }
        true
    }

    fn restore_from_snapshot(&mut self, key: &[u8], value: &[u8], ctx: &ProcessorContext) {
        let shard = u64::from_bytes(key).expect("corrupt generator offset key");
        if !ctx.owns_key_hash(seq::hash_of(&shard)) {
            return;
        }
        let k = u64::from_bytes(value).expect("corrupt generator offset");
        self.shards.push((shard, k));
    }

    fn finish_snapshot_restore(&mut self, ctx: &ProcessorContext) {
        // Claim owned shards that had no snapshot record (fresh shards).
        for s in 0..GENERATOR_SHARDS {
            if ctx.owns_key_hash(seq::hash_of(&s)) && !self.shards.iter().any(|&(x, _)| x == s) {
                self.shards.push((s, 0));
            }
        }
        self.shards.sort_unstable();
    }
}

/// Finite source emitting a fixed vector of `(ts, payload)` pairs, split
/// round-robin across all parallel instances (cluster-wide — the split uses
/// the context's `global_index`/`total_parallelism`, so every item is
/// emitted exactly once no matter how many members deploy the vertex).
/// Emits a final watermark past the last event so downstream windows close.
pub struct VecSource<T> {
    items: Arc<Vec<(Ts, T)>>,
    cursor: usize,
    step: usize,
    final_wm_sent: bool,
}

impl<T: Send + Sync + Clone + std::fmt::Debug + 'static> VecSource<T> {
    pub fn new(items: Arc<Vec<(Ts, T)>>) -> Self {
        VecSource {
            items,
            cursor: 0,
            step: 0,
            final_wm_sent: false,
        }
    }
}

impl<T: Send + Sync + Clone + std::fmt::Debug + 'static> Processor for VecSource<T> {
    fn init(&mut self, ctx: &ProcessorContext) {
        self.cursor = ctx.global_index;
        self.step = ctx.total_parallelism.max(1);
    }

    // jet-analyze: allow(panic) — emission state-machine invariant; the arm is guarded by the preceding checks
    fn process(&mut self, _: usize, _: &mut Inbox, _: &mut Outbox, _: &ProcessorContext) {
        unreachable!("sources have no inputs")
    }

    // jet-analyze: allow(alloc) — emits the terminal watermark clone once at stream end
    fn complete(&mut self, outbox: &mut Outbox, _ctx: &ProcessorContext) -> bool {
        debug_assert!(self.step > 0, "init not called");
        while self.cursor < self.items.len() {
            let (ts, item) = &self.items[self.cursor];
            if !outbox.offer_event(0, *ts, crate::object::boxed(item.clone())) {
                return false;
            }
            self.cursor += self.step;
        }
        if !self.final_wm_sent {
            let max_ts = self.items.iter().map(|(ts, _)| *ts).max().unwrap_or(0);
            if !outbox.broadcast(Item::Watermark(max_ts + 1)) {
                return false;
            }
            self.final_wm_sent = true;
        }
        true
    }
}

/// Replays an IMap's event journal (§4.5 "replayable source" / §6 CDC).
/// Instance `i` reads the grid partitions it owns; offsets are snapshotted
/// per partition.
pub struct JournalSource<K, V> {
    map: jet_imdg::IMap<K, V>,
    /// (partition, next sequence) pairs owned by this instance.
    offsets: Vec<(u32, u64)>,
    batch: usize,
    restored: bool,
}

impl<K, V> JournalSource<K, V>
where
    K: Clone + Eq + std::hash::Hash + Send + std::fmt::Debug + 'static,
    V: Clone + Send + std::fmt::Debug + 'static,
{
    pub fn new(map: jet_imdg::IMap<K, V>) -> Self {
        JournalSource {
            map,
            offsets: Vec::new(),
            batch: 256,
            restored: false,
        }
    }
}

impl<K, V> Processor for JournalSource<K, V>
where
    K: Clone + Eq + std::hash::Hash + Send + std::fmt::Debug + 'static,
    V: Clone + Send + std::fmt::Debug + 'static,
{
    // jet-analyze: allow(alloc) — init runs once before the first call()
    fn init(&mut self, ctx: &ProcessorContext) {
        if !self.restored {
            for p in 0..ctx.partition_count {
                if ctx.owned_partitions[p as usize] {
                    self.offsets.push((p, 0));
                }
            }
        }
    }

    // jet-analyze: allow(panic) — emission state-machine invariant; the arm is guarded by the preceding checks
    fn process(&mut self, _: usize, _: &mut Inbox, _: &mut Outbox, _: &ProcessorContext) {
        unreachable!("sources have no inputs")
    }

    // jet-analyze: allow(alloc) — emits the terminal watermark clone once at stream end
    fn complete(&mut self, outbox: &mut Outbox, ctx: &ProcessorContext) -> bool {
        if ctx.is_cancelled() {
            return true;
        }
        let now = ctx.now_nanos() as Ts;
        for (p, next) in &mut self.offsets {
            let Ok((events, new_next)) =
                self.map
                    .read_journal(jet_imdg::PartitionId(*p), *next, self.batch)
            else {
                continue;
            };
            let mut accepted = *next;
            for ev in events {
                // CDC events are timestamped at read time (the grid does not
                // record event times).
                if !outbox.offer_event(
                    0,
                    now,
                    crate::object::boxed((ev.kind, ev.key.clone(), ev.value.clone())),
                ) {
                    break;
                }
                accepted = ev.seq + 1;
            }
            *next = accepted.max(*next);
            let _ = new_next;
        }
        false // CDC streams are unbounded
    }

    fn save_snapshot(&mut self, _id: u64, outbox: &mut Outbox, _ctx: &ProcessorContext) -> bool {
        for (p, next) in &self.offsets {
            outbox.offer_snapshot((*p as u64).to_bytes(), next.to_bytes());
        }
        true
    }

    fn restore_from_snapshot(&mut self, key: &[u8], value: &[u8], ctx: &ProcessorContext) {
        let p = u64::from_bytes(key).expect("corrupt journal offset key") as u32;
        if !ctx
            .owned_partitions
            .get(p as usize)
            .copied()
            .unwrap_or(false)
        {
            return;
        }
        let next = u64::from_bytes(value).expect("corrupt journal offset");
        self.offsets.push((p, next));
        self.restored = true;
    }

    fn finish_snapshot_restore(&mut self, ctx: &ProcessorContext) {
        for p in 0..ctx.partition_count {
            if ctx.owned_partitions[p as usize] && !self.offsets.iter().any(|&(x, _)| x == p) {
                self.offsets.push((p, 0));
            }
        }
        self.offsets.sort_unstable();
    }

    /// Journal polling hits grid locks, so run it non-cooperatively when the
    /// grid is contended. It is still cooperative here because the in-process
    /// grid never blocks for long.
    fn is_cooperative(&self) -> bool {
        true
    }
}

//! Sink processors, including the §4.5 delivery-guarantee sinks.
//!
//! * [`CollectSink`] / [`CountSink`] — test/diagnostic sinks.
//! * [`LatencySink`] — the measurement sink: records `now - event_ts` into a
//!   shared histogram. Window results carry their window-end as the event
//!   timestamp, so this implements exactly the paper's latency clock
//!   ("the clock stops when Jet has started emitting the window results").
//! * [`IMapSink`] — writes entries into a grid map (idempotent by key).
//! * [`TransactionalSink`] — two-phase-commit sink: output is buffered,
//!   *prepared* when a snapshot barrier arrives, and made visible only when
//!   that snapshot completes.
//! * [`IdempotentSink`] — dedups by record id persisted in the snapshot,
//!   implementing the "idempotent writes" alternative.

use crate::item::Ts;
use crate::metrics::{SharedCounter, SharedHistogram};
use crate::processor::{Inbox, Outbox, Processor, ProcessorContext};
use crate::snapshot::SnapshotRegistry;
use crate::state::Snap;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Collects `(ts, item)` pairs into a shared vector.
pub struct CollectSink<T> {
    out: Arc<Mutex<Vec<(Ts, T)>>>,
}

impl<T: Clone + Send + 'static> CollectSink<T> {
    pub fn new(out: Arc<Mutex<Vec<(Ts, T)>>>) -> Self {
        CollectSink { out }
    }
}

impl<T: Clone + Send + 'static> Processor for CollectSink<T> {
    // jet-analyze: allow(alloc, block) — collection sink is a test/bench aid: events land in a shared Vec under a short lock
    fn process(&mut self, _: usize, inbox: &mut Inbox, _: &mut Outbox, _: &ProcessorContext) {
        let mut out = self.out.lock();
        inbox.drain_all(|ts, obj| out.push((ts, crate::object::take::<T>(obj))));
    }
}

/// Counts events.
pub struct CountSink {
    counter: SharedCounter,
}

impl CountSink {
    pub fn new(counter: SharedCounter) -> Self {
        CountSink { counter }
    }
}

impl Processor for CountSink {
    fn process(&mut self, _: usize, inbox: &mut Inbox, _: &mut Outbox, _: &ProcessorContext) {
        let n = inbox.len() as u64;
        inbox.drain_all(|_, _| ());
        self.counter.add(n);
    }
}

/// Records `now - event_ts` (nanos) per event into a shared histogram, and
/// optionally feeds each sample to the spike watchdog (a real-time-only
/// observer: virtual time and the recorded histogram are identical with the
/// watchdog on or off).
pub struct LatencySink {
    hist: SharedHistogram,
    count: SharedCounter,
    watchdog: crate::flight::LatencyWatchdog,
    sampler: crate::flight::ProvenanceSampler,
}

impl LatencySink {
    pub fn new(hist: SharedHistogram, count: SharedCounter) -> Self {
        Self::watched(hist, count, crate::flight::LatencyWatchdog::disabled())
    }

    pub fn watched(
        hist: SharedHistogram,
        count: SharedCounter,
        watchdog: crate::flight::LatencyWatchdog,
    ) -> Self {
        Self::instrumented(
            hist,
            count,
            watchdog,
            crate::flight::ProvenanceSampler::disabled(),
        )
    }

    /// Full observer set: watchdog spike detection plus provenance stamps
    /// for full-distribution attribution. Both are real-time-only; virtual
    /// time and the recorded histogram stay bit-identical.
    pub fn instrumented(
        hist: SharedHistogram,
        count: SharedCounter,
        watchdog: crate::flight::LatencyWatchdog,
        sampler: crate::flight::ProvenanceSampler,
    ) -> Self {
        LatencySink {
            hist,
            count,
            watchdog,
            sampler,
        }
    }
}

impl Processor for LatencySink {
    fn process(&mut self, _: usize, inbox: &mut Inbox, _: &mut Outbox, ctx: &ProcessorContext) {
        let now = ctx.now_nanos();
        let mut n = 0u64;
        let watchdog = &self.watchdog;
        let sampler = &self.sampler;
        self.hist.record_batch(std::iter::from_fn(|| {
            inbox.take().map(|(ts, _obj)| {
                n += 1;
                let event_ts = ts.max(0) as u64;
                let latency = now.saturating_sub(event_ts);
                if watchdog.is_enabled() {
                    watchdog.observe(now, event_ts, latency);
                }
                if sampler.is_enabled() {
                    sampler.observe(event_ts, now, latency);
                }
                latency
            })
        }));
        self.count.add(n);
    }
}

/// Writes `(K, V)` entries extracted from events into an IMap. Idempotent
/// when the extraction is deterministic (same key → same value).
pub struct IMapSink<T, K, V> {
    map: jet_imdg::IMap<K, V>,
    entry_fn: EntryFn<T, K, V>,
}

/// Extracts the map entry to write from one event.
type EntryFn<T, K, V> = Arc<dyn Fn(&T) -> (K, V) + Send + Sync>;

impl<T, K, V> IMapSink<T, K, V>
where
    T: 'static,
    K: Clone + Eq + std::hash::Hash + Send + 'static,
    V: Clone + Send + 'static,
{
    pub fn new(
        map: jet_imdg::IMap<K, V>,
        entry_fn: impl Fn(&T) -> (K, V) + Send + Sync + 'static,
    ) -> Self {
        IMapSink {
            map,
            entry_fn: Arc::new(entry_fn),
        }
    }
}

impl<T, K, V> Processor for IMapSink<T, K, V>
where
    T: 'static,
    K: Clone + Eq + std::hash::Hash + Send + 'static,
    V: Clone + Send + 'static,
{
    fn process(&mut self, _: usize, inbox: &mut Inbox, _: &mut Outbox, _: &ProcessorContext) {
        let (map, entry_fn) = (&self.map, &self.entry_fn);
        inbox.drain_all(|_ts, obj| {
            let t = crate::object::downcast_ref::<T>(obj.as_ref());
            let (k, v) = entry_fn(t);
            map.put(k, v);
        });
    }
}

/// Two-phase-commit sink (§4.5): "a transactional sink withholds output and
/// only makes it available to the outside world when a checkpoint is
/// complete."
///
/// * events accumulate in the *active* transaction;
/// * `save_snapshot(id)` is the prepare phase: the active transaction is
///   staged under `id` and also written into the snapshot (so a crash after
///   prepare but before commit replays the commit on restore);
/// * on every `process`/`complete` call the sink polls the registry and
///   commits (publishes) all prepared transactions whose snapshot completed.
pub struct TransactionalSink<T> {
    active: Vec<(Ts, T)>,
    prepared: VecDeque<(u64, Vec<(Ts, T)>)>,
    committed: Arc<Mutex<Vec<(Ts, T)>>>,
    registry: Arc<SnapshotRegistry>,
}

impl<T> TransactionalSink<T>
where
    T: Clone + Send + Snap + 'static,
{
    pub fn new(committed: Arc<Mutex<Vec<(Ts, T)>>>, registry: Arc<SnapshotRegistry>) -> Self {
        TransactionalSink {
            active: Vec::new(),
            prepared: VecDeque::new(),
            committed,
            registry,
        }
    }

    // jet-analyze: allow(alloc, block, panic) — commit path runs once per epoch barrier, not per event
    fn commit_completed(&mut self) {
        let completed = self.registry.completed();
        while let Some((id, _)) = self.prepared.front() {
            if *id > completed {
                break;
            }
            let (_, items) = self.prepared.pop_front().expect("front checked");
            self.committed.lock().extend(items);
        }
    }
}

impl<T> Processor for TransactionalSink<T>
where
    T: Clone + Send + Snap + 'static,
{
    // jet-analyze: allow(alloc) — per-event record lands in the open transaction's batch-amortized buffer
    fn process(&mut self, _: usize, inbox: &mut Inbox, _: &mut Outbox, _: &ProcessorContext) {
        let active = &mut self.active;
        inbox.drain_all(|ts, obj| active.push((ts, crate::object::take::<T>(obj))));
        self.commit_completed();
    }

    // jet-analyze: allow(alloc, block) — drains pending transactions at stream end (cold by definition)
    fn complete(&mut self, _: &mut Outbox, _: &ProcessorContext) -> bool {
        self.commit_completed();
        // On (normal) job completion, commit the remainder.
        self.committed.lock().extend(self.active.drain(..));
        for (_, items) in self.prepared.drain(..) {
            self.committed.lock().extend(items);
        }
        true
    }

    // jet-analyze: allow(alloc) — snapshot serialization clones pending state once per epoch
    fn save_snapshot(&mut self, id: u64, outbox: &mut Outbox, ctx: &ProcessorContext) -> bool {
        // Prepare phase: stage the active transaction under this snapshot,
        // and persist it so recovery can re-commit it.
        let items = std::mem::take(&mut self.active);
        let blob: Vec<(i64, T)> = items.iter().map(|(ts, t)| (*ts, t.clone())).collect();
        let key = (id, ctx.global_index as u64).to_bytes();
        outbox.offer_snapshot(key, blob.to_bytes());
        self.prepared.push_back((id, items));
        true
    }

    fn restore_from_snapshot(&mut self, key: &[u8], value: &[u8], ctx: &ProcessorContext) {
        let (id, instance) = <(u64, u64)>::from_bytes(key).expect("corrupt txn sink key");
        // A prepared-but-uncommitted transaction from the *completed*
        // snapshot must be committed now (the snapshot completing IS the
        // commit decision). Only the instance that wrote it restores it.
        if instance as usize != ctx.global_index {
            return;
        }
        let _ = id;
        let items = Vec::<(i64, T)>::from_bytes(value).expect("corrupt txn sink blob");
        self.committed.lock().extend(items);
    }
}

/// Idempotent-writes sink (§4.5): dedups by a record id that is part of the
/// snapshot state, so replayed inputs after recovery publish exactly once.
pub struct IdempotentSink<T> {
    id_fn: Arc<dyn Fn(&T) -> u64 + Send + Sync>,
    seen: HashSet<u64>,
    published: Arc<Mutex<HashMap<u64, T>>>,
}

impl<T> IdempotentSink<T>
where
    T: Clone + Send + 'static,
{
    pub fn new(
        published: Arc<Mutex<HashMap<u64, T>>>,
        id_fn: impl Fn(&T) -> u64 + Send + Sync + 'static,
    ) -> Self {
        IdempotentSink {
            id_fn: Arc::new(id_fn),
            seen: HashSet::new(),
            published,
        }
    }
}

impl<T> Processor for IdempotentSink<T>
where
    T: Clone + Send + 'static,
{
    // jet-analyze: allow(alloc, block) — dedup set grows with distinct-key cardinality; the lock is the sink's published contract
    fn process(&mut self, _: usize, inbox: &mut Inbox, _: &mut Outbox, _: &ProcessorContext) {
        let (seen, published, id_fn) = (&mut self.seen, &self.published, &self.id_fn);
        inbox.drain_all(|_ts, obj| {
            let t = crate::object::take::<T>(obj);
            let id = id_fn(&t);
            if seen.insert(id) {
                published.lock().insert(id, t);
            }
        });
    }

    // jet-analyze: allow(alloc) — snapshot serialization walks the dedup set once per epoch
    fn save_snapshot(&mut self, _id: u64, outbox: &mut Outbox, ctx: &ProcessorContext) -> bool {
        let ids: Vec<u64> = self.seen.iter().copied().collect();
        outbox.offer_snapshot((ctx.global_index as u64).to_bytes(), ids.to_bytes());
        true
    }

    fn restore_from_snapshot(&mut self, _key: &[u8], value: &[u8], _ctx: &ProcessorContext) {
        // Record-id sets merge across instances: after rescale, any instance
        // may receive a replay of any record.
        let ids = Vec::<u64>::from_bytes(value).expect("corrupt idempotent sink ids");
        self.seen.extend(ids);
    }
}

//! Join processors.
//!
//! [`HashJoinP`] implements the hybrid batch/stream hash join of Listing 2:
//! the *build side* (input ordinal 1, wired with higher edge priority) is
//! consumed entirely into a hash table first; then every *probe side* event
//! (ordinal 0) looks up its key and emits joined results. The edge-priority
//! mechanism in the tasklet guarantees no probe event is drained before the
//! build side completes, so the processor never buffers probe input.

use crate::item::Ts;
use crate::object::downcast_ref;
use crate::processor::{Inbox, Outbox, Processor, ProcessorContext};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::hash::Hash;
use std::sync::Arc;

/// Ordinal of the probe (streaming) input.
pub const PROBE_ORDINAL: usize = 0;
/// Ordinal of the build (batch) input.
pub const BUILD_ORDINAL: usize = 1;

/// Joins one probe event with its (possibly absent) build-side matches.
type JoinFn<P, B, R> = Arc<dyn Fn(&P, &[B]) -> Vec<R> + Send + Sync>;

/// Hash join: build side `B` keyed by `K`, probe side `P`, output `R`.
pub struct HashJoinP<K, B, P, R> {
    build_key: Arc<dyn Fn(&B) -> K + Send + Sync>,
    probe_key: Arc<dyn Fn(&P) -> K + Send + Sync>,
    join_fn: JoinFn<P, B, R>,
    table: HashMap<K, Vec<B>>,
    build_done: bool,
    pending: VecDeque<(Ts, R)>,
}

impl<K, B, P, R> HashJoinP<K, B, P, R>
where
    K: Eq + Hash + Clone + Send + 'static,
    B: Clone + Send + 'static,
    P: 'static,
    R: Clone + Send + std::fmt::Debug + 'static,
{
    pub fn new(
        build_key: impl Fn(&B) -> K + Send + Sync + 'static,
        probe_key: impl Fn(&P) -> K + Send + Sync + 'static,
        join_fn: impl Fn(&P, &[B]) -> Vec<R> + Send + Sync + 'static,
    ) -> Self {
        HashJoinP {
            build_key: Arc::new(build_key),
            probe_key: Arc::new(probe_key),
            join_fn: Arc::new(join_fn),
            table: HashMap::new(),
            build_done: false,
            pending: VecDeque::new(),
        }
    }

    /// Inner join emitting `(probe, build)` pairs.
    pub fn inner(
        build_key: impl Fn(&B) -> K + Send + Sync + 'static,
        probe_key: impl Fn(&P) -> K + Send + Sync + 'static,
    ) -> HashJoinP<K, B, P, (P, B)>
    where
        P: Clone + Send + std::fmt::Debug + 'static,
        B: std::fmt::Debug,
    {
        HashJoinP::new(build_key, probe_key, |p: &P, matches: &[B]| {
            matches.iter().map(|b| (p.clone(), b.clone())).collect()
        })
    }

    pub fn table_size(&self) -> usize {
        self.table.values().map(|v| v.len()).sum()
    }

    // jet-analyze: allow(alloc) — re-queues the unfitting tail into existing deque capacity
    fn flush_pending(&mut self, outbox: &mut Outbox) -> bool {
        while let Some((ts, r)) = self.pending.pop_front() {
            if !outbox.offer_event(0, ts, crate::object::boxed(r.clone())) {
                self.pending.push_front((ts, r));
                return false;
            }
        }
        true
    }
}

impl<K, B, P, R> Processor for HashJoinP<K, B, P, R>
where
    K: Eq + Hash + Clone + Send + 'static,
    B: Clone + Send + 'static,
    P: 'static,
    R: Clone + Send + std::fmt::Debug + 'static,
{
    // jet-analyze: allow(alloc, panic) — keyed join state grows with key cardinality; the panic arm is an item-kind invariant
    fn process(
        &mut self,
        ordinal: usize,
        inbox: &mut Inbox,
        outbox: &mut Outbox,
        _ctx: &ProcessorContext,
    ) {
        match ordinal {
            BUILD_ORDINAL => {
                debug_assert!(!self.build_done, "build input after build completion");
                let (table, build_key) = (&mut self.table, &self.build_key);
                inbox.drain_all(|_ts, obj| {
                    let b = downcast_ref::<B>(obj.as_ref()).clone();
                    let k = build_key(&b);
                    table.entry(k).or_default().push(b);
                });
            }
            PROBE_ORDINAL => {
                debug_assert!(
                    self.build_done,
                    "probe input drained before build side completed; wire the build edge with higher priority"
                );
                if !self.flush_pending(outbox) {
                    return;
                }
                while let Some((ts, obj)) = inbox.take() {
                    let p = downcast_ref::<P>(obj.as_ref());
                    let key = (self.probe_key)(p);
                    let matches = self.table.get(&key).map(|v| v.as_slice()).unwrap_or(&[]);
                    for r in (self.join_fn)(p, matches) {
                        self.pending.push_back((ts, r));
                    }
                    if !self.flush_pending(outbox) {
                        return;
                    }
                }
            }
            other => panic!("hash join has no input ordinal {other}"),
        }
    }

    fn complete_edge(&mut self, ordinal: usize, _: &mut Outbox, _: &ProcessorContext) -> bool {
        if ordinal == BUILD_ORDINAL {
            self.build_done = true;
        }
        true
    }

    fn complete(&mut self, outbox: &mut Outbox, _: &ProcessorContext) -> bool {
        self.flush_pending(outbox)
    }
}

//! Sliding/tumbling window aggregation via frame slicing (paper §2.3 cites
//! the stream-slicing line of work [32, 34]).
//!
//! Events are accumulated into *frames* — disjoint slide-sized slices keyed
//! by their end timestamp. A window ending at `E` is the combination of the
//! `size/slide` frames in `(E-size, E]`. When the aggregate op has a
//! `deduct`, we keep a running per-key accumulator and each slide costs
//! O(keys): add the newest frame, deduct the expired one. This is the
//! optimization that makes the paper's 10 ms slide viable ("triggering
//! every 10ms is something that no other scale-out stream processor can
//! perform").
//!
//! Keyed state lives in [`KeyTable`]s — sharded open-addressing tables
//! keyed by 64-bit fingerprints (`crate::state::store`) — and every
//! per-window obligation is amortized so no single tasklet quantum ever
//! does O(keys) work, which is what keeps p99.99 flat at millions of keys:
//!
//! * **Chunked emission.** A watermark is *accepted* immediately (the
//!   tasklet keeps draining input) while window results stream out a
//!   bounded chunk per quantum; the watermark itself is held and forwarded
//!   only after the last chunk, preserving the results-before-watermark
//!   order downstream relies on. The emission floor advances when a
//!   window's emission *starts*, so event classification is identical to
//!   the old atomic emission.
//! * **Spill discipline.** While a window is mid-emission, contributions
//!   targeting its frames are parked in a small fixed spill buffer (and
//!   applied right after the close) instead of mutating tables under an
//!   active cursor; a full spill pushes back on the inbox rather than
//!   allocating.
//! * **Amortized eviction.** An expired frame is detached whole and its
//!   slots retired (deducted from the running accumulators) a bounded
//!   number per quantum by [`Processor::tick`]; emptied tables recycle
//!   through a pool, so steady state allocates nothing.
//! * **Streaming snapshots.** `save_snapshot` serializes keyed state in
//!   bounded record chunks across quanta behind a resumable cursor; the
//!   exactly-once oracle is unchanged because a barrier only commits once
//!   the final chunk is written.
//!
//! Three processors are built on the shared [`WindowState`]:
//!
//! * [`SlidingWindowP`] — single-stage keyed windowing (events in, window
//!   results out);
//! * [`AccumulateFrameP`] — stage 1 of the two-stage distributed aggregation
//!   (§3.1): accumulates *locally* (no shuffle) and emits per-frame partial
//!   accumulators when the watermark closes a frame;
//! * [`CombineFramesP`] — stage 2: receives partials on a partitioned edge,
//!   combines them, and emits window results.

use crate::item::{Item, Ts};
use crate::object::{boxed, downcast_ref};
use crate::processor::{Inbox, Outbox, Processor, ProcessorContext};
use crate::processors::agg::AggregateOp;
use crate::state::{fingerprint, Cursor, KeyTable, Snap, StateProbe};
use crate::watermark::NO_WATERMARK;
use jet_util::seq;
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::Arc;

/// Type-erased key extractor: downcasts the boxed event and hashes its key.
type ObjKeyFn<K> = Arc<dyn Fn(&dyn crate::object::Object) -> K + Send + Sync>;

/// Max emission/fold/gather steps per tasklet quantum.
const EMIT_CHUNK: usize = 1024;
/// Max retired (evicted) slots per tasklet quantum.
const RETIRE_CHUNK: usize = 1024;
/// Max snapshot records serialized per `save_snapshot` quantum.
const SNAPSHOT_CHUNK: usize = 2048;
/// Spill capacity: contributions parked while their window is mid-emission.
const SPILL_CAP: usize = 1024;
/// Watermark acceptance refuses once this many windows are due-unemitted.
const MAX_DUE_WINDOWS: i64 = 4;
/// Ticks between refreshes of the state probe gauges.
const PROBE_STRIDE: u32 = 64;

/// Window definition in event-time nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowDef {
    pub size: Ts,
    pub slide: Ts,
}

impl WindowDef {
    pub fn sliding(size: Ts, slide: Ts) -> Self {
        assert!(size > 0 && slide > 0, "window size/slide must be positive");
        assert!(
            size % slide == 0,
            "window size must be a multiple of the slide"
        );
        WindowDef { size, slide }
    }

    pub fn tumbling(size: Ts) -> Self {
        Self::sliding(size, size)
    }

    /// End timestamp of the frame containing `ts` (frames are
    /// `(end-slide, end]`... we use half-open `[start, end)` convention:
    /// event at `ts` belongs to the frame ending at the next slide boundary
    /// strictly greater than `ts`).
    #[inline]
    pub fn frame_end(&self, ts: Ts) -> Ts {
        ts.div_euclid(self.slide) * self.slide + self.slide
    }

    /// Number of frames per window.
    pub fn frames_per_window(&self) -> i64 {
        self.size / self.slide
    }
}

/// One emitted window result.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowResult<K, R> {
    pub key: K,
    /// Window covers `[end - size, end)`.
    pub start: Ts,
    pub end: Ts,
    pub value: R,
}

/// Stage-1 → stage-2 partial: one key's accumulator for one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameChunk<K, A> {
    pub key: K,
    pub frame_end: Ts,
    pub acc: A,
}

/// Key constraints for windowed state: routable, snapshottable, printable.
/// Keys must be `Copy + Default` because they live inline in the
/// open-addressing slots of the frame store (no per-key allocation); large
/// or heap-backed keys should be routed by a small derived key.
pub trait WindowKey: Copy + Default + Eq + Hash + Snap + Send + Debug + 'static {}
impl<T: Copy + Default + Eq + Hash + Snap + Send + Debug + 'static> WindowKey for T {}

/// Fingerprint of a window key: the routing hash, normalized non-zero for
/// the frame store's occupied-slot sentinel.
#[inline]
fn fp_of<K: Hash>(key: &K) -> u64 {
    fingerprint(seq::hash_of(key))
}

/// One slide-sized frame: keyed partial accumulators.
struct Frame<K, A> {
    end: Ts,
    table: KeyTable<K, A>,
}

/// Locate the frame ending at `end` in a sorted frame list, preferring the
/// last-hit index (in-order streams hit the same frame for a whole slide).
#[inline]
fn find_frame<K, A>(frames: &[Frame<K, A>], hint: usize, end: Ts) -> Option<usize> {
    if let Some(f) = frames.get(hint) {
        if f.end == end {
            return Some(hint);
        }
    }
    let i = frames.partition_point(|f| f.end < end);
    (i < frames.len() && frames[i].end == end).then_some(i)
}

/// Insert an empty frame (recycled from `pool` when possible) keeping the
/// list sorted by end. Cold: runs once per slide, not per event.
#[cold]
fn create_frame<K: WindowKey, A: Snap + Clone + Send + Default + 'static>(
    frames: &mut Vec<Frame<K, A>>,
    pool: &mut Vec<KeyTable<K, A>>,
    parts: u32,
    end: Ts,
) -> usize {
    let table = pool.pop().unwrap_or_else(|| KeyTable::new(parts));
    let i = frames.partition_point(|f| f.end < end);
    frames.insert(i, Frame { end, table });
    i
}

/// In-flight chunked emission of the window ending at `end`.
enum Pending {
    Idle,
    /// Deduct mode: folding frame `end` (at index `fi`) into `running`.
    Fold {
        end: Ts,
        fi: usize,
        cur: Cursor,
    },
    /// Recombine mode: merging the window's frames (next: index `fi`) into
    /// `scratch`.
    Gather {
        end: Ts,
        fi: usize,
        cur: Cursor,
    },
    /// Deduct mode: scanning `running`, one result per entry.
    EmitRunning {
        end: Ts,
        cur: Cursor,
    },
    /// Recombine mode: draining `scratch`, one result per entry.
    EmitScratch {
        end: Ts,
        cur: Cursor,
    },
    /// Tumbling fast path: draining the detached due frame directly.
    EmitFrame {
        end: Ts,
        cur: Cursor,
    },
}

impl Pending {
    fn emission_end(&self) -> Option<Ts> {
        match *self {
            Pending::Idle => None,
            Pending::Fold { end, .. }
            | Pending::Gather { end, .. }
            | Pending::EmitRunning { end, .. }
            | Pending::EmitScratch { end, .. }
            | Pending::EmitFrame { end, .. } => Some(end),
        }
    }
}

/// One spilled contribution: `(frame_end, fingerprint, key, accumulator)`,
/// held until the active emission's close so scan cursors stay valid.
type SpillSlot<K, A> = Option<(Ts, u64, K, A)>;

/// Shared frame store + chunked sliding emission logic.
struct WindowState<K, A> {
    wdef: WindowDef,
    /// Partition count the shard layout follows (the partitioned-edge
    /// assignment space).
    parts: u32,
    /// Live frames, ascending by end timestamp.
    frames: Vec<Frame<K, A>>,
    /// Last-hit frame index (in-order streams stay in one frame per slide).
    hint: usize,
    /// Running window accumulator per key + number of live frames holding
    /// the key (deduct mode only).
    running: KeyTable<K, (A, u32)>,
    /// Recombine-mode merge target, drained by emission; capacity persists.
    scratch: KeyTable<K, A>,
    /// Emptied frame tables kept for reuse (bounds steady-state allocation).
    pool: Vec<KeyTable<K, A>>,
    /// Chunked emission state machine.
    pending: Pending,
    /// Tumbling fast path: the detached frame being drained by emission.
    drain_table: Option<KeyTable<K, A>>,
    /// Expired frames detached at window close, retired (deducted) a
    /// bounded number of slots per quantum; each with its drain cursor.
    retire: Vec<(KeyTable<K, A>, Cursor)>,
    /// Contributions for frames of the actively-emitting window, applied
    /// after the close (mutating a scanned table would corrupt cursors and
    /// double-count the fold). Allocated on first use.
    spill: Option<Box<[SpillSlot<K, A>]>>,
    spill_len: usize,
    /// Next window end to emit; `NO_WATERMARK` while no frame is anchored.
    next_emit: Ts,
    /// Emission floor: every window with `end < floor` has been emitted (or
    /// was skipped as empty) and must never be emitted again. `NO_WATERMARK`
    /// until the first window is produced. Advances when a window's
    /// emission *starts* (the classification boundary).
    floor: Ts,
    /// Highest accepted watermark; emission owes every window `<=` it.
    wm_target: Ts,
    /// Accepted watermark not yet forwarded downstream (`NO_WATERMARK`
    /// when none): results of due windows must precede it.
    held_wm: Ts,
    /// Snapshot streaming cursor: `(snapshot_id, frame index, position)`.
    snap_cursor: Option<(u64, usize, Cursor)>,
    late_events: u64,
}

impl<K: WindowKey, A: Snap + Clone + Send + Default + 'static> WindowState<K, A> {
    fn new(wdef: WindowDef) -> Self {
        let parts = jet_imdg::DEFAULT_PARTITION_COUNT;
        WindowState {
            wdef,
            parts,
            frames: Vec::new(),
            hint: 0,
            running: KeyTable::new(parts),
            scratch: KeyTable::new(parts),
            pool: Vec::new(),
            pending: Pending::Idle,
            drain_table: None,
            retire: Vec::new(),
            spill: None,
            spill_len: 0,
            next_emit: NO_WATERMARK,
            floor: NO_WATERMARK,
            wm_target: NO_WATERMARK,
            held_wm: NO_WATERMARK,
            snap_cursor: None,
            late_events: 0,
        }
    }

    /// Align the shard layout with the job's partition space. Only takes
    /// effect while the store is empty (called from `init`/first restore).
    fn set_partitions(&mut self, parts: u32) {
        if parts != self.parts && self.frames.is_empty() && self.running.is_empty() {
            self.parts = parts;
            self.running = KeyTable::new(parts);
            self.scratch = KeyTable::new(parts);
            self.pool.clear();
        }
    }

    /// True (and counted) when an event/partial for `frame_end` can no
    /// longer contribute to any window at or above the emission floor.
    fn is_late(&mut self, frame_end: Ts) -> bool {
        let last_window_of_frame = frame_end + self.wdef.size - self.wdef.slide;
        if self.floor != NO_WATERMARK && last_window_of_frame < self.floor {
            self.late_events += 1;
            true
        } else {
            false
        }
    }

    /// (Re)anchor the next window to emit. Before anything was emitted the
    /// anchor floats down to the earliest frame seen (events may arrive out
    /// of order ahead of the watermark); once a floor exists it clamps the
    /// anchor so no window is ever emitted twice.
    fn note_first_frame(&mut self, frame_end: Ts) {
        let candidate = if self.floor == NO_WATERMARK {
            frame_end
        } else {
            frame_end.max(self.floor)
        };
        if self.next_emit == NO_WATERMARK || candidate < self.next_emit {
            self.next_emit = candidate;
        }
    }

    /// Frames with `end <= floor - slide` were already folded into the
    /// running accumulators by past emissions; a (valid, in-window) late
    /// arrival for such a frame must therefore update `running` directly as
    /// well, or the eventual frame expiry would deduct state that was never
    /// added (and intermediate windows would under-count).
    fn frame_already_running(&self, frame_end: Ts) -> bool {
        self.floor != NO_WATERMARK && frame_end <= self.floor - self.wdef.slide
    }

    /// True when `frame_end` belongs to the actively-emitting window and
    /// the contribution must be parked in the spill.
    #[inline]
    fn must_spill(&self, frame_end: Ts) -> bool {
        matches!(self.pending.emission_end(), Some(end) if frame_end <= end)
    }

    /// True when an event for `frame_end` cannot currently be accepted:
    /// callers leave it queued in the inbox (backpressure) and retry after
    /// the emission in progress closes.
    #[inline]
    fn blocked(&self, frame_end: Ts) -> bool {
        self.must_spill(frame_end) && self.spill_len == SPILL_CAP
    }

    /// Route one in-window contribution into the store: the live frame,
    /// plus the running accumulators when the frame was already folded;
    /// contributions to the actively-emitting window go to the spill.
    /// Callers check [`blocked`] first. Allocation-free in steady state.
    #[inline]
    fn add<R>(
        &mut self,
        fp: u64,
        key: K,
        frame_end: Ts,
        op: &AggregateOp<A, R>,
        apply: impl Fn(&mut A),
    ) {
        if self.must_spill(frame_end) {
            self.spill_add(fp, key, frame_end, op, apply);
            return;
        }
        self.note_first_frame(frame_end);
        let fi = match find_frame(&self.frames, self.hint, frame_end) {
            Some(i) => i,
            None => create_frame(&mut self.frames, &mut self.pool, self.parts, frame_end),
        };
        self.hint = fi;
        let (acc, newly) = self.frames[fi].table.upsert(fp, key, || (op.create)());
        apply(acc);
        if self.frame_already_running(frame_end) {
            self.add_late_to_running(fp, key, newly, op, apply);
        }
    }

    /// Apply a late contribution for `key` to the running accumulator.
    /// `newly_in_frame` is true when this is the key's first item in that
    /// frame (the live-frame refcount must grow by one then).
    fn add_late_to_running<R>(
        &mut self,
        fp: u64,
        key: K,
        newly_in_frame: bool,
        op: &AggregateOp<A, R>,
        apply: impl Fn(&mut A),
    ) {
        if op.deduct.is_none() {
            return; // recombine fallback reads frames directly
        }
        let (entry, _) = self.running.upsert(fp, key, || ((op.create)(), 0));
        apply(&mut entry.0);
        if newly_in_frame {
            entry.1 += 1;
        }
    }

    /// Park a contribution for the actively-emitting window. Cold: only
    /// out-of-order stragglers (allowed-lag late arrivals) land here while
    /// their window is mid-emission.
    #[cold]
    fn spill_add<R>(
        &mut self,
        fp: u64,
        key: K,
        frame_end: Ts,
        op: &AggregateOp<A, R>,
        apply: impl Fn(&mut A),
    ) {
        let spill = self
            .spill
            .get_or_insert_with(|| (0..SPILL_CAP).map(|_| None).collect());
        debug_assert!(self.spill_len < SPILL_CAP, "caller checks blocked()");
        let mut acc = (op.create)();
        apply(&mut acc);
        spill[self.spill_len] = Some((frame_end, fp, key, acc));
        self.spill_len += 1;
    }

    /// Apply every parked contribution after a window close. Cold: bounded
    /// by `SPILL_CAP`, runs at most once per slide.
    #[cold]
    fn drain_spill<R>(&mut self, op: &AggregateOp<A, R>) {
        if self.spill_len == 0 {
            return;
        }
        for i in 0..self.spill_len {
            let Some(spill) = self.spill.as_mut() else {
                break;
            };
            let Some((frame_end, fp, key, acc)) = spill[i].take() else {
                continue;
            };
            // Entries were classified not-late against the already-advanced
            // floor when they were parked; apply unconditionally.
            self.note_first_frame(frame_end);
            let fi = match find_frame(&self.frames, self.hint, frame_end) {
                Some(i) => i,
                None => create_frame(&mut self.frames, &mut self.pool, self.parts, frame_end),
            };
            let (slot, newly) = self.frames[fi].table.upsert(fp, key, || (op.create)());
            (op.combine)(slot, &acc);
            if self.frame_already_running(frame_end) {
                self.add_late_to_running(fp, key, newly, op, |r| (op.combine)(r, &acc));
            }
        }
        self.spill_len = 0;
    }

    /// Accept (or refuse) a coalesced watermark. Accepting holds the
    /// watermark for forwarding after the due windows' results; refusal
    /// (due-window backlog at the bound) pushes back on the input while
    /// `pump` keeps making progress every quantum.
    fn try_accept_wm(&mut self, wm: Ts) -> bool {
        // Refuse while the *already accepted* backlog is at the bound:
        // refusal then always leaves due windows for `pump` to drain, so
        // the refused watermark is re-offered against a shrinking backlog
        // (an accept-side check on `wm` itself could refuse forever when a
        // final watermark jumps far ahead of an empty target).
        if self.next_emit != NO_WATERMARK
            && self.wm_target != NO_WATERMARK
            && self.wm_target >= self.next_emit
        {
            let backlog = (self.wm_target - self.next_emit) / self.wdef.slide + 1;
            if backlog > MAX_DUE_WINDOWS {
                return false;
            }
        }
        if self.wm_target == NO_WATERMARK || wm > self.wm_target {
            self.wm_target = wm;
        }
        if self.held_wm == NO_WATERMARK || wm > self.held_wm {
            self.held_wm = wm;
        }
        true
    }

    /// A window is due for emission.
    fn window_due(&self) -> bool {
        self.next_emit != NO_WATERMARK
            && self.wm_target != NO_WATERMARK
            && self.next_emit <= self.wm_target
    }

    /// Emission fully caught up and the held watermark forwarded: the
    /// store is stable enough to snapshot (outstanding retirement is pure
    /// in-memory transient — snapshots persist frames + floor only, and
    /// restore rebuilds `running` from those).
    fn quiesced(&self) -> bool {
        matches!(self.pending, Pending::Idle) && !self.window_due() && self.held_wm == NO_WATERMARK
    }

    /// Nothing left to emit, forward, or retire (end-of-stream condition).
    fn finished(&self) -> bool {
        self.quiesced() && self.retire.is_empty()
    }

    /// One bounded quantum of background progress: advance the emission
    /// state machine, start due windows, retire expired slots, and forward
    /// the held watermark once caught up. Returns true when work was done.
    fn pump<R>(&mut self, outbox: &mut Outbox, op: &AggregateOp<A, R>) -> bool
    where
        R: Clone + Send + Debug + 'static,
    {
        let mut worked = false;
        let mut budget = EMIT_CHUNK;
        loop {
            match self.pending {
                Pending::Idle => {
                    // Outstanding retirement must finish before the next
                    // window reads `running`: the expired frame's
                    // contributions have to be deducted first or the next
                    // emission over-counts (and `running` never drains).
                    if !self.retire.is_empty() {
                        worked |= self.step_retire(op, &mut budget);
                        if budget == 0 {
                            return true;
                        }
                        continue;
                    }
                    if !self.window_due() {
                        break;
                    }
                    self.begin_window(op);
                    worked = true;
                }
                Pending::Fold { end, fi, cur } => {
                    worked |= self.step_fold(end, fi, cur, op, &mut budget);
                }
                Pending::Gather { end, fi, cur } => {
                    worked |= self.step_gather(end, fi, cur, op, &mut budget);
                }
                Pending::EmitRunning { end, cur } => {
                    if !self.step_emit_running(end, cur, op, outbox, &mut budget) {
                        return true; // outbox full: resume next quantum
                    }
                    worked = true;
                }
                Pending::EmitScratch { end, cur } => {
                    if !self.step_emit_scratch(end, cur, op, outbox, &mut budget) {
                        return true;
                    }
                    worked = true;
                }
                Pending::EmitFrame { end, cur } => {
                    if !self.step_emit_frame(end, cur, op, outbox, &mut budget) {
                        return true;
                    }
                    worked = true;
                }
            }
            if budget == 0 {
                return true;
            }
        }
        // Caught up: forward the held watermark (results precede it).
        if self.held_wm != NO_WATERMARK && outbox.broadcast(Item::Watermark(self.held_wm)) {
            self.held_wm = NO_WATERMARK;
            worked = true;
        }
        worked
    }

    /// Open the next due window's emission. Cold: once per slide; does O(1)
    /// structural work (the chunked steps do the O(keys) part).
    #[cold]
    fn begin_window<R>(&mut self, op: &AggregateOp<A, R>) {
        let end = self.next_emit;
        if self.frames.is_empty() && self.running.is_empty() && self.retire.is_empty() {
            // No state at all: every remaining window is empty. Re-anchor on
            // the next frame that actually arrives (this is also what keeps
            // quiet key spaces free: gaps in the stream cost nothing). The
            // floor guarantees the new anchor never revisits an emitted
            // window.
            self.next_emit = NO_WATERMARK;
            return;
        }
        // The classification boundary advances at emission *start*: an
        // event that would have been late after the old atomic emission is
        // late for every chunk of this one.
        self.next_emit = end + self.wdef.slide;
        self.floor = self.next_emit;
        self.hint = 0;
        if self.wdef.frames_per_window() == 1 {
            // Tumbling fast path: the due frame *is* the window; detach and
            // drain it directly — `running` never participates.
            match find_frame(&self.frames, 0, end) {
                Some(i) => {
                    self.drain_table = Some(self.frames.remove(i).table);
                    self.pending = Pending::EmitFrame {
                        end,
                        cur: Cursor::default(),
                    };
                }
                None => self.close_window(end, op),
            }
            return;
        }
        if op.deduct.is_some() {
            match find_frame(&self.frames, 0, end) {
                Some(fi) => {
                    self.pending = Pending::Fold {
                        end,
                        fi,
                        cur: Cursor::default(),
                    }
                }
                None => {
                    self.pending = Pending::EmitRunning {
                        end,
                        cur: Cursor::default(),
                    }
                }
            }
        } else {
            let start = end - self.wdef.size;
            let fi = self.frames.partition_point(|f| f.end <= start);
            if fi < self.frames.len() && self.frames[fi].end <= end {
                self.pending = Pending::Gather {
                    end,
                    fi,
                    cur: Cursor::default(),
                };
            } else {
                self.pending = Pending::EmitScratch {
                    end,
                    cur: Cursor::default(),
                };
            }
        }
    }

    /// Fold a chunk of the newest frame into the running accumulators.
    fn step_fold<R>(
        &mut self,
        end: Ts,
        fi: usize,
        mut cur: Cursor,
        op: &AggregateOp<A, R>,
        budget: &mut usize,
    ) -> bool {
        let mut worked = false;
        while *budget > 0 {
            let (next, item) = self.frames[fi].table.scan_next(cur);
            match item {
                Some((fp, k, a)) => {
                    let (slot, _) = self.running.upsert(fp, *k, || ((op.create)(), 0));
                    (op.combine)(&mut slot.0, a);
                    slot.1 += 1;
                    cur = next;
                    *budget -= 1;
                    worked = true;
                }
                None => {
                    self.pending = Pending::EmitRunning {
                        end,
                        cur: Cursor::default(),
                    };
                    return true;
                }
            }
        }
        self.pending = Pending::Fold { end, fi, cur };
        worked
    }

    /// Merge a chunk of the window's frames into `scratch` (recombine).
    fn step_gather<R>(
        &mut self,
        end: Ts,
        mut fi: usize,
        mut cur: Cursor,
        op: &AggregateOp<A, R>,
        budget: &mut usize,
    ) -> bool {
        let mut worked = false;
        while *budget > 0 {
            if fi >= self.frames.len() || self.frames[fi].end > end {
                self.pending = Pending::EmitScratch {
                    end,
                    cur: Cursor::default(),
                };
                return true;
            }
            let (next, item) = self.frames[fi].table.scan_next(cur);
            match item {
                Some((fp, k, a)) => {
                    let (slot, _) = self.scratch.upsert(fp, *k, || (op.create)());
                    (op.combine)(slot, a);
                    cur = next;
                    *budget -= 1;
                    worked = true;
                }
                None => {
                    fi += 1;
                    cur = Cursor::default();
                }
            }
        }
        self.pending = Pending::Gather { end, fi, cur };
        worked
    }

    /// Emit a chunk of results from the running accumulators (deduct).
    /// Returns false when the outbox is full (resume next quantum).
    fn step_emit_running<R>(
        &mut self,
        end: Ts,
        mut cur: Cursor,
        op: &AggregateOp<A, R>,
        outbox: &mut Outbox,
        budget: &mut usize,
    ) -> bool
    where
        R: Clone + Send + Debug + 'static,
    {
        let start = end - self.wdef.size;
        while *budget > 0 {
            if !outbox.has_room_all() {
                self.pending = Pending::EmitRunning { end, cur };
                return false;
            }
            let (next, item) = self.running.scan_next(cur);
            match item {
                Some((_, k, v)) => {
                    let r = WindowResult {
                        key: *k,
                        start,
                        end,
                        value: (op.finish)(&v.0),
                    };
                    let delivered = outbox.broadcast(Item::event(end, boxed(r)));
                    debug_assert!(delivered);
                    cur = next;
                    *budget -= 1;
                }
                None => {
                    self.close_window(end, op);
                    return true;
                }
            }
        }
        self.pending = Pending::EmitRunning { end, cur };
        true
    }

    /// Emit a chunk of results by draining `scratch` (recombine).
    fn step_emit_scratch<R>(
        &mut self,
        end: Ts,
        mut cur: Cursor,
        op: &AggregateOp<A, R>,
        outbox: &mut Outbox,
        budget: &mut usize,
    ) -> bool
    where
        R: Clone + Send + Debug + 'static,
    {
        let start = end - self.wdef.size;
        while *budget > 0 {
            if !outbox.has_room_all() {
                self.pending = Pending::EmitScratch { end, cur };
                return false;
            }
            let (next, item) = self.scratch.drain_next(cur);
            match item {
                Some((_, k, a)) => {
                    let r = WindowResult {
                        key: k,
                        start,
                        end,
                        value: (op.finish)(&a),
                    };
                    let delivered = outbox.broadcast(Item::event(end, boxed(r)));
                    debug_assert!(delivered);
                    cur = next;
                    *budget -= 1;
                }
                None => {
                    self.close_window(end, op);
                    return true;
                }
            }
        }
        self.pending = Pending::EmitScratch { end, cur };
        true
    }

    /// Tumbling fast path: emit a chunk by draining the detached frame.
    fn step_emit_frame<R>(
        &mut self,
        end: Ts,
        mut cur: Cursor,
        op: &AggregateOp<A, R>,
        outbox: &mut Outbox,
        budget: &mut usize,
    ) -> bool
    where
        R: Clone + Send + Debug + 'static,
    {
        let start = end - self.wdef.size;
        while *budget > 0 {
            if !outbox.has_room_all() {
                self.pending = Pending::EmitFrame { end, cur };
                return false;
            }
            let Some(table) = self.drain_table.as_mut() else {
                self.close_window(end, op);
                return true;
            };
            let (next, item) = table.drain_next(cur);
            match item {
                Some((_, k, a)) => {
                    let r = WindowResult {
                        key: k,
                        start,
                        end,
                        value: (op.finish)(&a),
                    };
                    let delivered = outbox.broadcast(Item::event(end, boxed(r)));
                    debug_assert!(delivered);
                    cur = next;
                    *budget -= 1;
                }
                None => {
                    if let Some(table) = self.drain_table.take() {
                        self.recycle(table);
                    }
                    self.close_window(end, op);
                    return true;
                }
            }
        }
        self.pending = Pending::EmitFrame { end, cur };
        true
    }

    /// Close out the emitted window: detach the expired frame into the
    /// retire queue and apply the spill. Cold: once per slide, O(spill).
    #[cold]
    fn close_window<R>(&mut self, end: Ts, op: &AggregateOp<A, R>) {
        let expired = end - self.wdef.size + self.wdef.slide;
        if self.wdef.frames_per_window() > 1 {
            if let Some(i) = find_frame(&self.frames, 0, expired) {
                // Deduct mode subtracts each retired slot from `running`;
                // recombine mode only needs the table emptied before reuse.
                // Both drain a bounded number of slots per quantum.
                let f = self.frames.remove(i);
                self.retire.push((f.table, Cursor::default()));
            }
        }
        self.pending = Pending::Idle;
        self.hint = 0;
        self.drain_spill(op);
    }

    /// Retire a bounded number of expired slots: deduct each from the
    /// running accumulators (deduct mode) and recycle emptied tables.
    fn step_retire<R>(&mut self, op: &AggregateOp<A, R>, budget: &mut usize) -> bool {
        let mut worked = false;
        let take = (*budget).min(RETIRE_CHUNK);
        let mut left = take;
        while left > 0 {
            let Some(li) = self.retire.len().checked_sub(1) else {
                break;
            };
            let (next, item) = {
                let (table, cur) = &mut self.retire[li];
                let r = table.drain_next(*cur);
                *cur = r.0;
                r
            };
            let _ = next;
            match item {
                Some((fp, k, a)) => {
                    if let Some(deduct) = &op.deduct {
                        if let Some(slot) = self.running.get_mut(fp, &k) {
                            deduct(&mut slot.0, &a);
                            slot.1 -= 1;
                            if slot.1 == 0 {
                                self.running.remove(fp, &k);
                            }
                        }
                    }
                    left -= 1;
                    worked = true;
                }
                None => {
                    if let Some((table, _)) = self.retire.pop() {
                        self.recycle(table);
                    }
                    worked = true;
                }
            }
        }
        *budget -= take - left;
        worked
    }

    /// Return an emptied table to the pool. Cold: once per frame lifetime.
    #[cold]
    fn recycle(&mut self, table: KeyTable<K, A>) {
        debug_assert!(table.is_empty());
        let cap = self.wdef.frames_per_window() as usize + 2;
        if self.pool.len() < cap {
            self.pool.push(table);
        }
    }

    /// Capacity-accounted resident bytes across every table of the store.
    fn resident_bytes(&self) -> usize {
        let mut bytes = self.running.resident_bytes() + self.scratch.resident_bytes();
        for f in &self.frames {
            bytes += f.table.resident_bytes();
        }
        for (t, _) in &self.retire {
            bytes += t.resident_bytes();
        }
        for t in &self.pool {
            bytes += t.resident_bytes();
        }
        if self.spill.is_some() {
            bytes += SPILL_CAP * std::mem::size_of::<Option<(Ts, u64, K, A)>>();
        }
        bytes
    }

    /// Live keyed entries (frames + running).
    fn resident_keys(&self) -> usize {
        let mut n = self.running.len();
        for f in &self.frames {
            n += f.table.len();
        }
        n
    }

    /// Serialize a bounded chunk of keyed state; resumable across quanta
    /// behind `snap_cursor`. Returns true when the final chunk (including
    /// the floor meta record) has been staged.
    fn stream_save(&mut self, id: u64, outbox: &mut Outbox, instance: usize) -> bool {
        // Record keys embed the writing instance: several parallel instances
        // may hold state for the same (key, frame) — most importantly the
        // non-partitioned stage-1 accumulator — and snapshot records must
        // not overwrite each other in the snapshot map.
        let (mut fi, mut cur) = match self.snap_cursor {
            Some((sid, fi, cur)) if sid == id => (fi, cur),
            _ => (0, Cursor::default()),
        };
        let mut budget = SNAPSHOT_CHUNK;
        while fi < self.frames.len() {
            if budget == 0 {
                self.snap_cursor = Some((id, fi, cur));
                return false;
            }
            let frame_end = self.frames[fi].end;
            let (next, item) = self.frames[fi].table.scan_next(cur);
            match item {
                Some((_, k, a)) => {
                    let key_bytes = (0u64, instance as u64, *k, frame_end).to_bytes();
                    outbox.offer_snapshot(key_bytes, a.to_bytes());
                    cur = next;
                    budget -= 1;
                }
                None => {
                    fi += 1;
                    cur = Cursor::default();
                }
            }
        }
        // Meta record (tag 1): this instance's emission floor.
        let meta_key = (1u64, instance as u64).to_bytes();
        outbox.offer_snapshot(meta_key, self.floor.to_bytes());
        self.snap_cursor = None;
        true
    }

    /// Restore one record, merging partials for the same (key, frame) with
    /// `op.combine` (records from distinct old instances must add up).
    fn restore<R>(
        &mut self,
        key: &[u8],
        value: &[u8],
        ctx: &ProcessorContext,
        op: &AggregateOp<A, R>,
    ) {
        self.set_partitions(ctx.partition_count);
        let mut r = jet_util::codec::ByteReader::new(key);
        let tag = u64::load(&mut r).expect("corrupt window snapshot key tag");
        let _instance = u64::load(&mut r).expect("corrupt window snapshot instance");
        if tag == 1 {
            let saved = Ts::from_bytes(value).expect("corrupt window meta record");
            // Take the minimum floor over instances: re-emitting a window
            // another old instance already emitted is impossible (the keys
            // were disjoint); missing one is not acceptable.
            if saved != NO_WATERMARK && (self.floor == NO_WATERMARK || saved < self.floor) {
                self.floor = saved;
            }
            return;
        }
        let k = K::load(&mut r).expect("corrupt window snapshot key");
        let frame_end = Ts::load(&mut r).expect("corrupt window snapshot frame");
        if !ctx.owns_key_hash(seq::hash_of(&k)) {
            return; // another instance's partition
        }
        let a = A::from_bytes(value).expect("corrupt window snapshot value");
        let fi = match find_frame(&self.frames, self.hint, frame_end) {
            Some(i) => i,
            None => create_frame(&mut self.frames, &mut self.pool, self.parts, frame_end),
        };
        self.hint = fi;
        let (slot, _) = self.frames[fi].table.upsert(fp_of(&k), k, || (op.create)());
        (op.combine)(slot, &a);
    }

    /// Rebuild the running accumulators from restored frames: everything in
    /// `(floor - size, floor - slide]` has already been "added". The anchor
    /// itself re-establishes from the restored frames.
    fn finish_restore<R>(&mut self, op: &AggregateOp<A, R>) {
        // Re-anchor on the restored frames (respecting the floor).
        self.next_emit = NO_WATERMARK;
        let mut i = 0;
        while i < self.frames.len() {
            let end = self.frames[i].end;
            self.note_first_frame(end);
            i += 1;
        }
        if op.deduct.is_none() || self.floor == NO_WATERMARK {
            return;
        }
        self.running.clear();
        let lo = self.floor - self.wdef.size;
        let hi = self.floor - self.wdef.slide;
        if hi < lo + 1 {
            return; // tumbling window: nothing pre-added to `running`
        }
        for f in &self.frames {
            if f.end <= lo || f.end > hi {
                continue;
            }
            let mut cur = Cursor::default();
            loop {
                let (next, item) = f.table.scan_next(cur);
                cur = next;
                match item {
                    Some((fp, k, a)) => {
                        let (slot, _) = self.running.upsert(fp, *k, || ((op.create)(), 0));
                        (op.combine)(&mut slot.0, a);
                        slot.1 += 1;
                    }
                    None => break,
                }
            }
        }
    }

    /// Refresh the exported probe gauges.
    fn refresh_probe(&self, probe: &StateProbe) {
        probe.set_resident(self.resident_bytes() as u64, self.resident_keys() as u64);
        probe.set_late_events(self.late_events);
    }
}

/// Single-stage keyed sliding-window aggregation.
pub struct SlidingWindowP<K, A, R> {
    wdef: WindowDef,
    /// One key extractor per input ordinal (co-group inputs differ in type).
    key_fns: Vec<ObjKeyFn<K>>,
    op: AggregateOp<A, R>,
    state: WindowState<K, A>,
    probe: Arc<StateProbe>,
    ticks: u32,
}

impl<K, A, R> SlidingWindowP<K, A, R>
where
    K: WindowKey,
    A: Snap + Clone + Send + Default + 'static,
    R: Clone + Send + Debug + 'static,
{
    pub fn new<I: 'static>(
        wdef: WindowDef,
        key_fn: impl Fn(&I) -> K + Send + Sync + 'static,
        op: AggregateOp<A, R>,
    ) -> Self {
        SlidingWindowP {
            wdef,
            key_fns: vec![Arc::new(move |obj| key_fn(downcast_ref::<I>(obj)))],
            op,
            state: WindowState::new(wdef),
            probe: Arc::new(StateProbe::default()),
            ticks: 0,
        }
    }

    /// Add a key extractor for a further input ordinal (windowed co-group).
    pub fn with_input<I: 'static>(
        mut self,
        key_fn: impl Fn(&I) -> K + Send + Sync + 'static,
    ) -> Self {
        self.key_fns
            .push(Arc::new(move |obj| key_fn(downcast_ref::<I>(obj))));
        self
    }

    pub fn late_events(&self) -> u64 {
        self.state.late_events
    }
}

impl<K, A, R> Processor for SlidingWindowP<K, A, R>
where
    K: WindowKey,
    A: Snap + Clone + Send + Default + 'static,
    R: Clone + Send + Debug + 'static,
{
    fn init(&mut self, ctx: &ProcessorContext) {
        self.state.set_partitions(ctx.partition_count);
    }

    fn process(
        &mut self,
        ordinal: usize,
        inbox: &mut Inbox,
        _outbox: &mut Outbox,
        _ctx: &ProcessorContext,
    ) {
        let Self {
            wdef,
            key_fns,
            op,
            state,
            ..
        } = self;
        let key_fn = &key_fns[ordinal];
        let acc_fn = &op.accumulate[ordinal];
        while let Some((ts, _)) = inbox.peek() {
            let frame_end = wdef.frame_end(*ts);
            if state.blocked(frame_end) {
                // Spill full while this frame's window is mid-emission:
                // leave the event queued (inbox backpressure) and let the
                // tick-driven emission catch up.
                break;
            }
            let Some((_, obj)) = inbox.take() else {
                break;
            };
            if state.is_late(frame_end) {
                continue;
            }
            let key = key_fn(obj.as_ref());
            state.add(fp_of(&key), key, frame_end, op, |a| acc_fn(a, obj.as_ref()));
        }
    }

    fn try_process_watermark(
        &mut self,
        wm: Ts,
        outbox: &mut Outbox,
        _ctx: &ProcessorContext,
    ) -> bool {
        let Self { op, state, .. } = self;
        state.pump(outbox, op);
        state.try_accept_wm(wm)
    }

    fn tick(&mut self, outbox: &mut Outbox, _ctx: &ProcessorContext) -> bool {
        let Self { op, state, .. } = self;
        let worked = state.pump(outbox, op);
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks.is_multiple_of(PROBE_STRIDE) {
            self.state.refresh_probe(&self.probe);
        }
        worked
    }

    fn state_probe(&self) -> Option<Arc<StateProbe>> {
        Some(self.probe.clone())
    }

    fn complete(&mut self, outbox: &mut Outbox, ctx: &ProcessorContext) -> bool {
        // Flush all remaining windows as if the watermark jumped to +inf.
        let _ = ctx;
        let Self {
            wdef,
            op,
            state,
            probe,
            ..
        } = self;
        let target = Ts::MAX - wdef.slide;
        if state.wm_target == NO_WATERMARK || target > state.wm_target {
            state.wm_target = target;
            state.held_wm = target;
        }
        state.pump(outbox, op);
        let done = state.finished();
        if done {
            // Leave the exported gauges exact at job end (the tick-driven
            // refresh is strided and may lag by up to PROBE_STRIDE calls).
            state.refresh_probe(probe);
        }
        done
    }

    fn save_snapshot(&mut self, id: u64, outbox: &mut Outbox, ctx: &ProcessorContext) -> bool {
        let Self { op, state, .. } = self;
        if !state.quiesced() {
            state.pump(outbox, op);
            if !state.quiesced() {
                return false;
            }
        }
        state.stream_save(id, outbox, ctx.global_index)
    }

    fn restore_from_snapshot(&mut self, key: &[u8], value: &[u8], ctx: &ProcessorContext) {
        self.state.restore(key, value, ctx, &self.op);
    }

    fn finish_snapshot_restore(&mut self, _ctx: &ProcessorContext) {
        self.state.finish_restore(&self.op);
    }
}

/// Stage 1 of two-stage windowed aggregation: accumulate locally, emit
/// per-frame partials when the watermark closes each frame.
pub struct AccumulateFrameP<K, A, R> {
    wdef: WindowDef,
    key_fn: ObjKeyFn<K>,
    op: AggregateOp<A, R>,
    parts: u32,
    /// Open frames, ascending by end timestamp.
    frames: Vec<Frame<K, A>>,
    hint: usize,
    pool: Vec<KeyTable<K, A>>,
    /// Frame being shipped: detached table + drain position.
    ship: Option<(Ts, KeyTable<K, A>, Cursor)>,
    emitted_through: Ts,
    wm_target: Ts,
    held_wm: Ts,
    snap_cursor: Option<(u64, usize, Cursor)>,
    probe: Arc<StateProbe>,
    ticks: u32,
}

impl<K, A, R> AccumulateFrameP<K, A, R>
where
    K: WindowKey,
    A: Snap + Clone + Send + Default + Debug + 'static,
{
    pub fn new<I: 'static>(
        wdef: WindowDef,
        key_fn: impl Fn(&I) -> K + Send + Sync + 'static,
        op: AggregateOp<A, R>,
    ) -> Self {
        AccumulateFrameP {
            wdef,
            key_fn: Arc::new(move |obj| key_fn(downcast_ref::<I>(obj))),
            op,
            parts: jet_imdg::DEFAULT_PARTITION_COUNT,
            frames: Vec::new(),
            hint: 0,
            pool: Vec::new(),
            ship: None,
            emitted_through: NO_WATERMARK,
            wm_target: NO_WATERMARK,
            held_wm: NO_WATERMARK,
            snap_cursor: None,
            probe: Arc::new(StateProbe::default()),
            ticks: 0,
        }
    }

    /// Ship a bounded chunk of closed-frame partials downstream; forward
    /// the held watermark once every closed frame is fully shipped.
    fn pump(&mut self, outbox: &mut Outbox) -> bool {
        let mut worked = false;
        let mut budget = EMIT_CHUNK;
        loop {
            if let Some((frame_end, table, cur)) = self.ship.as_mut() {
                let end = *frame_end;
                loop {
                    if budget == 0 {
                        return true;
                    }
                    if !outbox.has_room_all() {
                        return worked;
                    }
                    let (next, item) = table.drain_next(*cur);
                    *cur = next;
                    match item {
                        Some((_, key, acc)) => {
                            let c = FrameChunk {
                                key,
                                frame_end: end,
                                acc,
                            };
                            let delivered = outbox.broadcast(Item::event(end, boxed(c)));
                            debug_assert!(delivered);
                            budget -= 1;
                            worked = true;
                        }
                        None => break,
                    }
                }
                if let Some((_, table, _)) = self.ship.take() {
                    self.recycle(table);
                }
                worked = true;
            }
            // Next closed frame (frames are sorted: the first one is due
            // first). Detaching advances `emitted_through` immediately so
            // stragglers for the shipping frame classify as late.
            let due = self
                .frames
                .first()
                .is_some_and(|f| self.wm_target != NO_WATERMARK && f.end <= self.wm_target);
            if !due {
                break;
            }
            let f = self.frames.remove(0);
            self.hint = 0;
            self.emitted_through = self.emitted_through.max(f.end);
            self.ship = Some((f.end, f.table, Cursor::default()));
            worked = true;
        }
        if self.held_wm != NO_WATERMARK && outbox.broadcast(Item::Watermark(self.held_wm)) {
            self.held_wm = NO_WATERMARK;
            worked = true;
        }
        worked
    }

    /// Nothing due and the watermark forwarded.
    fn quiesced(&self) -> bool {
        self.ship.is_none()
            && self.held_wm == NO_WATERMARK
            && !self
                .frames
                .first()
                .is_some_and(|f| self.wm_target != NO_WATERMARK && f.end <= self.wm_target)
    }

    #[cold]
    fn recycle(&mut self, table: KeyTable<K, A>) {
        debug_assert!(table.is_empty());
        if self.pool.len() < 4 {
            self.pool.push(table);
        }
    }

    fn refresh_probe(&self) {
        let mut bytes = 0usize;
        let mut keys = 0usize;
        for f in &self.frames {
            bytes += f.table.resident_bytes();
            keys += f.table.len();
        }
        if let Some((_, t, _)) = &self.ship {
            bytes += t.resident_bytes();
            keys += t.len();
        }
        for t in &self.pool {
            bytes += t.resident_bytes();
        }
        self.probe.set_resident(bytes as u64, keys as u64);
    }
}

impl<K, A, R> Processor for AccumulateFrameP<K, A, R>
where
    K: WindowKey,
    A: Snap + Clone + Send + Default + Debug + 'static,
    R: 'static,
{
    fn init(&mut self, ctx: &ProcessorContext) {
        if self.frames.is_empty() {
            self.parts = ctx.partition_count;
            self.pool.clear();
        }
    }

    fn process(
        &mut self,
        ordinal: usize,
        inbox: &mut Inbox,
        _outbox: &mut Outbox,
        _ctx: &ProcessorContext,
    ) {
        let Self {
            wdef,
            key_fn,
            op,
            parts,
            frames,
            hint,
            pool,
            emitted_through,
            ..
        } = self;
        let acc_fn = &op.accumulate[ordinal];
        while let Some((ts, obj)) = inbox.take() {
            let frame_end = wdef.frame_end(ts);
            if *emitted_through != NO_WATERMARK && frame_end <= *emitted_through {
                continue; // frame already shipped; stage 2 counts it late
            }
            let key = (key_fn)(obj.as_ref());
            let fi = match find_frame(frames, *hint, frame_end) {
                Some(i) => i,
                None => create_frame(frames, pool, *parts, frame_end),
            };
            *hint = fi;
            let (acc, _) = frames[fi].table.upsert(fp_of(&key), key, || (op.create)());
            acc_fn(acc, obj.as_ref());
        }
    }

    fn try_process_watermark(
        &mut self,
        wm: Ts,
        outbox: &mut Outbox,
        _ctx: &ProcessorContext,
    ) -> bool {
        // Close all frames with end <= wm; partials stream out a bounded
        // chunk per quantum, and the outbox's FIFO guarantees every partial
        // precedes the (held) watermark, which is what lets stage 2
        // finalize on watermark alone.
        self.pump(outbox);
        if self.wm_target == NO_WATERMARK || wm > self.wm_target {
            self.wm_target = wm;
        }
        if self.held_wm == NO_WATERMARK || wm > self.held_wm {
            self.held_wm = wm;
        }
        true
    }

    fn tick(&mut self, outbox: &mut Outbox, _ctx: &ProcessorContext) -> bool {
        let worked = self.pump(outbox);
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks.is_multiple_of(PROBE_STRIDE) {
            self.refresh_probe();
        }
        worked
    }

    fn state_probe(&self) -> Option<Arc<StateProbe>> {
        Some(self.probe.clone())
    }

    fn complete(&mut self, outbox: &mut Outbox, _ctx: &ProcessorContext) -> bool {
        let target = Ts::MAX - self.wdef.slide;
        if self.wm_target == NO_WATERMARK || target > self.wm_target {
            self.wm_target = target;
            self.held_wm = target;
        }
        self.pump(outbox);
        let done = self.quiesced();
        if done {
            self.refresh_probe();
        }
        done
    }

    fn save_snapshot(&mut self, id: u64, outbox: &mut Outbox, ctx: &ProcessorContext) -> bool {
        // Stage-1 state is *not* partitioned by key (it is node-local), so
        // records are keyed by (instance, key, frame) to avoid collisions;
        // on restore they are re-partitioned exactly like live chunks
        // would be.
        if !self.quiesced() {
            self.pump(outbox);
            if !self.quiesced() {
                return false;
            }
        }
        let (mut fi, mut cur) = match self.snap_cursor {
            Some((sid, fi, cur)) if sid == id => (fi, cur),
            _ => (0, Cursor::default()),
        };
        let mut budget = SNAPSHOT_CHUNK;
        while fi < self.frames.len() {
            if budget == 0 {
                self.snap_cursor = Some((id, fi, cur));
                return false;
            }
            let frame_end = self.frames[fi].end;
            let (next, item) = self.frames[fi].table.scan_next(cur);
            match item {
                Some((_, k, a)) => {
                    let key_bytes = (0u64, ctx.global_index as u64, *k, frame_end).to_bytes();
                    outbox.offer_snapshot(key_bytes, a.to_bytes());
                    cur = next;
                    budget -= 1;
                }
                None => {
                    fi += 1;
                    cur = Cursor::default();
                }
            }
        }
        let meta_key = (1u64, ctx.global_index as u64).to_bytes();
        outbox.offer_snapshot(meta_key, self.emitted_through.to_bytes());
        self.snap_cursor = None;
        true
    }

    fn restore_from_snapshot(&mut self, key: &[u8], value: &[u8], ctx: &ProcessorContext) {
        if self.frames.is_empty() && self.parts != ctx.partition_count {
            self.parts = ctx.partition_count;
            self.pool.clear();
        }
        let mut r = jet_util::codec::ByteReader::new(key);
        let tag = u64::load(&mut r).expect("corrupt frame snapshot key tag");
        let _instance = u64::load(&mut r).expect("corrupt frame snapshot instance");
        if tag == 1 {
            let saved = Ts::from_bytes(value).expect("corrupt frame meta record");
            if self.emitted_through == NO_WATERMARK || saved < self.emitted_through {
                self.emitted_through = saved;
            }
            return;
        }
        let k = K::load(&mut r).expect("corrupt frame snapshot key");
        let frame_end = Ts::load(&mut r).expect("corrupt frame snapshot frame");
        // Restore by key ownership so the partial lands where live events
        // for that key will be accumulated.
        if !ctx.owns_key_hash(seq::hash_of(&k)) {
            return;
        }
        let a = A::from_bytes(value).expect("corrupt frame snapshot value");
        let fi = match find_frame(&self.frames, self.hint, frame_end) {
            Some(i) => i,
            None => create_frame(&mut self.frames, &mut self.pool, self.parts, frame_end),
        };
        self.hint = fi;
        let (slot, _) = self.frames[fi]
            .table
            .upsert(fp_of(&k), k, || (self.op.create)());
        (self.op.combine)(slot, &a);
    }
}

/// Stage 2: combine [`FrameChunk`]s (partitioned by key) into frames and run
/// the sliding emission.
pub struct CombineFramesP<K, A, R> {
    op: AggregateOp<A, R>,
    state: WindowState<K, A>,
    probe: Arc<StateProbe>,
    ticks: u32,
}

impl<K, A, R> CombineFramesP<K, A, R>
where
    K: WindowKey,
    A: Snap + Clone + Send + Default + Debug + 'static,
    R: Clone + Send + Debug + 'static,
{
    pub fn new(wdef: WindowDef, op: AggregateOp<A, R>) -> Self {
        CombineFramesP {
            op,
            state: WindowState::new(wdef),
            probe: Arc::new(StateProbe::default()),
            ticks: 0,
        }
    }

    pub fn late_chunks(&self) -> u64 {
        self.state.late_events
    }
}

impl<K, A, R> Processor for CombineFramesP<K, A, R>
where
    K: WindowKey,
    A: Snap + Clone + Send + Default + Debug + 'static,
    R: Clone + Send + Debug + 'static,
{
    fn init(&mut self, ctx: &ProcessorContext) {
        self.state.set_partitions(ctx.partition_count);
    }

    fn process(
        &mut self,
        _ordinal: usize,
        inbox: &mut Inbox,
        _outbox: &mut Outbox,
        _ctx: &ProcessorContext,
    ) {
        let Self { op, state, .. } = self;
        while let Some((_, obj)) = inbox.peek() {
            let chunk = downcast_ref::<FrameChunk<K, A>>(obj.as_ref());
            let frame_end = chunk.frame_end;
            if state.blocked(frame_end) {
                break; // spill full: inbox backpressure until the close
            }
            let Some((_, obj)) = inbox.take() else {
                break;
            };
            let chunk = downcast_ref::<FrameChunk<K, A>>(obj.as_ref());
            if state.is_late(frame_end) {
                continue;
            }
            let key = chunk.key;
            state.add(fp_of(&key), key, frame_end, op, |a| {
                (op.combine)(a, &chunk.acc)
            });
        }
    }

    fn try_process_watermark(
        &mut self,
        wm: Ts,
        outbox: &mut Outbox,
        _ctx: &ProcessorContext,
    ) -> bool {
        let Self { op, state, .. } = self;
        state.pump(outbox, op);
        state.try_accept_wm(wm)
    }

    fn tick(&mut self, outbox: &mut Outbox, _ctx: &ProcessorContext) -> bool {
        let Self { op, state, .. } = self;
        let worked = state.pump(outbox, op);
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks.is_multiple_of(PROBE_STRIDE) {
            self.state.refresh_probe(&self.probe);
        }
        worked
    }

    fn state_probe(&self) -> Option<Arc<StateProbe>> {
        Some(self.probe.clone())
    }

    fn complete(&mut self, outbox: &mut Outbox, _ctx: &ProcessorContext) -> bool {
        let Self {
            op, state, probe, ..
        } = self;
        let target = Ts::MAX - state.wdef.slide;
        if state.wm_target == NO_WATERMARK || target > state.wm_target {
            state.wm_target = target;
            state.held_wm = target;
        }
        state.pump(outbox, op);
        let done = state.finished();
        if done {
            state.refresh_probe(probe);
        }
        done
    }

    fn save_snapshot(&mut self, id: u64, outbox: &mut Outbox, ctx: &ProcessorContext) -> bool {
        let Self { op, state, .. } = self;
        if !state.quiesced() {
            state.pump(outbox, op);
            if !state.quiesced() {
                return false;
            }
        }
        state.stream_save(id, outbox, ctx.global_index)
    }

    fn restore_from_snapshot(&mut self, key: &[u8], value: &[u8], ctx: &ProcessorContext) {
        self.state.restore(key, value, ctx, &self.op);
    }

    fn finish_snapshot_restore(&mut self, _ctx: &ProcessorContext) {
        self.state.finish_restore(&self.op);
    }
}

//! Sliding/tumbling window aggregation via frame slicing (paper §2.3 cites
//! the stream-slicing line of work [32, 34]).
//!
//! Events are accumulated into *frames* — disjoint slide-sized slices keyed
//! by their end timestamp. A window ending at `E` is the combination of the
//! `size/slide` frames in `(E-size, E]`. When the aggregate op has a
//! `deduct`, we keep a running per-key accumulator and each slide costs
//! O(keys): add the newest frame, deduct the expired one. This is the
//! optimization that makes the paper's 10 ms slide viable ("triggering
//! every 10ms is something that no other scale-out stream processor can
//! perform").
//!
//! Three processors are built on the shared [`WindowState`]:
//!
//! * [`SlidingWindowP`] — single-stage keyed windowing (events in, window
//!   results out);
//! * [`AccumulateFrameP`] — stage 1 of the two-stage distributed aggregation
//!   (§3.1): accumulates *locally* (no shuffle) and emits per-frame partial
//!   accumulators when the watermark closes a frame;
//! * [`CombineFramesP`] — stage 2: receives partials on a partitioned edge,
//!   combines them, and emits window results.

use crate::item::{Item, Ts};
use crate::object::{boxed, downcast_ref};
use crate::processor::{Inbox, Outbox, Processor, ProcessorContext};
use crate::processors::agg::AggregateOp;
use crate::state::Snap;
use crate::watermark::NO_WATERMARK;
use jet_util::seq;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::Arc;

/// Type-erased key extractor: downcasts the boxed event and hashes its key.
type ObjKeyFn<K> = Arc<dyn Fn(&dyn crate::object::Object) -> K + Send + Sync>;

/// Window definition in event-time nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowDef {
    pub size: Ts,
    pub slide: Ts,
}

impl WindowDef {
    pub fn sliding(size: Ts, slide: Ts) -> Self {
        assert!(size > 0 && slide > 0, "window size/slide must be positive");
        assert!(
            size % slide == 0,
            "window size must be a multiple of the slide"
        );
        WindowDef { size, slide }
    }

    pub fn tumbling(size: Ts) -> Self {
        Self::sliding(size, size)
    }

    /// End timestamp of the frame containing `ts` (frames are
    /// `(end-slide, end]`... we use half-open `[start, end)` convention:
    /// event at `ts` belongs to the frame ending at the next slide boundary
    /// strictly greater than `ts`).
    #[inline]
    pub fn frame_end(&self, ts: Ts) -> Ts {
        ts.div_euclid(self.slide) * self.slide + self.slide
    }

    /// Number of frames per window.
    pub fn frames_per_window(&self) -> i64 {
        self.size / self.slide
    }
}

/// One emitted window result.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowResult<K, R> {
    pub key: K,
    /// Window covers `[end - size, end)`.
    pub start: Ts,
    pub end: Ts,
    pub value: R,
}

/// Stage-1 → stage-2 partial: one key's accumulator for one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameChunk<K, A> {
    pub key: K,
    pub frame_end: Ts,
    pub acc: A,
}

/// Key constraints for windowed state: routable, snapshottable, printable.
pub trait WindowKey: Clone + Eq + Hash + Snap + Send + Debug + 'static {}
impl<T: Clone + Eq + Hash + Snap + Send + Debug + 'static> WindowKey for T {}

/// Shared frame store + sliding emission logic.
struct WindowState<K, A> {
    wdef: WindowDef,
    frames: BTreeMap<Ts, HashMap<K, A>>,
    /// Running window accumulator per key + number of live frames holding
    /// the key (deduct mode only).
    running: HashMap<K, (A, u32)>,
    /// Next window end to emit; `NO_WATERMARK` while no frame is anchored.
    next_emit: Ts,
    /// Emission floor: every window with `end < floor` has been emitted (or
    /// was skipped as empty) and must never be emitted again. `NO_WATERMARK`
    /// until the first window is produced.
    floor: Ts,
    late_events: u64,
}

impl<K: WindowKey, A: Snap + Clone + Send + 'static> WindowState<K, A> {
    fn new(wdef: WindowDef) -> Self {
        WindowState {
            wdef,
            frames: BTreeMap::new(),
            running: HashMap::new(),
            next_emit: NO_WATERMARK,
            floor: NO_WATERMARK,
            late_events: 0,
        }
    }

    /// True (and counted) when an event/partial for `frame_end` can no
    /// longer contribute to any window at or above the emission floor.
    fn is_late(&mut self, frame_end: Ts) -> bool {
        let last_window_of_frame = frame_end + self.wdef.size - self.wdef.slide;
        if self.floor != NO_WATERMARK && last_window_of_frame < self.floor {
            self.late_events += 1;
            true
        } else {
            false
        }
    }

    /// (Re)anchor the next window to emit. Before anything was emitted the
    /// anchor floats down to the earliest frame seen (events may arrive out
    /// of order ahead of the watermark); once a floor exists it clamps the
    /// anchor so no window is ever emitted twice.
    fn note_first_frame(&mut self, frame_end: Ts) {
        let candidate = if self.floor == NO_WATERMARK {
            frame_end
        } else {
            frame_end.max(self.floor)
        };
        if self.next_emit == NO_WATERMARK || candidate < self.next_emit {
            self.next_emit = candidate;
        }
    }

    /// Frames with `end <= floor - slide` were already folded into the
    /// running accumulators by past emissions; a (valid, in-window) late
    /// arrival for such a frame must therefore update `running` directly as
    /// well, or the eventual frame expiry would deduct state that was never
    /// added (and intermediate windows would under-count).
    fn frame_already_running(&self, frame_end: Ts) -> bool {
        self.floor != NO_WATERMARK && frame_end <= self.floor - self.wdef.slide
    }

    /// Apply a late contribution for `key` to the running accumulator.
    /// `newly_in_frame` is true when this is the key's first item in that
    /// frame (the live-frame refcount must grow by one then).
    // jet-analyze: allow(alloc) — late merge touches the running frame's keyed map (cardinality-bounded)
    fn add_late_to_running<R>(
        &mut self,
        key: &K,
        newly_in_frame: bool,
        op: &AggregateOp<A, R>,
        apply: impl FnOnce(&mut A),
    ) {
        if op.deduct.is_none() {
            return; // recombine fallback reads frames directly
        }
        let entry = self
            .running
            .entry(key.clone())
            .or_insert_with(|| ((op.create)(), 0));
        apply(&mut entry.0);
        if newly_in_frame {
            entry.1 += 1;
        }
    }

    /// Emit the next due window (if `next_emit <= wm`) into `out`. Returns
    /// `false` when no window was due. `op` supplies combine/deduct/finish.
    // jet-analyze: allow(alloc) — window emission clones keyed aggregates once per window close, not per event
    fn produce_next_window<R>(
        &mut self,
        wm: Ts,
        op: &AggregateOp<A, R>,
        out: &mut VecDeque<WindowResult<K, R>>,
    ) -> bool {
        if self.next_emit == NO_WATERMARK || self.next_emit > wm {
            return false;
        }
        if self.frames.is_empty() && self.running.is_empty() {
            // No state at all: every remaining window is empty. Re-anchor on
            // the next frame that actually arrives (this is also what keeps
            // quiet key spaces free: gaps in the stream cost nothing). The
            // floor guarantees the new anchor never revisits an emitted
            // window.
            self.next_emit = NO_WATERMARK;
            return false;
        }
        let end = self.next_emit;
        let start = end - self.wdef.size;
        if let Some(deduct) = &op.deduct {
            // Add the newest frame into the running accumulators.
            if let Some(frame) = self.frames.get(&end) {
                for (k, a) in frame {
                    match self.running.get_mut(k) {
                        Some((racc, cnt)) => {
                            (op.combine)(racc, a);
                            *cnt += 1;
                        }
                        None => {
                            let mut racc = (op.create)();
                            (op.combine)(&mut racc, a);
                            self.running.insert(k.clone(), (racc, 1));
                        }
                    }
                }
            }
            for (k, (racc, _)) in &self.running {
                out.push_back(WindowResult {
                    key: k.clone(),
                    start,
                    end,
                    value: (op.finish)(racc),
                });
            }
            // Expire the oldest frame of this window.
            let expired = end - self.wdef.size + self.wdef.slide;
            if let Some(frame) = self.frames.remove(&expired) {
                for (k, a) in frame {
                    if let Some((racc, cnt)) = self.running.get_mut(&k) {
                        deduct(racc, &a);
                        *cnt -= 1;
                        if *cnt == 0 {
                            self.running.remove(&k);
                        }
                    }
                }
            }
        } else {
            // Recombine fallback: combine all frames of the window per key.
            let mut accs: HashMap<K, A> = HashMap::new();
            for (_, frame) in self.frames.range((start + 1)..=end) {
                for (k, a) in frame {
                    match accs.get_mut(k) {
                        Some(acc) => (op.combine)(acc, a),
                        None => {
                            let mut acc = (op.create)();
                            (op.combine)(&mut acc, a);
                            accs.insert(k.clone(), acc);
                        }
                    }
                }
            }
            for (k, acc) in &accs {
                out.push_back(WindowResult {
                    key: k.clone(),
                    start,
                    end,
                    value: (op.finish)(acc),
                });
            }
            let expired = end - self.wdef.size + self.wdef.slide;
            self.frames.remove(&expired);
        }
        self.next_emit = end + self.wdef.slide;
        self.floor = self.next_emit;
        true
    }

    // jet-analyze: allow(alloc) — snapshot clones keyed state once per epoch
    fn save(&self, outbox: &mut Outbox, instance: usize) {
        // Record keys embed the writing instance: several parallel instances
        // may hold state for the same (key, frame) — most importantly the
        // non-partitioned stage-1 accumulator — and snapshot records must
        // not overwrite each other in the snapshot map.
        for (frame_end, frame) in &self.frames {
            for (k, a) in frame {
                let key_bytes = (0u64, instance as u64, k.clone(), *frame_end).to_bytes();
                outbox.offer_snapshot(key_bytes, a.to_bytes());
            }
        }
        // Meta record (tag 1): this instance's emission floor.
        let meta_key = (1u64, instance as u64).to_bytes();
        outbox.offer_snapshot(meta_key, self.floor.to_bytes());
    }

    /// Restore one record, merging partials for the same (key, frame) with
    /// `op.combine` (records from distinct old instances must add up).
    fn restore<R>(
        &mut self,
        key: &[u8],
        value: &[u8],
        ctx: &ProcessorContext,
        op: &AggregateOp<A, R>,
    ) {
        let mut r = jet_util::codec::ByteReader::new(key);
        let tag = u64::load(&mut r).expect("corrupt window snapshot key tag");
        let _instance = u64::load(&mut r).expect("corrupt window snapshot instance");
        if tag == 1 {
            let saved = Ts::from_bytes(value).expect("corrupt window meta record");
            // Take the minimum floor over instances: re-emitting a window
            // another old instance already emitted is impossible (the keys
            // were disjoint); missing one is not acceptable.
            if saved != NO_WATERMARK && (self.floor == NO_WATERMARK || saved < self.floor) {
                self.floor = saved;
            }
            return;
        }
        let k = K::load(&mut r).expect("corrupt window snapshot key");
        let frame_end = Ts::load(&mut r).expect("corrupt window snapshot frame");
        if !ctx.owns_key_hash(seq::hash_of(&k)) {
            return; // another instance's partition
        }
        let a = A::from_bytes(value).expect("corrupt window snapshot value");
        let frame = self.frames.entry(frame_end).or_default();
        match frame.get_mut(&k) {
            Some(acc) => (op.combine)(acc, &a),
            None => {
                let mut acc = (op.create)();
                (op.combine)(&mut acc, &a);
                frame.insert(k, acc);
            }
        }
    }

    /// Rebuild the running accumulators from restored frames: everything in
    /// `(floor - size, floor - slide]` has already been "added". The anchor
    /// itself re-establishes from the restored frames.
    fn finish_restore<R>(&mut self, op: &AggregateOp<A, R>) {
        // Re-anchor on the restored frames (respecting the floor).
        self.next_emit = NO_WATERMARK;
        let frame_ends: Vec<Ts> = self.frames.keys().copied().collect();
        for f in frame_ends {
            self.note_first_frame(f);
        }
        if op.deduct.is_none() || self.floor == NO_WATERMARK {
            return;
        }
        self.running.clear();
        let lo = self.floor - self.wdef.size;
        let hi = self.floor - self.wdef.slide;
        if hi < lo + 1 {
            return; // tumbling window: nothing pre-added to `running`
        }
        for (_, frame) in self.frames.range((lo + 1)..=hi) {
            for (k, a) in frame {
                match self.running.get_mut(k) {
                    Some((racc, cnt)) => {
                        (op.combine)(racc, a);
                        *cnt += 1;
                    }
                    None => {
                        let mut racc = (op.create)();
                        (op.combine)(&mut racc, a);
                        self.running.insert(k.clone(), (racc, 1));
                    }
                }
            }
        }
    }
}

/// Single-stage keyed sliding-window aggregation.
pub struct SlidingWindowP<K, A, R> {
    wdef: WindowDef,
    /// One key extractor per input ordinal (co-group inputs differ in type).
    key_fns: Vec<ObjKeyFn<K>>,
    op: AggregateOp<A, R>,
    state: WindowState<K, A>,
    emit_queue: VecDeque<WindowResult<K, R>>,
}

impl<K, A, R> SlidingWindowP<K, A, R>
where
    K: WindowKey,
    A: Snap + Clone + Send + 'static,
    R: Clone + Send + Debug + 'static,
{
    pub fn new<I: 'static>(
        wdef: WindowDef,
        key_fn: impl Fn(&I) -> K + Send + Sync + 'static,
        op: AggregateOp<A, R>,
    ) -> Self {
        SlidingWindowP {
            wdef,
            key_fns: vec![Arc::new(move |obj| key_fn(downcast_ref::<I>(obj)))],
            op,
            state: WindowState::new(wdef),
            emit_queue: VecDeque::new(),
        }
    }

    /// Add a key extractor for a further input ordinal (windowed co-group).
    pub fn with_input<I: 'static>(
        mut self,
        key_fn: impl Fn(&I) -> K + Send + Sync + 'static,
    ) -> Self {
        self.key_fns
            .push(Arc::new(move |obj| key_fn(downcast_ref::<I>(obj))));
        self
    }

    pub fn late_events(&self) -> u64 {
        self.state.late_events
    }
}

impl<K, A, R> Processor for SlidingWindowP<K, A, R>
where
    K: WindowKey,
    A: Snap + Clone + Send + 'static,
    R: Clone + Send + Debug + 'static,
{
    // jet-analyze: allow(alloc) — keyed frame state grows with key cardinality; clones are the Object model's fan-out cost
    fn process(
        &mut self,
        ordinal: usize,
        inbox: &mut Inbox,
        _outbox: &mut Outbox,
        _ctx: &ProcessorContext,
    ) {
        let acc_fn = self.op.accumulate[ordinal].clone();
        let create = self.op.create.clone();
        let key_fn = self.key_fns[ordinal].clone();
        while let Some((ts, obj)) = inbox.take() {
            let key = key_fn(obj.as_ref());
            let frame_end = self.wdef.frame_end(ts);
            if self.state.is_late(frame_end) {
                continue;
            }
            self.state.note_first_frame(frame_end);
            let frame = self.state.frames.entry(frame_end).or_default();
            let newly = !frame.contains_key(&key);
            let acc = frame.entry(key.clone()).or_insert_with(|| create());
            acc_fn(acc, obj.as_ref());
            if self.state.frame_already_running(frame_end) {
                self.state
                    .add_late_to_running(&key, newly, &self.op, |racc| acc_fn(racc, obj.as_ref()));
            }
        }
    }

    // jet-analyze: allow(panic) — frame-queue invariants guarded by watermark ordering; emission allocs happen once per window close
    fn try_process_watermark(
        &mut self,
        wm: Ts,
        outbox: &mut Outbox,
        _ctx: &ProcessorContext,
    ) -> bool {
        loop {
            while let Some(r) = self.emit_queue.front() {
                let end = r.end;
                if outbox.has_room_all() {
                    let r = self.emit_queue.pop_front().expect("front checked");
                    let delivered = outbox.broadcast(Item::event(end, boxed(r)));
                    debug_assert!(delivered);
                } else {
                    return false;
                }
            }
            if !self
                .state
                .produce_next_window(wm, &self.op, &mut self.emit_queue)
            {
                break;
            }
        }
        outbox.broadcast(Item::Watermark(wm))
    }

    fn complete(&mut self, outbox: &mut Outbox, ctx: &ProcessorContext) -> bool {
        // Flush all remaining windows as if the watermark jumped to +inf.
        self.try_process_watermark(Ts::MAX - self.wdef.slide, outbox, ctx)
    }

    fn save_snapshot(&mut self, _id: u64, outbox: &mut Outbox, ctx: &ProcessorContext) -> bool {
        self.state.save(outbox, ctx.global_index);
        true
    }

    fn restore_from_snapshot(&mut self, key: &[u8], value: &[u8], ctx: &ProcessorContext) {
        self.state.restore(key, value, ctx, &self.op);
    }

    fn finish_snapshot_restore(&mut self, _ctx: &ProcessorContext) {
        self.state.finish_restore(&self.op);
    }
}

/// Stage 1 of two-stage windowed aggregation: accumulate locally, emit
/// per-frame partials when the watermark closes each frame.
pub struct AccumulateFrameP<K, A, R> {
    wdef: WindowDef,
    key_fn: ObjKeyFn<K>,
    op: AggregateOp<A, R>,
    frames: BTreeMap<Ts, HashMap<K, A>>,
    emit_queue: VecDeque<FrameChunk<K, A>>,
    emitted_through: Ts,
}

impl<K, A, R> AccumulateFrameP<K, A, R>
where
    K: WindowKey,
    A: Snap + Clone + Send + Debug + 'static,
{
    pub fn new<I: 'static>(
        wdef: WindowDef,
        key_fn: impl Fn(&I) -> K + Send + Sync + 'static,
        op: AggregateOp<A, R>,
    ) -> Self {
        AccumulateFrameP {
            wdef,
            key_fn: Arc::new(move |obj| key_fn(downcast_ref::<I>(obj))),
            op,
            frames: BTreeMap::new(),
            emit_queue: VecDeque::new(),
            emitted_through: NO_WATERMARK,
        }
    }
}

impl<K, A, R> Processor for AccumulateFrameP<K, A, R>
where
    K: WindowKey,
    A: Snap + Clone + Send + Debug + 'static,
    R: 'static,
{
    // jet-analyze: allow(alloc) — keyed frame state grows with key cardinality; clones are the Object model's fan-out cost
    fn process(
        &mut self,
        ordinal: usize,
        inbox: &mut Inbox,
        _outbox: &mut Outbox,
        _ctx: &ProcessorContext,
    ) {
        let acc_fn = self.op.accumulate[ordinal].clone();
        let create = self.op.create.clone();
        while let Some((ts, obj)) = inbox.take() {
            let frame_end = self.wdef.frame_end(ts);
            if self.emitted_through != NO_WATERMARK && frame_end <= self.emitted_through {
                continue; // frame already shipped; stage 2 counts it late
            }
            let key = (self.key_fn)(obj.as_ref());
            let frame = self.frames.entry(frame_end).or_default();
            acc_fn(frame.entry(key).or_insert_with(|| create()), obj.as_ref());
        }
    }

    // jet-analyze: allow(alloc, panic) — frame-queue invariants guarded by watermark ordering; emission allocs happen once per window close
    fn try_process_watermark(
        &mut self,
        wm: Ts,
        outbox: &mut Outbox,
        _ctx: &ProcessorContext,
    ) -> bool {
        // Close all frames with end <= wm, then forward the watermark. The
        // outbox's FIFO guarantees partials precede the watermark, which is
        // what lets stage 2 finalize on watermark alone.
        loop {
            while self.emit_queue.front().is_some() {
                if outbox.has_room_all() {
                    let c = self.emit_queue.pop_front().expect("front checked");
                    let end = c.frame_end;
                    let delivered = outbox.broadcast(Item::event(end, boxed(c)));
                    debug_assert!(delivered);
                } else {
                    return false;
                }
            }
            let Some((&frame_end, _)) = self.frames.iter().next() else {
                break;
            };
            if frame_end > wm {
                break;
            }
            let frame = self.frames.remove(&frame_end).expect("key from iter");
            for (key, acc) in frame {
                self.emit_queue.push_back(FrameChunk {
                    key,
                    frame_end,
                    acc,
                });
            }
            self.emitted_through = self.emitted_through.max(frame_end);
        }
        outbox.broadcast(Item::Watermark(wm))
    }

    fn complete(&mut self, outbox: &mut Outbox, ctx: &ProcessorContext) -> bool {
        self.try_process_watermark(Ts::MAX - self.wdef.slide, outbox, ctx)
    }

    // jet-analyze: allow(alloc) — snapshot clones keyed state once per epoch
    fn save_snapshot(&mut self, _id: u64, outbox: &mut Outbox, ctx: &ProcessorContext) -> bool {
        // Stage-1 state is *not* partitioned by key (it is node-local), so
        // records are keyed by (instance, key, frame) to avoid collisions,
        // and every instance restores only records it wrote... except after
        // rescale, where instance 0 adopts orphans. Simpler and correct:
        // ship partials as snapshot state tagged by key; on restore they are
        // re-partitioned exactly like live chunks would be.
        for (frame_end, frame) in &self.frames {
            for (k, a) in frame {
                let key_bytes = (0u64, ctx.global_index as u64, k.clone(), *frame_end).to_bytes();
                outbox.offer_snapshot(key_bytes, a.to_bytes());
            }
        }
        let meta_key = (1u64, ctx.global_index as u64).to_bytes();
        outbox.offer_snapshot(meta_key, self.emitted_through.to_bytes());
        true
    }

    fn restore_from_snapshot(&mut self, key: &[u8], value: &[u8], ctx: &ProcessorContext) {
        let mut r = jet_util::codec::ByteReader::new(key);
        let tag = u64::load(&mut r).expect("corrupt frame snapshot key tag");
        let _instance = u64::load(&mut r).expect("corrupt frame snapshot instance");
        if tag == 1 {
            let saved = Ts::from_bytes(value).expect("corrupt frame meta record");
            if self.emitted_through == NO_WATERMARK || saved < self.emitted_through {
                self.emitted_through = saved;
            }
            return;
        }
        let k = K::load(&mut r).expect("corrupt frame snapshot key");
        let frame_end = Ts::load(&mut r).expect("corrupt frame snapshot frame");
        // Restore by key ownership so the partial lands where live events
        // for that key will be accumulated.
        if !ctx.owns_key_hash(seq::hash_of(&k)) {
            return;
        }
        let a = A::from_bytes(value).expect("corrupt frame snapshot value");
        let create = self.op.create.clone();
        let combine = self.op.combine.clone();
        let entry = self
            .frames
            .entry(frame_end)
            .or_default()
            .entry(k)
            .or_insert_with(|| create());
        combine(entry, &a);
    }
}

/// Stage 2: combine [`FrameChunk`]s (partitioned by key) into frames and run
/// the sliding emission.
pub struct CombineFramesP<K, A, R> {
    op: AggregateOp<A, R>,
    state: WindowState<K, A>,
    emit_queue: VecDeque<WindowResult<K, R>>,
}

impl<K, A, R> CombineFramesP<K, A, R>
where
    K: WindowKey,
    A: Snap + Clone + Send + Debug + 'static,
    R: Clone + Send + Debug + 'static,
{
    pub fn new(wdef: WindowDef, op: AggregateOp<A, R>) -> Self {
        CombineFramesP {
            op,
            state: WindowState::new(wdef),
            emit_queue: VecDeque::new(),
        }
    }

    pub fn late_chunks(&self) -> u64 {
        self.state.late_events
    }
}

impl<K, A, R> Processor for CombineFramesP<K, A, R>
where
    K: WindowKey,
    A: Snap + Clone + Send + Debug + 'static,
    R: Clone + Send + Debug + 'static,
{
    // jet-analyze: allow(alloc) — keyed frame state grows with key cardinality; clones are the Object model's fan-out cost
    fn process(
        &mut self,
        _ordinal: usize,
        inbox: &mut Inbox,
        _outbox: &mut Outbox,
        _ctx: &ProcessorContext,
    ) {
        let create = self.op.create.clone();
        let combine = self.op.combine.clone();
        while let Some((_ts, obj)) = inbox.take() {
            let chunk = downcast_ref::<FrameChunk<K, A>>(obj.as_ref());
            if self.state.is_late(chunk.frame_end) {
                continue;
            }
            self.state.note_first_frame(chunk.frame_end);
            let frame = self.state.frames.entry(chunk.frame_end).or_default();
            let newly = !frame.contains_key(&chunk.key);
            match frame.get_mut(&chunk.key) {
                Some(acc) => combine(acc, &chunk.acc),
                None => {
                    let mut acc = create();
                    combine(&mut acc, &chunk.acc);
                    frame.insert(chunk.key.clone(), acc);
                }
            }
            if self.state.frame_already_running(chunk.frame_end) {
                self.state
                    .add_late_to_running(&chunk.key, newly, &self.op, |racc| {
                        combine(racc, &chunk.acc)
                    });
            }
        }
    }

    // jet-analyze: allow(panic) — frame-queue invariants guarded by watermark ordering; emission allocs happen once per window close
    fn try_process_watermark(
        &mut self,
        wm: Ts,
        outbox: &mut Outbox,
        _ctx: &ProcessorContext,
    ) -> bool {
        loop {
            while let Some(r) = self.emit_queue.front() {
                let end = r.end;
                if outbox.has_room_all() {
                    let r = self.emit_queue.pop_front().expect("front checked");
                    let delivered = outbox.broadcast(Item::event(end, boxed(r)));
                    debug_assert!(delivered);
                } else {
                    return false;
                }
            }
            if !self
                .state
                .produce_next_window(wm, &self.op, &mut self.emit_queue)
            {
                break;
            }
        }
        outbox.broadcast(Item::Watermark(wm))
    }

    fn complete(&mut self, outbox: &mut Outbox, ctx: &ProcessorContext) -> bool {
        self.try_process_watermark(Ts::MAX - self.state.wdef.slide, outbox, ctx)
    }

    fn save_snapshot(&mut self, _id: u64, outbox: &mut Outbox, ctx: &ProcessorContext) -> bool {
        self.state.save(outbox, ctx.global_index);
        true
    }

    fn restore_from_snapshot(&mut self, key: &[u8], value: &[u8], ctx: &ProcessorContext) {
        self.state.restore(key, value, ctx, &self.op);
    }

    fn finish_snapshot_restore(&mut self, _ctx: &ProcessorContext) {
        self.state.finish_restore(&self.op);
    }
}

//! Stateless and simple stateful transforms: map / filter / flat-map and the
//! fused stage chain produced by operator fusion (paper §3.1, Fig. 2).
//!
//! The planner fuses consecutive stateless stages into one
//! [`TransformP`] holding a chain of [`Stage`]s, so a
//! `map → filter → flatMap` pipeline costs one tasklet and zero queues
//! between the stages — "it fuses (a.k.a. operator chaining) consecutive
//! stateless operators".

use crate::item::Ts;
use crate::object::BoxedObject;
use crate::processor::{Inbox, Outbox, Processor, ProcessorContext};
use std::collections::VecDeque;
use std::sync::Arc;

/// One fused stage: receives an event, pushes zero or more events to `out`.
/// `Arc` so a supplier can hand the same immutable chain to every instance.
pub type Stage = Arc<dyn Fn(Ts, BoxedObject, &mut dyn FnMut(Ts, BoxedObject)) + Send + Sync>;

/// Build a map stage from a typed closure.
pub fn map_stage<I, O, F>(f: F) -> Stage
where
    I: 'static,
    O: Send + Clone + std::fmt::Debug + 'static,
    F: Fn(&I) -> O + Send + Sync + 'static,
{
    Arc::new(move |ts, obj, out| {
        let input = crate::object::downcast_ref::<I>(obj.as_ref());
        out(ts, crate::object::boxed(f(input)));
    })
}

/// Build a filter stage from a typed predicate.
pub fn filter_stage<I, F>(f: F) -> Stage
where
    I: 'static,
    F: Fn(&I) -> bool + Send + Sync + 'static,
{
    Arc::new(move |ts, obj, out| {
        if f(crate::object::downcast_ref::<I>(obj.as_ref())) {
            out(ts, obj);
        }
    })
}

/// Build a flat-map stage from a typed closure returning an iterator.
pub fn flat_map_stage<I, O, It, F>(f: F) -> Stage
where
    I: 'static,
    O: Send + Clone + std::fmt::Debug + 'static,
    It: IntoIterator<Item = O>,
    F: Fn(&I) -> It + Send + Sync + 'static,
{
    Arc::new(move |ts, obj, out| {
        for o in f(crate::object::downcast_ref::<I>(obj.as_ref())) {
            out(ts, crate::object::boxed(o));
        }
    })
}

/// A chain of fused stages executed as one processor.
pub struct TransformP {
    stages: Vec<Stage>,
    /// Outputs produced but not yet accepted by the outbox.
    pending: VecDeque<(Ts, BoxedObject)>,
}

impl TransformP {
    pub fn new(stages: Vec<Stage>) -> Self {
        assert!(!stages.is_empty(), "fused chain needs at least one stage");
        TransformP {
            stages,
            pending: VecDeque::new(),
        }
    }

    /// Run the full chain on one event, appending outputs to `pending`.
    // jet-analyze: allow(alloc) — per-batch scratch buffers reach steady capacity; Object clones are the fan-out semantics
    fn run_chain(&mut self, ts: Ts, obj: BoxedObject) {
        // Depth-first through the chain without recursion: a work-list of
        // (stage_index, item).
        let mut work: Vec<(usize, Ts, BoxedObject)> = vec![(0, ts, obj)];
        while let Some((idx, ts, obj)) = work.pop() {
            if idx == self.stages.len() {
                self.pending.push_back((ts, obj));
                continue;
            }
            let stage = self.stages[idx].clone();
            let mut outputs: Vec<(Ts, BoxedObject)> = Vec::new();
            stage(ts, obj, &mut |t, o| outputs.push((t, o)));
            // Preserve order: push in reverse so pop processes in order.
            for (t, o) in outputs.into_iter().rev() {
                work.push((idx + 1, t, o));
            }
        }
    }

    // jet-analyze: allow(alloc) — re-queues the unfitting tail into existing deque capacity
    fn flush_pending(&mut self, outbox: &mut Outbox) -> bool {
        while let Some((ts, obj)) = self.pending.pop_front() {
            if !outbox.offer_event(0, ts, obj.clone_object()) {
                // Put it back; clone above is wasteful only on the rare
                // full-outbox path.
                self.pending.push_front((ts, obj));
                return false;
            }
        }
        true
    }
}

impl Processor for TransformP {
    fn process(
        &mut self,
        _ordinal: usize,
        inbox: &mut Inbox,
        outbox: &mut Outbox,
        _ctx: &ProcessorContext,
    ) {
        if !self.flush_pending(outbox) {
            return;
        }
        while let Some((ts, obj)) = inbox.take() {
            self.run_chain(ts, obj);
            if !self.flush_pending(outbox) {
                return;
            }
        }
    }

    fn complete(&mut self, outbox: &mut Outbox, _ctx: &ProcessorContext) -> bool {
        self.flush_pending(outbox)
    }
}

/// Replicates every input event to *all* output edges. The pipeline
/// compiler inserts one when a stage has several downstream consumers
/// (fan-out), since ordinary processors emit to ordinal 0 only.
pub struct FanOutP;

impl Processor for FanOutP {
    // jet-analyze: allow(panic) — fan-out target count is fixed at wiring; the expect is a wiring invariant
    fn process(
        &mut self,
        _ordinal: usize,
        inbox: &mut Inbox,
        outbox: &mut Outbox,
        _ctx: &ProcessorContext,
    ) {
        while let Some((ts, _)) = inbox.peek() {
            let ts = *ts;
            if !outbox.has_room_all() {
                return;
            }
            let (_, obj) = inbox.take().expect("peeked");
            let ok = outbox.broadcast(crate::item::Item::Event { ts, obj });
            debug_assert!(ok);
        }
    }
}

/// State transition of a stateful map: `(state, event) -> optional output`.
type StepFn<S, I, O> = Arc<dyn Fn(&mut S, &I) -> Option<O> + Send + Sync>;

/// Keyed stateful map (Jet's `mapStateful`): per-key state threaded through
/// a transition function. State lives in a HashMap and is snapshotted —
/// the building block of the "Stateful AI" / chatbot automaton use case
/// (§6).
pub struct StatefulMapP<K, S, I, O> {
    key_fn: Arc<dyn Fn(&I) -> K + Send + Sync>,
    step: StepFn<S, I, O>,
    create: Arc<dyn Fn() -> S + Send + Sync>,
    state: std::collections::HashMap<K, S>,
    pending: VecDeque<(Ts, O)>,
}

impl<K, S, I, O> StatefulMapP<K, S, I, O>
where
    K: crate::processors::window::WindowKey,
    S: crate::state::Snap + Send + 'static,
    I: 'static,
    O: Send + Clone + std::fmt::Debug + 'static,
{
    pub fn new(
        key_fn: impl Fn(&I) -> K + Send + Sync + 'static,
        create: impl Fn() -> S + Send + Sync + 'static,
        step: impl Fn(&mut S, &I) -> Option<O> + Send + Sync + 'static,
    ) -> Self {
        StatefulMapP {
            key_fn: Arc::new(key_fn),
            step: Arc::new(step),
            create: Arc::new(create),
            state: std::collections::HashMap::new(),
            pending: VecDeque::new(),
        }
    }

    // jet-analyze: allow(alloc) — re-queues the unfitting tail into existing deque capacity
    fn flush_pending(&mut self, outbox: &mut Outbox) -> bool {
        while let Some((ts, o)) = self.pending.pop_front() {
            if !outbox.offer_event(0, ts, crate::object::boxed(o.clone())) {
                self.pending.push_front((ts, o));
                return false;
            }
        }
        true
    }
}

impl<K, S, I, O> Processor for StatefulMapP<K, S, I, O>
where
    K: crate::processors::window::WindowKey,
    S: crate::state::Snap + Send + 'static,
    I: 'static,
    O: Send + Clone + std::fmt::Debug + 'static,
{
    // jet-analyze: allow(alloc) — keyed state grows with key cardinality, amortized per batch
    fn process(
        &mut self,
        _ordinal: usize,
        inbox: &mut Inbox,
        outbox: &mut Outbox,
        _ctx: &ProcessorContext,
    ) {
        if !self.flush_pending(outbox) {
            return;
        }
        while let Some((ts, obj)) = inbox.take() {
            let input = crate::object::downcast_ref::<I>(obj.as_ref());
            let key = (self.key_fn)(input);
            let state = self.state.entry(key).or_insert_with(|| (self.create)());
            if let Some(out) = (self.step)(state, input) {
                self.pending.push_back((ts, out));
            }
            if !self.flush_pending(outbox) {
                return;
            }
        }
    }

    fn complete(&mut self, outbox: &mut Outbox, _ctx: &ProcessorContext) -> bool {
        self.flush_pending(outbox)
    }

    fn save_snapshot(&mut self, _id: u64, outbox: &mut Outbox, _ctx: &ProcessorContext) -> bool {
        for (k, s) in &self.state {
            outbox.offer_snapshot(k.to_bytes(), s.to_bytes());
        }
        true
    }

    fn restore_from_snapshot(&mut self, key: &[u8], value: &[u8], ctx: &ProcessorContext) {
        let k = K::from_bytes(key).expect("corrupt stateful-map key");
        if !ctx.owns_key_hash(jet_util::seq::hash_of(&k)) {
            return;
        }
        let s = S::from_bytes(value).expect("corrupt stateful-map state");
        self.state.insert(k, s);
    }
}

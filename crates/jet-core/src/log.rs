//! Minimal rate-limited logging facade for hot paths.
//!
//! Worker loops need to warn about misbehaving tasklets (a cooperative
//! `call()` overrunning its budget, §3.2) without flooding stderr at
//! call frequency. [`RateLimitedLog`] emits at most one message per
//! configured interval; everything in between is counted as suppressed so
//! observability still sees how often the condition fired.
//!
//! There is deliberately no global logger and no formatting on the
//! suppressed path: callers pass a closure that is only invoked when the
//! message actually goes out.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Never-emitted sentinel for `last_emit_nanos`.
const NEVER: u64 = u64::MAX;

type Sink = Box<dyn Fn(&str) + Send + Sync>;

/// A single rate-limited warning channel. Cheap to share via `Arc`; the
/// suppressed path is one `Instant::now()` plus two atomic ops.
pub struct RateLimitedLog {
    interval_nanos: u64,
    start: Instant,
    last_emit_nanos: AtomicU64,
    emitted: AtomicU64,
    suppressed: AtomicU64,
    sink: Mutex<Option<Sink>>,
}

impl RateLimitedLog {
    pub fn new(interval: Duration) -> Self {
        RateLimitedLog {
            interval_nanos: interval.as_nanos() as u64,
            start: Instant::now(),
            last_emit_nanos: AtomicU64::new(NEVER),
            emitted: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
            sink: Mutex::new(None),
        }
    }

    /// Redirect output (tests capture warnings this way). Default: stderr.
    pub fn set_sink(&self, sink: impl Fn(&str) + Send + Sync + 'static) {
        *self.sink.lock() = Some(Box::new(sink));
    }

    /// Emit `message()` if the interval since the last emission has passed
    /// (the first call always emits). Returns whether it was emitted.
    // jet-analyze: allow(block, instant) — the elapsed check is the rate limiter itself; the lock and message fire at most once per window
    pub fn warn(&self, message: impl FnOnce() -> String) -> bool {
        let now = self.start.elapsed().as_nanos() as u64;
        let mut last = self.last_emit_nanos.load(Ordering::Relaxed);
        loop {
            let due = last == NEVER || now.saturating_sub(last) >= self.interval_nanos;
            if !due {
                self.suppressed.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            // Claim the slot; on a race the winner emits and we re-check.
            match self.last_emit_nanos.compare_exchange(
                last,
                now,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => last = actual,
            }
        }
        self.emitted.fetch_add(1, Ordering::Relaxed);
        let text = message();
        match &*self.sink.lock() {
            Some(sink) => sink(&text),
            None => eprintln!("{text}"),
        }
        true
    }

    /// Messages actually written out.
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Messages dropped by rate limiting since creation.
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn first_warning_emits_then_suppresses_within_interval() {
        let log = RateLimitedLog::new(Duration::from_secs(3600));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        log.set_sink(move |m| seen2.lock().push(m.to_string()));
        assert!(log.warn(|| "first".into()));
        for _ in 0..100 {
            assert!(!log.warn(|| "later".into()));
        }
        assert_eq!(log.emitted(), 1);
        assert_eq!(log.suppressed(), 100);
        assert_eq!(&*seen.lock(), &["first".to_string()]);
    }

    #[test]
    fn emits_again_after_interval_passes() {
        let log = RateLimitedLog::new(Duration::from_millis(10));
        log.set_sink(|_| {});
        assert!(log.warn(|| "a".into()));
        std::thread::sleep(Duration::from_millis(20));
        assert!(log.warn(|| "b".into()));
        assert_eq!(log.emitted(), 2);
    }

    #[test]
    fn concurrent_warns_emit_once_per_interval() {
        let log = Arc::new(RateLimitedLog::new(Duration::from_secs(3600)));
        log.set_sink(|_| {});
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let log = log.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        log.warn(|| "x".into());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.emitted(), 1);
        assert_eq!(log.suppressed(), 8 * 1000 - 1);
    }
}

//! The `Processor` abstraction: custom logic of one DAG vertex (paper §3.2).
//!
//! "Each processor includes an inbox of input records to be processed and an
//! outbox of output records to be dispatched downstream. A tasklet manages
//! the processor's inbox and outbox, its state, and its inbound and outbound
//! queues."
//!
//! The contract is cooperative and non-blocking throughout:
//!
//! * `process` consumes what it can from the inbox and may stop early if the
//!   outbox fills up; unconsumed items are re-offered on the next timeslice.
//! * every `-> bool` method means "am I done?" — returning `false` yields
//!   the core and the tasklet will call again later.
//! * processors never block, never sleep, and never do unbounded work in
//!   one call; that is what keeps every tasklet timeslice under the
//!   millisecond budget the paper's p99.99 target requires.

use crate::item::{Item, Ts};
use crate::object::BoxedObject;
use jet_util::clock::SharedClock;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Processing guarantee of a job (§4.4–4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Guarantee {
    /// No snapshots; rely on active-active replication or accept loss (§4.6).
    #[default]
    None,
    /// Barriers are forwarded without aligning input channels.
    AtLeastOnce,
    /// Input channels block after their barrier until all inputs align.
    ExactlyOnce,
}

/// Immutable per-processor-instance metadata handed to every callback.
pub struct ProcessorContext {
    /// Vertex name this processor implements.
    pub vertex: String,
    /// Index of this instance among all parallel instances of the vertex
    /// across the whole cluster.
    pub global_index: usize,
    /// Total number of parallel instances of the vertex across the cluster.
    pub total_parallelism: usize,
    /// Member this instance runs on.
    pub member: u32,
    /// The engine clock (wall or virtual).
    pub clock: SharedClock,
    /// Processing guarantee of the job.
    pub guarantee: Guarantee,
    /// Cooperative cancellation: sources treat this as end-of-stream.
    pub cancelled: Arc<AtomicBool>,
    /// Grid partition count (key routing space, §4.1).
    pub partition_count: u32,
    /// `owned_partitions[p]` is true iff partitioned input routed by the
    /// engine delivers partition `p` to *this* instance. Used to filter
    /// snapshot records on restore (state must land with its partition).
    pub owned_partitions: Arc<Vec<bool>>,
}

impl ProcessorContext {
    pub fn is_cancelled(&self) -> bool {
        // ordering: Acquire — pairs with the SeqCst (release-side) store in
        // `ExecutionHandle::cancel`, so everything the canceller did before
        // cancelling is visible to a source that observes the flag. A
        // Relaxed load here paired that store with nothing.
        self.cancelled.load(Ordering::Acquire)
    }

    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// Does this instance own the partition of a key with stable hash `h`?
    pub fn owns_key_hash(&self, h: u64) -> bool {
        let p = jet_util::seq::bucket_of(h, self.partition_count) as usize;
        self.owned_partitions.get(p).copied().unwrap_or(false)
    }

    /// Partition of a key hash.
    pub fn partition_of_hash(&self, h: u64) -> u32 {
        jet_util::seq::bucket_of(h, self.partition_count)
    }
}

/// Batch of input events handed to `process`. Items not taken remain for the
/// next call.
#[derive(Default)]
pub struct Inbox {
    items: VecDeque<(Ts, BoxedObject)>,
}

impl Inbox {
    pub fn new() -> Self {
        Inbox {
            items: VecDeque::new(),
        }
    }

    // jet-analyze: allow(alloc) — inbox deque reaches steady-state capacity after warm-up
    pub fn push(&mut self, ts: Ts, obj: BoxedObject) {
        self.items.push_back((ts, obj));
    }

    /// Look at the head without consuming.
    pub fn peek(&self) -> Option<&(Ts, BoxedObject)> {
        self.items.front()
    }

    /// Take the head item.
    pub fn take(&mut self) -> Option<(Ts, BoxedObject)> {
        self.items.pop_front()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drain all items, invoking `f` for each; `f` returning `false` stops
    /// the drain leaving the remaining items (used when the outbox fills).
    pub fn drain_while(&mut self, mut f: impl FnMut(Ts, BoxedObject) -> bool) {
        while let Some((ts, obj)) = self.items.pop_front() {
            if !f(ts, obj) {
                return;
            }
        }
    }

    /// Fast path for consumers that always take everything: drains the whole
    /// inbox in one pass with no per-item continue/stop branch — the backing
    /// deque is consumed via a bulk `drain(..)`, which walks its (at most
    /// two) contiguous slices directly instead of re-checking the front each
    /// iteration the way a `take()` loop does.
    pub fn drain_all(&mut self, mut f: impl FnMut(Ts, BoxedObject)) {
        for (ts, obj) in self.items.drain(..) {
            f(ts, obj);
        }
    }
}

/// Per-edge output buffers plus the snapshot staging area.
///
/// The outbox has a bounded batch size per edge; `offer` returning `false`
/// is the backpressure signal that propagates queue fullness into the
/// processor without blocking (§3.3, local case).
pub struct Outbox {
    bufs: Vec<VecDeque<Item>>,
    batch_limit: usize,
    snapshot_buf: Vec<(Vec<u8>, Vec<u8>)>,
    /// True while the downstream queues still hold back earlier output; the
    /// tasklet sets this and the processor sees `offer` fail immediately.
    blocked: bool,
    /// Monotone count of events accepted into the buffers (broadcast counts
    /// once per edge). The tasklet diffs this after each `call()` to feed
    /// `TaskletCounters::events_out` — emission happens here, not at the
    /// queues, so this is the one place that sees every event exactly once.
    events_queued: u64,
}

impl Outbox {
    pub fn new(out_edges: usize, batch_limit: usize) -> Self {
        Outbox {
            bufs: (0..out_edges).map(|_| VecDeque::new()).collect(),
            batch_limit: batch_limit.max(1),
            snapshot_buf: Vec::new(),
            blocked: false,
            events_queued: 0,
        }
    }

    pub fn edge_count(&self) -> usize {
        self.bufs.len()
    }

    /// Offer an item to output edge `ordinal`. `false` = buffer full, retry
    /// in the next timeslice.
    #[inline]
    // jet-analyze: allow(alloc) — outbox bucket reaches steady-state capacity after warm-up
    pub fn offer(&mut self, ordinal: usize, item: Item) -> bool {
        if self.blocked || self.bufs[ordinal].len() >= self.batch_limit {
            return false;
        }
        if matches!(item, Item::Event { .. }) {
            self.events_queued += 1;
        }
        self.bufs[ordinal].push_back(item);
        true
    }

    /// Offer an event to edge `ordinal`.
    #[inline]
    pub fn offer_event(&mut self, ordinal: usize, ts: Ts, obj: BoxedObject) -> bool {
        self.offer(ordinal, Item::Event { ts, obj })
    }

    /// Offer an item to *all* output edges (watermarks, barriers, done
    /// flags, broadcast events). All-or-nothing; vacuously succeeds for a
    /// sink with no output edges.
    // jet-analyze: allow(alloc) — outbox buckets reach steady-state capacity after warm-up
    pub fn broadcast(&mut self, item: Item) -> bool {
        if self.blocked || self.bufs.iter().any(|b| b.len() >= self.batch_limit) {
            return false;
        }
        let n = self.bufs.len();
        if matches!(item, Item::Event { .. }) {
            self.events_queued += n as u64;
        }
        for (i, buf) in self.bufs.iter_mut().enumerate() {
            if i + 1 == n {
                // Move, don't clone, into the last buffer. Iteration order is
                // stable so this is safe even for a single edge.
                buf.push_back(item);
                break;
            } else {
                buf.push_back(item.clone());
            }
        }
        true
    }

    /// Room available on edge `ordinal` right now?
    pub fn has_room(&self, ordinal: usize) -> bool {
        !self.blocked && self.bufs[ordinal].len() < self.batch_limit
    }

    /// Room available on every edge?
    pub fn has_room_all(&self) -> bool {
        !self.blocked && self.bufs.iter().all(|b| b.len() < self.batch_limit)
    }

    /// Stage one state record for the in-flight snapshot (§4.4). Unbounded:
    /// snapshot pressure is bounded by state size, not stream rate.
    // jet-analyze: allow(alloc) — snapshot records travel with the epoch barrier, not the per-event path
    pub fn offer_snapshot(&mut self, key: Vec<u8>, value: Vec<u8>) -> bool {
        self.snapshot_buf.push((key, value));
        true
    }

    // --- tasklet-side API ---

    /// Block/unblock all offers (used by executors that must pause a
    /// processor's output, e.g. during suspend).
    pub fn set_blocked(&mut self, blocked: bool) {
        self.blocked = blocked;
    }

    pub(crate) fn buf_mut(&mut self, ordinal: usize) -> &mut VecDeque<Item> {
        &mut self.bufs[ordinal]
    }

    pub(crate) fn take_snapshot_records(&mut self) -> Vec<(Vec<u8>, Vec<u8>)> {
        std::mem::take(&mut self.snapshot_buf)
    }

    pub(crate) fn is_fully_flushed(&self) -> bool {
        self.bufs.iter().all(|b| b.is_empty())
    }

    /// Total buffered items (diagnostics).
    pub fn buffered(&self) -> usize {
        self.bufs.iter().map(|b| b.len()).sum()
    }

    /// Monotone count of events ever accepted by `offer`/`broadcast`.
    pub fn events_queued_total(&self) -> u64 {
        self.events_queued
    }
}

/// Custom logic of one DAG vertex instance. See the module docs for the
/// cooperative contract.
#[allow(unused_variables)]
pub trait Processor: Send {
    /// One-time initialization after wiring, before any input.
    fn init(&mut self, ctx: &ProcessorContext) {}

    /// Consume items from `inbox` (which arrived on input edge `ordinal`)
    /// and emit to `outbox`. May leave items in the inbox when the outbox
    /// has no room.
    fn process(
        &mut self,
        ordinal: usize,
        inbox: &mut Inbox,
        outbox: &mut Outbox,
        ctx: &ProcessorContext,
    );

    /// The coalesced watermark advanced to `wm`. Return `true` when fully
    /// handled (all resulting output fit in the outbox). The default
    /// forwards the watermark to all output edges.
    fn try_process_watermark(
        &mut self,
        wm: Ts,
        outbox: &mut Outbox,
        ctx: &ProcessorContext,
    ) -> bool {
        outbox.broadcast(Item::Watermark(wm))
    }

    /// Called once per tasklet quantum (before input is drained) so the
    /// processor can advance background work a bounded chunk at a time —
    /// amortized frame eviction, resumed window emission, deferred
    /// watermark forwarding. Return `true` when progress was made (keeps
    /// the worker out of its idle backoff while work remains).
    fn tick(&mut self, outbox: &mut Outbox, ctx: &ProcessorContext) -> bool {
        false
    }

    /// Keyed-state health probe, when this processor maintains keyed state.
    /// The wiring layer registers the probe's numbers as
    /// `jet_state_resident_bytes` / `jet_state_keys_records` gauges and the
    /// `jet_window_late_events_total` counter.
    fn state_probe(&self) -> Option<std::sync::Arc<crate::state::StateProbe>> {
        None
    }

    /// Input edge `ordinal` is exhausted. Return `true` when done reacting.
    fn complete_edge(
        &mut self,
        ordinal: usize,
        outbox: &mut Outbox,
        ctx: &ProcessorContext,
    ) -> bool {
        true
    }

    /// All inputs exhausted (or: this is a source). Called repeatedly until
    /// it returns `true`. A streaming source returns `false` forever (until
    /// cancellation).
    fn complete(&mut self, outbox: &mut Outbox, ctx: &ProcessorContext) -> bool {
        true
    }

    /// Stage this processor's state into the outbox's snapshot area. Called
    /// repeatedly until `true` (state can be saved incrementally).
    /// `snapshot_id` identifies the checkpoint round — transactional sinks
    /// key their prepared transactions by it (§4.5).
    fn save_snapshot(
        &mut self,
        snapshot_id: u64,
        outbox: &mut Outbox,
        ctx: &ProcessorContext,
    ) -> bool {
        true
    }

    /// One state record from the snapshot being restored. The planner
    /// delivers *all* records of the vertex to *every* instance; keyed
    /// processors keep only the keys they own (`ctx.owns_key_hash`), which
    /// makes restore correct under rescaling (§4.3).
    fn restore_from_snapshot(&mut self, key: &[u8], value: &[u8], ctx: &ProcessorContext) {}

    /// All snapshot records delivered.
    fn finish_snapshot_restore(&mut self, ctx: &ProcessorContext) {}

    /// Cooperative processors run on shared worker threads; non-cooperative
    /// ones (blocking connectors, §3.1) get a dedicated thread.
    fn is_cooperative(&self) -> bool {
        true
    }
}

/// Shared constructor type: builds the processor for global instance `i`.
pub type ProcessorSupplier = Arc<dyn Fn(usize) -> Box<dyn Processor> + Send + Sync>;

/// Helper to build a supplier from a closure.
pub fn supplier<F>(f: F) -> ProcessorSupplier
where
    F: Fn(usize) -> Box<dyn Processor> + Send + Sync + 'static,
{
    Arc::new(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::boxed;

    #[test]
    fn inbox_fifo_and_drain_while() {
        let mut inbox = Inbox::new();
        for i in 0..5i64 {
            inbox.push(i, boxed(i));
        }
        assert_eq!(inbox.len(), 5);
        let mut seen = Vec::new();
        inbox.drain_while(|ts, _| {
            seen.push(ts);
            ts < 2 // stop after consuming ts == 2
        });
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(inbox.len(), 2, "remaining items stay for next round");
        assert_eq!(inbox.peek().unwrap().0, 3);
        assert_eq!(inbox.take().unwrap().0, 3);
    }

    #[test]
    fn inbox_drain_all_preserves_fifo_order_and_empties() {
        let mut inbox = Inbox::new();
        // Force the deque to wrap so `drain(..)` covers both slices.
        for i in 0..3i64 {
            inbox.push(i, boxed(i));
        }
        inbox.take();
        inbox.take();
        for i in 3..10i64 {
            inbox.push(i, boxed(i));
        }
        let mut seen = Vec::new();
        inbox.drain_all(|ts, obj| {
            assert_eq!(crate::object::take::<i64>(obj), ts);
            seen.push(ts);
        });
        assert_eq!(seen, (2..10).collect::<Vec<_>>(), "strict FIFO order");
        assert!(inbox.is_empty(), "drain_all consumes the whole queue");
    }

    #[test]
    fn outbox_respects_batch_limit() {
        let mut ob = Outbox::new(1, 2);
        assert!(ob.offer(0, Item::Watermark(1)));
        assert!(ob.offer(0, Item::Watermark(2)));
        assert!(!ob.offer(0, Item::Watermark(3)), "third offer must fail");
        assert!(!ob.has_room(0));
        assert_eq!(ob.buffered(), 2);
    }

    #[test]
    fn outbox_broadcast_is_all_or_nothing() {
        let mut ob = Outbox::new(2, 1);
        assert!(ob.broadcast(Item::Watermark(1)));
        assert!(!ob.broadcast(Item::Watermark(2)));
        assert_eq!(ob.buffered(), 2);
        ob.buf_mut(0).clear();
        // Edge 1 still full -> broadcast still fails.
        assert!(!ob.broadcast(Item::Watermark(2)));
    }

    #[test]
    fn outbox_blocked_rejects_everything() {
        let mut ob = Outbox::new(1, 8);
        ob.set_blocked(true);
        assert!(!ob.offer(0, Item::Done));
        assert!(!ob.broadcast(Item::Done));
        assert!(!ob.has_room_all());
        ob.set_blocked(false);
        assert!(ob.offer(0, Item::Done));
    }

    #[test]
    fn snapshot_buffer_accumulates_and_drains() {
        let mut ob = Outbox::new(1, 8);
        assert!(ob.offer_snapshot(b"k1".to_vec(), b"v1".to_vec()));
        assert!(ob.offer_snapshot(b"k2".to_vec(), b"v2".to_vec()));
        let recs = ob.take_snapshot_records();
        assert_eq!(recs.len(), 2);
        assert!(ob.take_snapshot_records().is_empty());
    }

    #[test]
    fn default_watermark_forwarding_broadcasts() {
        struct Nop;
        impl Processor for Nop {
            fn process(&mut self, _: usize, _: &mut Inbox, _: &mut Outbox, _: &ProcessorContext) {}
        }
        let mut p = Nop;
        let mut ob = Outbox::new(2, 4);
        let ctx = test_ctx();
        assert!(p.try_process_watermark(9, &mut ob, &ctx));
        assert_eq!(ob.buffered(), 2);
    }

    pub(crate) fn test_ctx() -> ProcessorContext {
        ProcessorContext {
            vertex: "test".into(),
            global_index: 0,
            total_parallelism: 1,
            member: 0,
            clock: jet_util::clock::system_clock(),
            guarantee: Guarantee::None,
            cancelled: Arc::new(AtomicBool::new(false)),
            partition_count: 271,
            owned_partitions: Arc::new(vec![true; 271]),
        }
    }
}

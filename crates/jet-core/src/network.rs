//! Distributed edges: exchange operators with adaptive receive-window flow
//! control (paper §3.3).
//!
//! "Jet uses a design very similar to the TCP/IP adaptive receive window:
//! the producer must wait for an acknowledgment from the consumer specifying
//! how many data items the producer can send. After processing item n, the
//! receiver sends a message that the sender can send up to item
//! n + receive_window. The consumer sends the acknowledgment message every
//! 100ms. [...] In stable state the receive_window contains roughly 300
//! milliseconds' worth of data."
//!
//! For every distributed edge and every (sender member, receiver member)
//! pair, the planner deploys a [`SenderTasklet`] on the sender and a
//! [`ReceiverTasklet`] on the receiver (the exchange-operator pattern of
//! Volcano [14]). The transport is in-process and clock-driven, so the same
//! code runs under the wall clock and under the simulator's virtual clock
//! with modeled link latency.

use crate::item::{Barrier, Item};
use crate::metrics::{tags, MetricsRegistry, SharedCounter, SharedGauge};
use crate::outbound::OutboundCollector;
use crate::processor::Guarantee;
use crate::tasklet::Tasklet;
use crate::trace::{TraceKind, TraceWriter};
use crate::watermark::WatermarkCoalescer;
use jet_queue::Conveyor;
use jet_util::clock::SharedClock;
use jet_util::progress::Progress;
use jet_util::rng::SimRng;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Identifies one direction of one distributed edge between two members.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId {
    pub edge: u32,
    pub from: u32,
    pub to: u32,
}

/// What flows on a channel.
#[derive(Debug)]
pub enum Packet {
    /// A batch of in-band items.
    Data(Vec<Item>),
    /// Flow control: the sender may transmit up to `grant` items in total.
    Ack { grant: u64 },
}

/// Message transport between members. Deliveries are delayed by the modeled
/// link latency against the (possibly virtual) clock.
pub trait Transport: Send + Sync {
    fn send_data(&self, channel: ChannelId, items: Vec<Item>);
    fn send_ack(&self, channel: ChannelId, grant: u64);
    fn poll_data(&self, channel: ChannelId) -> Option<Vec<Item>>;
    fn poll_ack(&self, channel: ChannelId) -> Option<u64>;

    /// Lightweight liveness traffic: member `from` pings member `to`.
    /// Heartbeats are fire-and-forget — unlike data they are genuinely lost
    /// to partitions and chaos drops (no retransmission). Default: no-op,
    /// for transports that predate failure detection.
    fn send_heartbeat(&self, _from: u32, _to: u32) {}

    /// Drain heartbeats delivered to member `to` by now: `(from, sent_at)`
    /// pairs. Default: none.
    fn poll_heartbeats(&self, _to: u32) -> Vec<(u32, u64)> {
        Vec::new()
    }
}

/// Chaos parameters for one fault window (seeded drop/extra-delay).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelChaos {
    /// Per-message drop probability in millionths. Dropped *data* batches
    /// are re-sent by the modeled reliable transport — the drop surfaces as
    /// `retransmit_delay_nanos` of extra latency, never as loss (the engine
    /// above assumes TCP). Dropped *heartbeats* are really lost.
    pub drop_millionths: u32,
    /// Uniform extra delivery jitter in `[0, max_extra_delay_nanos]`.
    pub max_extra_delay_nanos: u64,
    /// Latency cost of one modeled retransmission.
    pub retransmit_delay_nanos: u64,
}

impl ChannelChaos {
    pub fn new(drop_millionths: u32, max_extra_delay_nanos: u64) -> Self {
        ChannelChaos {
            drop_millionths,
            max_extra_delay_nanos,
            // RTO-ish: one full extra round trip at typical modeled latency.
            retransmit_delay_nanos: 1_000_000,
        }
    }
}

/// Shared fault state consulted by a fault-aware transport. One instance
/// outlives executions (partitions persist across a recovery rebuild).
///
/// Fault-free fast path: two atomics are checked before any lock is taken,
/// so a transport with no active faults pays two relaxed loads per
/// operation — detector and chaos overhead stay off the data path.
pub struct NetworkFaults {
    partitions_active: AtomicBool,
    chaos_active: AtomicBool,
    inner: Mutex<FaultState>,
    /// Heartbeats genuinely lost to partitions or chaos.
    heartbeats_dropped: AtomicU64,
    /// Data batches that took a modeled retransmit penalty.
    batches_retransmitted: AtomicU64,
}

struct FaultState {
    /// Active partitions: id -> member set split away from the rest.
    partitions: HashMap<u32, HashSet<u32>>,
    chaos: Option<ChannelChaos>,
    rng: SimRng,
}

impl NetworkFaults {
    pub fn new(seed: u64) -> Self {
        NetworkFaults {
            partitions_active: AtomicBool::new(false),
            chaos_active: AtomicBool::new(false),
            inner: Mutex::new(FaultState {
                partitions: HashMap::new(),
                chaos: None,
                rng: SimRng::new(seed),
            }),
            heartbeats_dropped: AtomicU64::new(0),
            batches_retransmitted: AtomicU64::new(0),
        }
    }

    pub fn start_partition(&self, id: u32, side: Vec<u32>) {
        let mut st = self.inner.lock();
        st.partitions.insert(id, side.into_iter().collect());
        self.partitions_active.store(true, Ordering::Release);
    }

    pub fn end_partition(&self, id: u32) {
        let mut st = self.inner.lock();
        st.partitions.remove(&id);
        self.partitions_active
            .store(!st.partitions.is_empty(), Ordering::Release);
    }

    pub fn set_chaos(&self, chaos: ChannelChaos) {
        self.inner.lock().chaos = Some(chaos);
        self.chaos_active.store(true, Ordering::Release);
    }

    pub fn clear_chaos(&self) {
        self.inner.lock().chaos = None;
        self.chaos_active.store(false, Ordering::Release);
    }

    /// Is the link between members `a` and `b` currently cut?
    // jet-analyze: allow(block) — fault-injection table: short uncontended lock outside chaos runs
    pub fn partitioned(&self, a: u32, b: u32) -> bool {
        if !self.partitions_active.load(Ordering::Acquire) {
            return false;
        }
        let st = self.inner.lock();
        st.partitions
            .values()
            .any(|side| side.contains(&a) != side.contains(&b))
    }

    /// Extra delivery delay for a data batch under the current chaos window
    /// (jitter plus any modeled retransmission). 0 when chaos is off.
    // jet-analyze: allow(block) — fault-injection table: short uncontended lock outside chaos runs
    pub fn data_delay(&self) -> u64 {
        if !self.chaos_active.load(Ordering::Acquire) {
            return 0;
        }
        let mut st = self.inner.lock();
        let Some(chaos) = st.chaos else { return 0 };
        let mut extra = if chaos.max_extra_delay_nanos > 0 {
            st.rng.below(chaos.max_extra_delay_nanos + 1)
        } else {
            0
        };
        if chaos.drop_millionths > 0 && st.rng.chance(chaos.drop_millionths) {
            self.batches_retransmitted.fetch_add(1, Ordering::Relaxed);
            extra += chaos.retransmit_delay_nanos;
        }
        extra
    }

    /// Decide the fate of a heartbeat `from -> to`: `None` = dropped,
    /// `Some(extra_delay)` = delivered with that much added latency.
    pub fn heartbeat_fate(&self, from: u32, to: u32) -> Option<u64> {
        if self.partitioned(from, to) {
            self.heartbeats_dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if !self.chaos_active.load(Ordering::Acquire) {
            return Some(0);
        }
        let mut st = self.inner.lock();
        let Some(chaos) = st.chaos else {
            return Some(0);
        };
        if chaos.drop_millionths > 0 && st.rng.chance(chaos.drop_millionths) {
            drop(st);
            self.heartbeats_dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if chaos.max_extra_delay_nanos > 0 {
            Some(st.rng.below(chaos.max_extra_delay_nanos + 1))
        } else {
            Some(0)
        }
    }

    pub fn heartbeats_dropped(&self) -> u64 {
        self.heartbeats_dropped.load(Ordering::Relaxed)
    }

    pub fn batches_retransmitted(&self) -> u64 {
        self.batches_retransmitted.load(Ordering::Relaxed)
    }
}

/// Batches in flight on one channel: (delivery deadline, payload).
type InFlight = VecDeque<(u64, Vec<Item>)>;

/// Heartbeats in flight to one member: (deliver_at, sender, sent_at).
type HeartbeatsInFlight = VecDeque<(u64, u32, u64)>;

/// In-process transport with a fixed one-way latency. Optionally
/// fault-aware: with a [`NetworkFaults`] attached, partitions park traffic
/// (delivery blocked until heal — the modeled TCP connection retransmits,
/// so nothing is lost and FIFO order holds), chaos adds seeded jitter and
/// retransmit penalties to data, and heartbeats are genuinely dropped.
pub struct InMemoryTransport {
    clock: SharedClock,
    latency_nanos: u64,
    data: Mutex<HashMap<ChannelId, InFlight>>,
    acks: Mutex<HashMap<ChannelId, VecDeque<(u64, u64)>>>,
    /// receiver member -> heartbeats awaiting delivery
    heartbeats: Mutex<HashMap<u32, HeartbeatsInFlight>>,
    faults: Option<Arc<NetworkFaults>>,
}

impl InMemoryTransport {
    pub fn new(clock: SharedClock, latency_nanos: u64) -> Self {
        InMemoryTransport {
            clock,
            latency_nanos,
            data: Mutex::new(HashMap::new()),
            acks: Mutex::new(HashMap::new()),
            heartbeats: Mutex::new(HashMap::new()),
            faults: None,
        }
    }

    /// Attach shared fault state (see [`NetworkFaults`]). Without it the
    /// transport behaves exactly as before and pays no fault overhead.
    pub fn with_faults(mut self, faults: Arc<NetworkFaults>) -> Self {
        self.faults = Some(faults);
        self
    }

    pub fn latency_nanos(&self) -> u64 {
        self.latency_nanos
    }

    /// A channel crossing an active partition delivers nothing until heal.
    fn blocked(&self, from: u32, to: u32) -> bool {
        self.faults
            .as_ref()
            .map(|f| f.partitioned(from, to))
            .unwrap_or(false)
    }
}

impl Transport for InMemoryTransport {
    // jet-analyze: allow(alloc, block) — in-memory NIC stand-in: the lock models the network boundary; queues reach steady capacity
    fn send_data(&self, channel: ChannelId, items: Vec<Item>) {
        let extra = self.faults.as_ref().map(|f| f.data_delay()).unwrap_or(0);
        let at = self.clock.now_nanos() + self.latency_nanos + extra;
        let mut data = self.data.lock();
        let q = data.entry(channel).or_default();
        // Chaos jitter must not reorder a FIFO byte stream: delivery
        // deadlines are monotone per channel (a delayed batch delays its
        // successors, exactly like TCP head-of-line blocking).
        let at = q.back().map(|(prev, _)| at.max(*prev)).unwrap_or(at);
        q.push_back((at, items));
    }

    // jet-analyze: allow(alloc, block) — in-memory NIC stand-in: the lock models the network boundary; queues reach steady capacity
    fn send_ack(&self, channel: ChannelId, grant: u64) {
        let at = self.clock.now_nanos() + self.latency_nanos;
        self.acks
            .lock()
            .entry(channel)
            .or_default()
            .push_back((at, grant));
    }

    // jet-analyze: allow(block, panic) — in-memory NIC stand-in: the lock models the network boundary; front checked under the same lock
    fn poll_data(&self, channel: ChannelId) -> Option<Vec<Item>> {
        if self.blocked(channel.from, channel.to) {
            return None;
        }
        let now = self.clock.now_nanos();
        let mut data = self.data.lock();
        let q = data.get_mut(&channel)?;
        if q.front().map(|(at, _)| *at <= now).unwrap_or(false) {
            Some(q.pop_front().expect("front checked").1)
        } else {
            None
        }
    }

    // jet-analyze: allow(block, panic) — in-memory NIC stand-in: the lock models the network boundary; front checked under the same lock
    fn poll_ack(&self, channel: ChannelId) -> Option<u64> {
        // Acks flow receiver -> sender: the partition check must mirror
        // that direction (`to` is the data receiver originating the ack).
        if self.blocked(channel.to, channel.from) {
            return None;
        }
        let now = self.clock.now_nanos();
        let mut acks = self.acks.lock();
        let q = acks.get_mut(&channel)?;
        if q.front().map(|(at, _)| *at <= now).unwrap_or(false) {
            Some(q.pop_front().expect("front checked").1)
        } else {
            None
        }
    }

    fn send_heartbeat(&self, from: u32, to: u32) {
        let extra = match self.faults.as_ref() {
            Some(f) => match f.heartbeat_fate(from, to) {
                Some(extra) => extra,
                None => return, // lost
            },
            None => 0,
        };
        let now = self.clock.now_nanos();
        self.heartbeats.lock().entry(to).or_default().push_back((
            now + self.latency_nanos + extra,
            from,
            now,
        ));
    }

    fn poll_heartbeats(&self, to: u32) -> Vec<(u32, u64)> {
        let now = self.clock.now_nanos();
        let mut hb = self.heartbeats.lock();
        let Some(q) = hb.get_mut(&to) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        // Jitter can reorder heartbeats (they are independent datagrams),
        // so scan the whole queue instead of gating on the front.
        let mut i = 0;
        while i < q.len() {
            if q[i].0 <= now {
                let (_, from, sent) = q.remove(i).expect("index checked");
                out.push((from, sent));
            } else {
                i += 1;
            }
        }
        out
    }
}

/// Instruments for one direction of one distributed edge, tagged
/// `edge`/`from`/`to`. The sender side feeds `jet_channel_items_sent_total`
/// and `jet_channel_bytes_sent_total`; the receiver side feeds
/// `jet_channel_receive_window` (the grant size last advertised) and
/// `jet_channel_watermark_lag_nanos` (clock time minus the newest watermark
/// forwarded downstream; `-1` means the channel went idle or terminal, so a
/// stale lag is never reported for a channel that stopped flowing). Build one
/// per side against the owning member's registry — sender and receiver live
/// on different members.
#[derive(Clone)]
pub struct ChannelMetrics {
    items_sent: SharedCounter,
    bytes_sent: SharedCounter,
    receive_window: SharedGauge,
    watermark_lag: SharedGauge,
}

impl ChannelMetrics {
    fn channel_tags(channel: ChannelId) -> crate::metrics::Tags {
        tags(&[
            ("edge", &channel.edge.to_string()),
            ("from", &channel.from.to_string()),
            ("to", &channel.to.to_string()),
        ])
    }

    /// Register the sender-side instruments on `registry`; the receiver-side
    /// handles stay local (unregistered) no-ops.
    pub fn sender_side(registry: &MetricsRegistry, channel: ChannelId) -> Self {
        let t = Self::channel_tags(channel);
        ChannelMetrics {
            items_sent: registry.counter("jet_channel_items_sent_total", t.clone()),
            bytes_sent: registry.counter("jet_channel_bytes_sent_total", t),
            receive_window: SharedGauge::new(),
            watermark_lag: SharedGauge::new(),
        }
    }

    /// Register the receiver-side instruments on `registry`; the sender-side
    /// handles stay local (unregistered) no-ops.
    pub fn receiver_side(registry: &MetricsRegistry, channel: ChannelId) -> Self {
        let t = Self::channel_tags(channel);
        ChannelMetrics {
            items_sent: SharedCounter::new(),
            bytes_sent: SharedCounter::new(),
            receive_window: registry.gauge("jet_channel_receive_window", t.clone()),
            watermark_lag: registry.gauge("jet_channel_watermark_lag_nanos", t),
        }
    }

    pub fn items_sent(&self) -> u64 {
        self.items_sent.get()
    }

    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.get()
    }

    pub fn receive_window(&self) -> i64 {
        self.receive_window.get()
    }

    pub fn watermark_lag_nanos(&self) -> i64 {
        self.watermark_lag.get()
    }
}

/// Gauge value marking a channel whose watermark stream went idle or
/// terminal — distinguishable from every real lag, which is >= 0.
pub const WATERMARK_LAG_IDLE: i64 = -1;

/// Flow-control constants (paper values).
pub const ACK_INTERVAL_NANOS: u64 = 100_000_000; // 100 ms
/// Window target as a multiple of the per-ack-interval throughput: 300 ms
/// of data = 3 ack intervals.
pub const WINDOW_INTERVALS: u64 = 3;
/// Floor so a cold stream can start flowing before the first rate estimate.
pub const MIN_WINDOW: u64 = 1024;

/// Sender side of one distributed-edge channel: merges the local producers'
/// lanes (coalescing watermarks, aligning barriers, joining done-flags) into
/// one ordered stream and ships it under the receive-window's grant.
pub struct SenderTasklet {
    name: String,
    channel: ChannelId,
    transport: Arc<dyn Transport>,
    input: Conveyor<Item>,
    guarantee: Guarantee,
    coalescer: WatermarkCoalescer,
    lane_done: Vec<bool>,
    done_count: usize,
    barrier_seen: Vec<bool>,
    current_barrier: Option<Barrier>,
    sent: u64,
    grant: u64,
    batch: Vec<Item>,
    max_batch: usize,
    finished: bool,
    metrics: Option<ChannelMetrics>,
    trace: TraceWriter,
    trace_name: u32,
    trace_clock: Option<SharedClock>,
}

impl SenderTasklet {
    pub fn new(
        channel: ChannelId,
        transport: Arc<dyn Transport>,
        input: Conveyor<Item>,
        guarantee: Guarantee,
    ) -> Self {
        let lanes = input.lane_count();
        SenderTasklet {
            name: format!(
                "sender-e{}-m{}->m{}",
                channel.edge, channel.from, channel.to
            ),
            channel,
            transport,
            input,
            guarantee,
            coalescer: WatermarkCoalescer::new(lanes),
            lane_done: vec![false; lanes],
            done_count: 0,
            barrier_seen: vec![false; lanes],
            current_barrier: None,
            sent: 0,
            grant: MIN_WINDOW,
            batch: Vec::new(),
            max_batch: 256,
            finished: false,
            metrics: None,
            trace: TraceWriter::disabled(),
            trace_name: 0,
            trace_clock: None,
        }
    }

    /// Attach channel instruments (built via [`ChannelMetrics::sender_side`]).
    pub fn with_metrics(mut self, metrics: ChannelMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attach an execution-trace writer; shipped batches record `net-send`
    /// instants carrying the payload bytes.
    pub fn with_trace(mut self, writer: TraceWriter, clock: SharedClock) -> Self {
        self.trace_name = writer.intern(&self.name);
        self.trace = writer;
        self.trace_clock = Some(clock);
        self
    }

    fn aligned(&self) -> bool {
        self.current_barrier.is_some()
            && (0..self.lane_done.len()).all(|l| self.barrier_seen[l] || self.lane_done[l])
    }

    // jet-analyze: allow(alloc) — sender frame buffer grows to steady capacity during warm-up
    fn push(&mut self, item: Item) {
        self.batch.push(item);
        self.sent += 1;
    }

    fn ship(&mut self) -> bool {
        if self.batch.is_empty() {
            return false;
        }
        let need_bytes = self.metrics.is_some() || self.trace.enabled();
        let bytes: u64 = if need_bytes {
            self.batch.iter().map(|i| i.wire_size() as u64).sum()
        } else {
            0
        };
        if let Some(m) = &self.metrics {
            m.items_sent.add(self.batch.len() as u64);
            m.bytes_sent.add(bytes);
        }
        if self.trace.enabled() {
            let ts = self
                .trace_clock
                .as_ref()
                .map(|c| c.now_nanos())
                .unwrap_or(0);
            self.trace
                .record(TraceKind::NetSend, ts, 0, self.trace_name, bytes as i64);
        }
        self.transport
            .send_data(self.channel, std::mem::take(&mut self.batch));
        true
    }
}

impl Tasklet for SenderTasklet {
    // jet-analyze: allow(alloc, panic) — sender frame buffer reaches steady capacity; the in-flight expect is guarded by the accounting above
    fn call(&mut self) -> Progress {
        if self.finished {
            return Progress::Done;
        }
        let mut worked = false;
        while let Some(grant) = self.transport.poll_ack(self.channel) {
            if grant > self.grant {
                self.grant = grant;
                worked = true;
            }
        }
        let exactly_once = self.guarantee == Guarantee::ExactlyOnce;
        let lanes = self.lane_done.len();
        'outer: for lane in 0..lanes {
            if self.lane_done[lane] {
                continue;
            }
            if exactly_once && self.current_barrier.is_some() && self.barrier_seen[lane] {
                continue; // aligned lane blocks until all lanes deliver
            }
            loop {
                if self.sent >= self.grant || self.batch.len() >= self.max_batch {
                    break 'outer; // window exhausted or batch full
                }
                // Fast path: move the whole run of queued events into the
                // outgoing frame with one bulk drain (single atomic publish
                // on the lane, one `sent` update for the run).
                let budget = (self.grant - self.sent)
                    .min((self.max_batch - self.batch.len()) as u64)
                    as usize;
                let batch = &mut self.batch;
                let moved =
                    self.input
                        .drain_lane_batch_while(lane, budget, Item::is_event, |item| {
                            batch.push(item)
                        });
                if moved > 0 {
                    self.sent += moved as u64;
                    worked = true;
                    continue;
                }
                // Control items carry per-item protocol state (coalescing,
                // alignment, done-counting), so they stay item-granular.
                // single-item: barriers/watermarks/done need individual handling
                let Some(item) = self.input.poll_lane(lane) else {
                    break;
                };
                worked = true;
                match item {
                    Item::Event { .. } => self.push(item),
                    Item::Watermark(w) => {
                        if let Some(coalesced) = self.coalescer.observe(lane, w) {
                            self.push(Item::Watermark(coalesced));
                        }
                    }
                    Item::Barrier(b) => {
                        if self.current_barrier.is_none() {
                            self.current_barrier = Some(b);
                        }
                        self.barrier_seen[lane] = true;
                        if self.aligned() {
                            self.push(Item::Barrier(b));
                            self.current_barrier = None;
                            self.barrier_seen.iter_mut().for_each(|s| *s = false);
                        }
                        if exactly_once {
                            break; // stop draining this lane
                        }
                    }
                    Item::Done => {
                        self.lane_done[lane] = true;
                        self.done_count += 1;
                        if let Some(coalesced) = self.coalescer.channel_done(lane) {
                            self.push(Item::Watermark(coalesced));
                        }
                        // A done lane counts as aligned.
                        if self.aligned() {
                            let b = self.current_barrier.take().expect("aligned with barrier");
                            self.push(Item::Barrier(b));
                            self.barrier_seen.iter_mut().for_each(|s| *s = false);
                        }
                        if self.done_count == lanes {
                            self.push(Item::Done);
                            self.ship();
                            self.finished = true;
                            return Progress::Done;
                        }
                        break;
                    }
                }
            }
        }
        worked |= self.ship();
        Progress::from_worked(worked)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Receiver side: unpacks arriving batches, routes them into the local
/// consumers' conveyor lanes, and grants window credit every 100 ms sized to
/// ~300 ms of the observed processing rate.
pub struct ReceiverTasklet {
    name: String,
    channel: ChannelId,
    transport: Arc<dyn Transport>,
    clock: SharedClock,
    output: OutboundCollector,
    /// Items delivered to local consumers (the "processed n" of the paper's
    /// protocol).
    processed: u64,
    /// Items buffered locally, not yet accepted by consumer queues.
    pending: VecDeque<Item>,
    last_ack_at: u64,
    processed_at_last_ack: u64,
    finished: bool,
    done_forwarded: bool,
    /// Fixed window override (ablation A4); None = adaptive.
    fixed_window: Option<u64>,
    metrics: Option<ChannelMetrics>,
    trace: TraceWriter,
    trace_name: u32,
}

impl ReceiverTasklet {
    pub fn new(
        channel: ChannelId,
        transport: Arc<dyn Transport>,
        clock: SharedClock,
        output: OutboundCollector,
    ) -> Self {
        ReceiverTasklet {
            name: format!(
                "receiver-e{}-m{}->m{}",
                channel.edge, channel.from, channel.to
            ),
            channel,
            transport,
            clock,
            output,
            processed: 0,
            pending: VecDeque::new(),
            last_ack_at: 0,
            processed_at_last_ack: 0,
            finished: false,
            done_forwarded: false,
            fixed_window: None,
            metrics: None,
            trace: TraceWriter::disabled(),
            trace_name: 0,
        }
    }

    /// Attach an execution-trace writer; arriving batches record `net-recv`
    /// instants carrying the item count.
    pub fn with_trace(mut self, writer: TraceWriter) -> Self {
        self.trace_name = writer.intern(&self.name);
        self.trace = writer;
        self
    }

    /// Disable adaptivity: always grant `processed + window` (ablation A4).
    pub fn with_fixed_window(mut self, window: u64) -> Self {
        self.fixed_window = Some(window);
        self
    }

    /// Attach channel instruments (built via [`ChannelMetrics::receiver_side`]).
    pub fn with_metrics(mut self, metrics: ChannelMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    fn flush_pending(&mut self) -> bool {
        let mut any = false;
        loop {
            // Fast path: hand the whole run of buffered events to the local
            // consumer queues in bulk — the routing policy batches them onto
            // its targets with one atomic publish per target.
            if self.pending.front().is_some_and(Item::is_event) {
                let moved = self.output.offer_event_run(&mut self.pending, usize::MAX);
                if moved > 0 {
                    self.processed += moved as u64;
                    any = true;
                }
                if self.pending.front().is_some_and(Item::is_event) {
                    break; // consumer queues full mid-run
                }
                continue;
            }
            let Some(item) = self.pending.front() else {
                break;
            };
            let was_done = matches!(item, Item::Done);
            // IDLE_CHANNEL (`Ts::MAX`) is a liveness marker, not an
            // event-time watermark — recording it as lag would swing the
            // gauge to roughly `i64::MIN`.
            let watermark = match item {
                Item::Watermark(w) if *w != crate::watermark::IDLE_CHANNEL => Some(*w),
                _ => None,
            };
            // Idle/terminal transition: park the lag gauge at the idle
            // marker instead of letting the last real lag linger forever.
            let went_quiet = was_done
                || matches!(item, Item::Watermark(w) if *w == crate::watermark::IDLE_CHANNEL);
            let delivered = if self.output.offer_to_all(item) {
                self.pending.pop_front();
                true
            } else {
                false
            };
            if delivered {
                self.processed += 1;
                any = true;
                if was_done {
                    self.done_forwarded = true;
                }
                if let Some(m) = &self.metrics {
                    if let Some(w) = watermark {
                        // Virtual time is aligned with event time in the
                        // simulator, so now - watermark is the event-time
                        // lag of this channel. Watermarks never run ahead of
                        // now; one that does is a near-`Ts::MAX`
                        // idle/terminal sentinel (possibly shifted by a
                        // policy's lag bound) and would poison the gauge
                        // with a huge negative value.
                        let now = self.clock.now_nanos() as i64;
                        if w <= now {
                            m.watermark_lag.set(now - w);
                        }
                    } else if went_quiet {
                        m.watermark_lag.set(WATERMARK_LAG_IDLE);
                    }
                }
            } else {
                break;
            }
        }
        any
    }

    fn maybe_ack(&mut self) -> bool {
        let now = self.clock.now_nanos();
        if now.saturating_sub(self.last_ack_at) < ACK_INTERVAL_NANOS && self.last_ack_at != 0 {
            return false;
        }
        let window = match self.fixed_window {
            Some(w) => w,
            None => {
                // Adaptive: ~300 ms of the rate observed in the last interval.
                let in_interval = self.processed - self.processed_at_last_ack;
                (in_interval * WINDOW_INTERVALS).max(MIN_WINDOW)
            }
        };
        if let Some(m) = &self.metrics {
            m.receive_window.set(window as i64);
        }
        self.transport
            .send_ack(self.channel, self.processed + window);
        self.last_ack_at = now;
        self.processed_at_last_ack = self.processed;
        true
    }
}

impl Tasklet for ReceiverTasklet {
    // jet-analyze: allow(alloc) — reassembled batch buffer reaches steady-state capacity
    fn call(&mut self) -> Progress {
        if self.finished {
            return Progress::Done;
        }
        let mut worked = self.flush_pending();
        if self.pending.len() < 4 * MIN_WINDOW as usize {
            while let Some(items) = self.transport.poll_data(self.channel) {
                worked = true;
                if self.trace.enabled() {
                    let ts = self.clock.now_nanos();
                    self.trace.record(
                        TraceKind::NetRecv,
                        ts,
                        0,
                        self.trace_name,
                        items.len() as i64,
                    );
                }
                self.pending.extend(items);
                if self.pending.len() >= 4 * MIN_WINDOW as usize {
                    break;
                }
            }
        }
        worked |= self.flush_pending();
        worked |= self.maybe_ack();
        // Done is always the last item a sender ships, so once it has been
        // forwarded this channel is finished.
        if self.done_forwarded {
            self.finished = true;
            return Progress::Done;
        }
        Progress::from_worked(worked)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Routing;
    use crate::object::boxed;
    use jet_queue::spsc_channel;
    use jet_util::clock::manual_clock;

    fn channel() -> ChannelId {
        ChannelId {
            edge: 0,
            from: 0,
            to: 1,
        }
    }

    #[test]
    fn transport_delays_delivery_by_latency() {
        let (manual, clock) = manual_clock();
        let t = InMemoryTransport::new(clock, 1_000);
        t.send_data(channel(), vec![Item::Watermark(1)]);
        assert!(
            t.poll_data(channel()).is_none(),
            "delivered before latency elapsed"
        );
        manual.advance(999);
        assert!(t.poll_data(channel()).is_none());
        manual.advance(1);
        assert!(t.poll_data(channel()).is_some());
        assert!(t.poll_data(channel()).is_none());
    }

    #[test]
    fn partition_parks_traffic_until_heal() {
        let (manual, clock) = manual_clock();
        let faults = Arc::new(NetworkFaults::new(1));
        let t = InMemoryTransport::new(clock, 100).with_faults(faults.clone());
        t.send_data(channel(), vec![Item::Watermark(1)]);
        faults.start_partition(9, vec![0]);
        manual.advance(10_000);
        assert!(t.poll_data(channel()).is_none(), "delivered across a cut");
        assert!(t.poll_ack(channel()).is_none());
        faults.end_partition(9);
        assert!(
            t.poll_data(channel()).is_some(),
            "parked batch must deliver after heal"
        );
    }

    #[test]
    fn chaos_delays_but_never_loses_or_reorders_data() {
        let (manual, clock) = manual_clock();
        let faults = Arc::new(NetworkFaults::new(7));
        let t = InMemoryTransport::new(clock, 100).with_faults(faults.clone());
        faults.set_chaos(ChannelChaos::new(300_000, 5_000));
        let n = 200;
        for i in 0..n {
            t.send_data(channel(), vec![Item::Watermark(i)]);
        }
        manual.advance(10_000_000);
        let mut got = Vec::new();
        while let Some(items) = t.poll_data(channel()) {
            for it in items {
                if let Item::Watermark(w) = it {
                    got.push(w);
                }
            }
        }
        assert_eq!(got.len(), n as usize, "chaos lost data");
        assert!(got.windows(2).all(|w| w[0] < w[1]), "chaos reordered data");
        assert!(faults.batches_retransmitted() > 0, "no retransmit at 30%?");
    }

    #[test]
    fn heartbeats_deliver_with_latency_and_drop_under_partition() {
        let (manual, clock) = manual_clock();
        let faults = Arc::new(NetworkFaults::new(3));
        let t = InMemoryTransport::new(clock, 1_000).with_faults(faults.clone());
        t.send_heartbeat(0, 1);
        assert!(t.poll_heartbeats(1).is_empty(), "before latency");
        manual.advance(1_000);
        let hb = t.poll_heartbeats(1);
        assert_eq!(hb, vec![(0, 0)]);
        faults.start_partition(1, vec![0]);
        t.send_heartbeat(0, 1);
        manual.advance(10_000);
        assert!(t.poll_heartbeats(1).is_empty(), "heartbeat crossed the cut");
        assert_eq!(faults.heartbeats_dropped(), 1);
    }

    #[test]
    fn fault_free_transport_with_faults_attached_behaves_identically() {
        let (manual, clock) = manual_clock();
        let faults = Arc::new(NetworkFaults::new(0));
        let t = InMemoryTransport::new(clock, 500).with_faults(faults);
        t.send_data(channel(), vec![Item::Watermark(1)]);
        manual.advance(499);
        assert!(t.poll_data(channel()).is_none());
        manual.advance(1);
        assert!(t.poll_data(channel()).is_some());
    }

    #[test]
    fn transport_acks_are_independent_of_data() {
        let (manual, clock) = manual_clock();
        let t = InMemoryTransport::new(clock, 0);
        t.send_ack(channel(), 500);
        assert_eq!(t.poll_ack(channel()), Some(500));
        assert!(t.poll_data(channel()).is_none());
        manual.advance(1);
    }

    #[test]
    fn sender_respects_grant() {
        let (_manual, clock) = manual_clock();
        let transport = Arc::new(InMemoryTransport::new(clock, 0));
        let (conv, mut producers) = Conveyor::<Item>::new(1, 1 << 14);
        let mut sender = SenderTasklet::new(channel(), transport.clone(), conv, Guarantee::None);
        sender.grant = 10;
        for i in 0..100 {
            producers[0].offer(Item::event(i, boxed(i as u64))).unwrap();
        }
        sender.call();
        let mut received = 0;
        while let Some(items) = transport.poll_data(channel()) {
            received += items.len();
        }
        assert_eq!(received, 10, "sender exceeded its grant");
        // Grant more; sender resumes.
        transport.send_ack(channel(), 30);
        sender.call();
        let mut more = 0;
        while let Some(items) = transport.poll_data(channel()) {
            more += items.len();
        }
        assert_eq!(more, 20);
    }

    #[test]
    fn sender_coalesces_watermarks_across_lanes() {
        let (_manual, clock) = manual_clock();
        let transport = Arc::new(InMemoryTransport::new(clock, 0));
        let (conv, mut producers) = Conveyor::<Item>::new(2, 64);
        let mut sender = SenderTasklet::new(channel(), transport.clone(), conv, Guarantee::None);
        producers[0].offer(Item::Watermark(10)).unwrap();
        producers[1].offer(Item::Watermark(5)).unwrap();
        sender.call();
        let mut wms = Vec::new();
        while let Some(items) = transport.poll_data(channel()) {
            for it in items {
                if let Item::Watermark(w) = it {
                    wms.push(w);
                }
            }
        }
        assert_eq!(wms, vec![5], "expected single coalesced watermark");
    }

    #[test]
    fn sender_aligns_barriers_before_forwarding() {
        let (_manual, clock) = manual_clock();
        let transport = Arc::new(InMemoryTransport::new(clock, 0));
        let (conv, mut producers) = Conveyor::<Item>::new(2, 64);
        let mut sender =
            SenderTasklet::new(channel(), transport.clone(), conv, Guarantee::ExactlyOnce);
        let b = Barrier {
            snapshot_id: 1,
            terminal: false,
        };
        producers[0].offer(Item::Barrier(b)).unwrap();
        producers[0].offer(Item::event(1, boxed(1u64))).unwrap(); // post-barrier item
        sender.call();
        let mut got_barrier = false;
        while let Some(items) = transport.poll_data(channel()) {
            for it in items {
                assert!(
                    !matches!(it, Item::Event { .. }),
                    "post-barrier event leaked: {it:?}"
                );
                if matches!(it, Item::Barrier(_)) {
                    got_barrier = true;
                }
            }
        }
        assert!(!got_barrier, "barrier forwarded before alignment");
        producers[1].offer(Item::Barrier(b)).unwrap();
        sender.call();
        sender.call(); // next timeslice drains the previously blocked lane
        let mut seen = Vec::new();
        while let Some(items) = transport.poll_data(channel()) {
            seen.extend(items);
        }
        assert!(matches!(seen[0], Item::Barrier(bb) if bb.snapshot_id == 1));
        // The post-barrier event follows the barrier.
        assert!(seen[1..].iter().any(|i| i.is_event()));
    }

    #[test]
    fn sender_forwards_done_when_all_lanes_done() {
        let (_manual, clock) = manual_clock();
        let transport = Arc::new(InMemoryTransport::new(clock, 0));
        let (conv, mut producers) = Conveyor::<Item>::new(2, 64);
        let mut sender = SenderTasklet::new(channel(), transport.clone(), conv, Guarantee::None);
        producers[0].offer(Item::Done).unwrap();
        assert_eq!(sender.call(), Progress::MadeProgress);
        producers[1].offer(Item::Done).unwrap();
        assert_eq!(sender.call(), Progress::Done);
        let mut seen = Vec::new();
        while let Some(items) = transport.poll_data(channel()) {
            seen.extend(items);
        }
        assert!(matches!(seen.last(), Some(Item::Done)));
        assert_eq!(seen.iter().filter(|i| matches!(i, Item::Done)).count(), 1);
    }

    #[test]
    fn receiver_forwards_and_acks() {
        let (manual, clock) = manual_clock();
        let transport = Arc::new(InMemoryTransport::new(clock.clone(), 0));
        let (p, c) = spsc_channel::<Item>(1 << 12);
        let output = OutboundCollector::new(Routing::Unicast, vec![p], vec![], 271, 0);
        let mut receiver = ReceiverTasklet::new(channel(), transport.clone(), clock, output);
        transport.send_data(
            channel(),
            vec![Item::event(1, boxed(7u64)), Item::Watermark(2)],
        );
        manual.advance(1);
        receiver.call();
        assert_eq!(c.len(), 2);
        // First call acks immediately (cold start), second within interval does not.
        assert!(transport.poll_ack(channel()).is_some());
        receiver.call();
        assert!(transport.poll_ack(channel()).is_none());
        manual.advance(ACK_INTERVAL_NANOS);
        receiver.call();
        let grant = transport.poll_ack(channel()).unwrap();
        assert!(grant >= 2 + MIN_WINDOW);
    }

    #[test]
    fn channel_metrics_record_flow_on_both_sides() {
        let (manual, clock) = manual_clock();
        let transport = Arc::new(InMemoryTransport::new(clock.clone(), 0));
        let sender_reg = MetricsRegistry::new();
        let receiver_reg = MetricsRegistry::new();

        let (conv, mut producers) = Conveyor::<Item>::new(1, 64);
        let mut sender = SenderTasklet::new(channel(), transport.clone(), conv, Guarantee::None)
            .with_metrics(ChannelMetrics::sender_side(&sender_reg, channel()));
        let (p, c) = spsc_channel::<Item>(64);
        let output = OutboundCollector::new(Routing::Unicast, vec![p], vec![], 271, 0);
        let mut receiver = ReceiverTasklet::new(channel(), transport.clone(), clock, output)
            .with_metrics(ChannelMetrics::receiver_side(&receiver_reg, channel()));

        producers[0].offer(Item::event(1, boxed(1u64))).unwrap();
        producers[0].offer(Item::event(2, boxed(2u64))).unwrap();
        producers[0].offer(Item::Watermark(2)).unwrap();
        sender.call();
        manual.advance(10);
        receiver.call();

        let snap = sender_reg.snapshot();
        let items = snap
            .find("jet_channel_items_sent_total", &[("edge", "0")])
            .unwrap();
        assert_eq!(items.as_counter(), Some(3));
        let bytes = snap
            .find(
                "jet_channel_bytes_sent_total",
                &[("from", "0"), ("to", "1")],
            )
            .unwrap();
        assert_eq!(
            bytes.as_counter(),
            Some(2 * (16 + 8) + 16),
            "2 u64 events + 1 watermark"
        );

        let rsnap = receiver_reg.snapshot();
        let window = rsnap
            .find("jet_channel_receive_window", &[("edge", "0")])
            .unwrap();
        assert_eq!(
            window.as_gauge(),
            Some(MIN_WINDOW as i64),
            "cold-start ack uses the floor"
        );
        let lag = rsnap
            .find("jet_channel_watermark_lag_nanos", &[("edge", "0")])
            .unwrap();
        assert_eq!(lag.as_gauge(), Some(10 - 2), "now=10, watermark=2");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn watermark_lag_gauge_resets_when_channel_goes_idle_or_terminal() {
        let (manual, clock) = manual_clock();
        let transport = Arc::new(InMemoryTransport::new(clock.clone(), 0));
        let reg = MetricsRegistry::new();
        let (p, _c) = spsc_channel::<Item>(64);
        let output = OutboundCollector::new(Routing::Unicast, vec![p], vec![], 271, 0);
        let mut receiver = ReceiverTasklet::new(channel(), transport.clone(), clock, output)
            .with_metrics(ChannelMetrics::receiver_side(&reg, channel()));

        manual.advance(100);
        transport.send_data(channel(), vec![Item::Watermark(40)]);
        receiver.call();
        let lag = |reg: &MetricsRegistry| {
            reg.snapshot()
                .find("jet_channel_watermark_lag_nanos", &[("edge", "0")])
                .unwrap()
                .as_gauge()
                .unwrap()
        };
        assert_eq!(lag(&reg), 60, "real lag recorded");

        // Channel goes idle: the stale 60 must not linger as phantom lag.
        transport.send_data(
            channel(),
            vec![Item::Watermark(crate::watermark::IDLE_CHANNEL)],
        );
        receiver.call();
        assert_eq!(lag(&reg), WATERMARK_LAG_IDLE, "idle marks the gauge");

        // Revival restores real lag reporting...
        manual.advance(100);
        transport.send_data(channel(), vec![Item::Watermark(150)]);
        receiver.call();
        assert_eq!(lag(&reg), 50);

        // ...and the terminal Done parks it at the idle marker again.
        transport.send_data(channel(), vec![Item::Done]);
        assert_eq!(receiver.call(), Progress::Done);
        assert_eq!(lag(&reg), WATERMARK_LAG_IDLE, "terminal marks the gauge");
    }

    #[test]
    fn traced_channel_records_send_and_receive() {
        use crate::trace::{TraceKind, Tracer};
        let (manual, clock) = manual_clock();
        let transport = Arc::new(InMemoryTransport::new(clock.clone(), 0));
        let tracer = Tracer::enabled();
        let (conv, mut producers) = Conveyor::<Item>::new(1, 64);
        let mut sender = SenderTasklet::new(channel(), transport.clone(), conv, Guarantee::None)
            .with_trace(tracer.writer(0, "m0/sender"), clock.clone());
        let (p, _c) = spsc_channel::<Item>(64);
        let output = OutboundCollector::new(Routing::Unicast, vec![p], vec![], 271, 0);
        let mut receiver = ReceiverTasklet::new(channel(), transport.clone(), clock, output)
            .with_trace(tracer.writer(1, "m1/receiver"));

        producers[0].offer(Item::event(1, boxed(1u64))).unwrap();
        producers[0].offer(Item::Watermark(1)).unwrap();
        manual.advance(5);
        sender.call();
        manual.advance(5);
        receiver.call();

        let data = tracer.drain();
        let sends: Vec<_> = data.of_kind(TraceKind::NetSend).collect();
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].rec.ts, 5);
        assert_eq!(
            sends[0].rec.arg,
            (16 + 8) + 16,
            "1 u64 event + 1 watermark in bytes"
        );
        assert_eq!(data.name(sends[0].rec.name), "sender-e0-m0->m1");
        let recvs: Vec<_> = data.of_kind(TraceKind::NetRecv).collect();
        assert_eq!(recvs.len(), 1);
        assert_eq!(recvs[0].rec.ts, 10);
        assert_eq!(recvs[0].rec.arg, 2, "2 items in the batch");
    }

    #[test]
    fn receiver_finishes_on_done() {
        let (manual, clock) = manual_clock();
        let transport = Arc::new(InMemoryTransport::new(clock.clone(), 0));
        let (p, _c) = spsc_channel::<Item>(64);
        let output = OutboundCollector::new(Routing::Unicast, vec![p], vec![], 271, 0);
        let mut receiver = ReceiverTasklet::new(channel(), transport.clone(), clock, output);
        transport.send_data(channel(), vec![Item::Done]);
        manual.advance(1);
        assert_eq!(receiver.call(), Progress::Done);
    }
}

//! Facade crate re-exporting the jet-rs workspace; see README.md.
pub use jet_cluster as cluster;
pub use jet_core as core;
pub use jet_imdg as imdg;
pub use jet_nexmark as nexmark;
pub use jet_pipeline as pipeline;
pub use jet_queue as queue;
pub use jet_sim as sim;
pub use jet_util as util;

//! Workspace integration tests spanning crates: NEXMark queries validated
//! against reference computations, delivery-guarantee sinks, and the
//! threaded executor driving pipeline-compiled DAGs.

use jet_cluster::{SimCluster, SimClusterConfig};
use jet_core::metrics::SharedCounter;
use jet_core::processors::WatermarkPolicy;
use jet_core::Ts;
use jet_nexmark::{queries, Event, NexmarkConfig};
use jet_pipeline::Pipeline;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

const SEC: u64 = 1_000_000_000;

/// Timestamped sink output, shared with the collecting pipeline stage.
type Collected<T> = Arc<Mutex<Vec<(Ts, T)>>>;

fn small_nexmark() -> NexmarkConfig {
    NexmarkConfig {
        people: 50,
        auctions: 40,
        ..Default::default()
    }
}

fn run_to_completion(p: &Pipeline, members: usize) {
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members,
        cores_per_member: 2,
        partition_count: 31,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    assert!(cluster.run_for(120 * SEC), "job did not complete");
}

/// Reference event stream: same generator, computed directly.
fn reference_events(cfg: &NexmarkConfig, rate: u64, limit: u64) -> Vec<Event> {
    (0..limit)
        .map(|seq| {
            let ts = (seq as u128 * 1_000_000_000 / rate as u128) as Ts;
            cfg.event(seq, ts)
        })
        .collect()
}

#[test]
fn q2_matches_reference_filter() {
    let nex = small_nexmark();
    const RATE: u64 = 500_000;
    const LIMIT: u64 = 25_000;
    let p = Pipeline::create();
    let out: Collected<(u64, i64)> = Arc::new(Mutex::new(Vec::new()));
    let src = queries::source(&p, &nex, RATE, Some(LIMIT), WatermarkPolicy::default());
    queries::q2(&src).write_to_collect(out.clone());
    run_to_completion(&p, 2);

    let expected: Vec<(u64, i64)> = reference_events(&nex, RATE, LIMIT)
        .iter()
        .filter_map(|e| e.as_bid())
        .filter(|b| b.auction % 123 == 0)
        .map(|b| (b.auction, b.price))
        .collect();
    let mut got: Vec<(u64, i64)> = out.lock().iter().map(|(_, v)| *v).collect();
    let mut want = expected;
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn q1_converts_every_bid() {
    let nex = small_nexmark();
    const LIMIT: u64 = 20_000;
    let p = Pipeline::create();
    let count = SharedCounter::new();
    let src = queries::source(&p, &nex, 500_000, Some(LIMIT), WatermarkPolicy::default());
    queries::q1(&src).write_to_count(count.clone());
    run_to_completion(&p, 2);
    let expected_bids = reference_events(&nex, 500_000, LIMIT)
        .iter()
        .filter(|e| e.as_bid().is_some())
        .count() as u64;
    assert_eq!(count.get(), expected_bids);
}

#[test]
fn q5_window_counts_match_reference() {
    let nex = small_nexmark();
    const RATE: u64 = 1_000_000;
    const LIMIT: u64 = 50_000; // 50ms of stream
    let window = jet_pipeline::WindowDef::tumbling(10_000_000); // 10ms
    let p = Pipeline::create();
    let out: Collected<jet_pipeline::WindowResult<u64, u64>> = Arc::new(Mutex::new(Vec::new()));
    let src = queries::source(&p, &nex, RATE, Some(LIMIT), WatermarkPolicy::default());
    queries::q5(&src, window).write_to_collect(out.clone());
    run_to_completion(&p, 3);

    // Reference: count bids per (auction, window end).
    let mut expected: HashMap<(u64, Ts), u64> = HashMap::new();
    for e in reference_events(&nex, RATE, LIMIT) {
        if let Some(b) = e.as_bid() {
            let end = (b.ts / 10_000_000) * 10_000_000 + 10_000_000;
            *expected.entry((b.auction, end)).or_insert(0) += 1;
        }
    }
    let results = out.lock();
    let mut got: HashMap<(u64, Ts), u64> = HashMap::new();
    for (_, r) in results.iter() {
        let prev = got.insert((r.key, r.end), r.value);
        assert!(prev.is_none(), "duplicate window ({}, {})", r.key, r.end);
    }
    assert_eq!(got, expected);
}

#[test]
fn q7_highest_bid_is_the_true_max() {
    let nex = small_nexmark();
    const LIMIT: u64 = 20_000;
    const RATE: u64 = 1_000_000;
    let p = Pipeline::create();
    let out: Collected<jet_pipeline::WindowResult<u64, i64>> = Arc::new(Mutex::new(Vec::new()));
    let src = queries::source(&p, &nex, RATE, Some(LIMIT), WatermarkPolicy::default());
    queries::q7(&src, 20_000_000).write_to_collect(out.clone()); // 20ms periods
    run_to_completion(&p, 2);

    let mut expected: HashMap<Ts, i64> = HashMap::new();
    for e in reference_events(&nex, RATE, LIMIT) {
        if let Some(b) = e.as_bid() {
            let end = (b.ts / 20_000_000) * 20_000_000 + 20_000_000;
            let m = expected.entry(end).or_insert(i64::MIN);
            *m = (*m).max(b.price);
        }
    }
    let results = out.lock();
    assert!(!results.is_empty());
    for (_, r) in results.iter() {
        assert_eq!(
            Some(&r.value),
            expected.get(&r.end),
            "window {} max mismatch",
            r.end
        );
    }
    assert_eq!(results.len(), expected.len());
}

#[test]
fn q8_reports_exactly_the_sellers_who_listed() {
    let nex = small_nexmark();
    const LIMIT: u64 = 30_000;
    const RATE: u64 = 1_000_000;
    let window: Ts = 30_000_000; // 30ms = whole stream
    let p = Pipeline::create();
    let out: Collected<(u64, String)> = Arc::new(Mutex::new(Vec::new()));
    let src = queries::source(&p, &nex, RATE, Some(LIMIT), WatermarkPolicy::default());
    queries::q8(&src, window).write_to_collect(out.clone());
    run_to_completion(&p, 2);

    // Reference: persons who appear AND have an auction with seller == id in
    // the same window.
    let events = reference_events(&nex, RATE, LIMIT);
    let mut expected: std::collections::HashSet<(Ts, u64)> = Default::default();
    let wend = |ts: Ts| (ts / window) * window + window;
    for e in &events {
        if let Some(p0) = e.as_person() {
            let w = wend(p0.ts);
            if events.iter().any(|x| {
                x.as_auction()
                    .map(|a| a.seller == p0.id && wend(a.ts) == w)
                    .unwrap_or(false)
            }) {
                expected.insert((w, p0.id));
            }
        }
    }
    let got: std::collections::HashSet<(Ts, u64)> =
        out.lock().iter().map(|(ts, (id, _))| (*ts, *id)).collect();
    assert_eq!(got, expected);
}

#[test]
fn q3_q4_q6_smoke_produce_plausible_output() {
    let nex = NexmarkConfig {
        people: 200,
        auctions: 100,
        ..Default::default()
    };
    const LIMIT: u64 = 40_000;
    let p = Pipeline::create();
    let q3_out: Collected<(String, String, String, u64)> = Arc::new(Mutex::new(Vec::new()));
    let q4_out: Collected<jet_pipeline::WindowResult<u64, f64>> = Arc::new(Mutex::new(Vec::new()));
    let q6_out: Collected<(u64, i64)> = Arc::new(Mutex::new(Vec::new()));
    let src = queries::source(&p, &nex, 1_000_000, Some(LIMIT), WatermarkPolicy::default());
    queries::q3(&src).write_to_collect(q3_out.clone());
    queries::q4(&src, 10_000_000).write_to_collect(q4_out.clone());
    queries::q6(&src, 10_000_000).write_to_collect(q6_out.clone());
    run_to_completion(&p, 2);

    let q3 = q3_out.lock();
    for (_, (_, _, state, _)) in q3.iter() {
        assert!(
            matches!(state.as_str(), "OR" | "ID" | "CA"),
            "Q3 state filter leaked: {state}"
        );
    }
    let q4 = q4_out.lock();
    assert!(!q4.is_empty(), "Q4 produced nothing");
    for (_, r) in q4.iter() {
        assert!(
            r.value >= 100.0,
            "Q4 average below min bid price: {}",
            r.value
        );
    }
    let q6 = q6_out.lock();
    assert!(!q6.is_empty(), "Q6 produced nothing");
    for (_, (_, avg)) in q6.iter() {
        assert!(*avg >= 100, "Q6 average below min price: {avg}");
    }
}

#[test]
fn transactional_sink_hides_uncommitted_output() {
    use jet_core::processor::Guarantee;
    const LIMIT: u64 = 10_000;
    let p = Pipeline::create();
    let committed: Collected<u64> = Arc::new(Mutex::new(Vec::new()));
    // Registry is created by SimCluster; use a two-phase wiring instead:
    // build with cluster, then fetch its registry for the sink. We pre-create
    // the pipeline with a placeholder registry and rebuild after.
    // Simpler: run with snapshots and check the invariant at completion.
    let dag = {
        let registry_cell: Arc<Mutex<Option<Arc<jet_core::SnapshotRegistry>>>> =
            Arc::new(Mutex::new(None));
        let _ = registry_cell;
        // Build the pipeline against a fresh registry that the cluster will
        // replace; the sink only uses `completed()`, which is monotonic, so
        // wiring it to the *cluster's* registry matters. We therefore build
        // the cluster first with a probe dag, then the real one.
        p.read_from_generator_cfg(
            "gen",
            1_000_000,
            Some(LIMIT),
            WatermarkPolicy::default(),
            |seq, _| seq,
        )
        .map(|v: &u64| *v)
        .write_to_count(SharedCounter::new()); // placeholder sink
        p.compile(2).unwrap()
    };
    let cfg = SimClusterConfig {
        members: 2,
        cores_per_member: 2,
        partition_count: 31,
        guarantee: Guarantee::ExactlyOnce,
        snapshot_interval: 2_000_000, // 2ms
        ..Default::default()
    };
    let cluster = SimCluster::start(dag, cfg.clone()).unwrap();
    let registry = cluster.registry();
    drop(cluster);
    // Now the real job wired to a live registry.
    let p2 = Pipeline::create();
    p2.read_from_generator_cfg(
        "gen",
        1_000_000,
        Some(LIMIT),
        WatermarkPolicy::default(),
        |seq, _| seq,
    )
    .write_to_transactional(committed.clone(), registry);
    let dag2 = p2.compile(2).unwrap();
    let mut cluster = SimCluster::start(dag2, cfg).unwrap();
    assert!(cluster.run_for(60 * SEC));
    // On completion everything is committed exactly once.
    let mut vals: Vec<u64> = committed.lock().iter().map(|(_, v)| *v).collect();
    vals.sort_unstable();
    vals.dedup();
    assert_eq!(
        vals.len(),
        LIMIT as usize,
        "transactional sink lost or duplicated"
    );
}

#[test]
fn idempotent_sink_dedups_by_record_id() {
    const LIMIT: u64 = 5_000;
    let p = Pipeline::create();
    let published: Arc<Mutex<HashMap<u64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    // Emit each record id TWICE (simulating an at-least-once replay).
    p.read_from_generator_cfg(
        "gen",
        1_000_000,
        Some(LIMIT * 2),
        WatermarkPolicy::default(),
        |seq, _| seq / 2, // ids 0..LIMIT, each twice
    )
    .write_to_idempotent(published.clone(), |v: &u64| *v);
    run_to_completion(&p, 1);
    assert_eq!(published.lock().len(), LIMIT as usize);
}

#[test]
fn threaded_executor_runs_pipeline_compiled_dags() {
    // The same pipeline crates compile to DAGs that run on REAL threads.
    let p = Pipeline::create();
    let count = SharedCounter::new();
    p.read_from_generator_cfg(
        "gen",
        2_000_000,
        Some(100_000),
        WatermarkPolicy::default(),
        |seq, _| seq,
    )
    .filter(|v: &u64| v.is_multiple_of(2))
    .write_to_count(count.clone());
    let dag = p.compile(2).unwrap();
    let registry = Arc::new(jet_core::SnapshotRegistry::disabled());
    let exec =
        jet_core::plan::build_local(&dag, &jet_core::plan::LocalConfig::new(2), &registry, None)
            .unwrap();
    let handle = jet_core::exec::spawn_threaded(exec.tasklets, 2, exec.cancelled);
    handle.join();
    assert_eq!(count.get(), 50_000);
}

//! Validates the machine-readable results files against their documented
//! schemas, so downstream tooling (plots, dashboards, regression diffs) can
//! trust every artifact CI uploads:
//!
//! - `results/BENCH_<name>.json` — shared bench-report schema emitted by
//!   `jet_bench::BenchReport::to_json` (bench params, per-run latency
//!   percentile summary, metrics snapshot).
//! - `results/SPIKE_<name>.json` — `jet-spike-v1` spike-forensics schema
//!   emitted by `jet_core::flight::SpikeReport::to_json` (watchdog
//!   fidelity, frozen windows, per-cause attribution).
//! - `results/TIMELINE_<name>.json` — `jet-timeline-v1` metrics-timeline
//!   schema emitted by `jet_core::telemetry::Timeline::to_json`
//!   (delta-encoded per-series samples on a fixed virtual-time cadence).
//!
//! Both writers emit JSON by hand (the workspace carries no serde), so the
//! checker parses with its own minimal recursive-descent parser rather than
//! trusting the producer's balancing. Beyond shape, it enforces the
//! semantic invariants the reproduction leans on: percentile summaries are
//! monotone, attribution slices partition the spike latency exactly, and
//! shares sum to one.

use std::fmt;

// ------------------------------------------------------------------ JSON

/// Minimal JSON document model — just enough to validate result files.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Parse error with a byte offset, so a malformed artifact is locatable.
#[derive(Debug)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number token");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("malformed number '{text}'")))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("malformed \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs never appear in these files
                            // (the writers escape only ASCII controls);
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.err(format!("bad escape '\\{}'", other as char))),
                    }
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Decode exactly one multi-byte UTF-8 scalar. Validating
                    // only this scalar's bytes (never the whole remaining
                    // input) keeps string parsing linear in the file size.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let scalar = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push_str(scalar);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

// ------------------------------------------------------------- validation

/// Collects dotted-path violations while walking a document.
struct Checker {
    errors: Vec<String>,
}

impl Checker {
    fn fail(&mut self, path: &str, message: impl fmt::Display) {
        self.errors.push(format!("{path}: {message}"));
    }

    fn str<'a>(&mut self, v: &'a Json, path: &str, key: &str) -> Option<&'a str> {
        match v.get(key) {
            Some(Json::Str(s)) => Some(s),
            Some(other) => {
                self.fail(
                    path,
                    format_args!("'{key}' is {}, want string", other.kind()),
                );
                None
            }
            None => {
                self.fail(path, format_args!("missing key '{key}'"));
                None
            }
        }
    }

    fn num(&mut self, v: &Json, path: &str, key: &str) -> Option<f64> {
        match v.get(key) {
            Some(Json::Num(n)) => Some(*n),
            Some(other) => {
                self.fail(
                    path,
                    format_args!("'{key}' is {}, want number", other.kind()),
                );
                None
            }
            None => {
                self.fail(path, format_args!("missing key '{key}'"));
                None
            }
        }
    }

    fn arr<'a>(&mut self, v: &'a Json, path: &str, key: &str) -> Option<&'a [Json]> {
        match v.get(key) {
            Some(Json::Arr(items)) => Some(items),
            Some(other) => {
                self.fail(
                    path,
                    format_args!("'{key}' is {}, want array", other.kind()),
                );
                None
            }
            None => {
                self.fail(path, format_args!("missing key '{key}'"));
                None
            }
        }
    }

    /// A `params`-style object: every value must be a string.
    fn string_map(&mut self, v: &Json, path: &str, key: &str) {
        match v.get(key) {
            Some(Json::Obj(pairs)) => {
                for (k, pv) in pairs {
                    if !matches!(pv, Json::Str(_)) {
                        self.fail(
                            path,
                            format_args!("'{key}.{k}' is {}, want string", pv.kind()),
                        );
                    }
                }
            }
            Some(other) => {
                self.fail(
                    path,
                    format_args!("'{key}' is {}, want object", other.kind()),
                );
            }
            None => self.fail(path, format_args!("missing key '{key}'")),
        }
    }

    /// A latency/histogram percentile summary: all keys numeric, and the
    /// quantiles monotone (`min <= p50 <= ... <= p9999 <= max`).
    fn percentile_summary(&mut self, v: &Json, path: &str) {
        let keys = [
            "count", "min", "max", "mean", "p50", "p90", "p99", "p999", "p9999",
        ];
        let mut got = [0f64; 9];
        let mut complete = true;
        for (i, key) in keys.iter().enumerate() {
            match self.num(v, path, key) {
                Some(n) => got[i] = n,
                None => complete = false,
            }
        }
        if !complete {
            return;
        }
        let [count, min, max, _mean, p50, p90, p99, p999, p9999] = got;
        if count > 0.0 {
            let ladder = [min, p50, p90, p99, p999, p9999, max];
            if ladder.windows(2).any(|w| w[0] > w[1]) {
                self.fail(
                    path,
                    format_args!("percentiles are not monotone: {ladder:?}"),
                );
            }
        }
    }
}

/// Validate a `results/BENCH_*.json` document. Returns violations, empty
/// when the file conforms.
pub fn validate_bench(doc: &Json) -> Vec<String> {
    let mut c = Checker { errors: Vec::new() };
    if !matches!(doc, Json::Obj(_)) {
        return vec![format!("root: is {}, want object", doc.kind())];
    }
    c.str(doc, "root", "bench");
    c.string_map(doc, "root", "params");
    if let Some(runs) = c.arr(doc, "root", "runs") {
        for (i, run) in runs.iter().enumerate() {
            let path = format!("runs[{i}]");
            if !matches!(run, Json::Obj(_)) {
                c.fail(&path, format_args!("is {}, want object", run.kind()));
                continue;
            }
            c.str(run, &path, "label");
            c.string_map(run, &path, "params");
            if let Some(lat) = run.get("latency_nanos") {
                c.percentile_summary(lat, &format!("{path}.latency_nanos"));
            }
            if let Some(metrics) = run.get("metrics") {
                validate_metrics_snapshot(&mut c, metrics, &format!("{path}.metrics"));
            }
            if let Some(a) = run.get("attribution") {
                validate_bench_attribution(&mut c, a, &format!("{path}.attribution"));
            }
            if let Some(ctl) = run.get("controller") {
                validate_bench_controller(&mut c, ctl, &format!("{path}.controller"));
            }
            validate_bench_keystate(&mut c, run, &path);
        }
    }
    c.errors
}

/// Validate the keyed-state scale fields (`fig_keyscale`): any run carrying
/// `bytes_per_key` must also report the `resident_bytes` / `resident_keys`
/// pair it was derived from, the three must be internally consistent, and a
/// sweep summary's `p9999_ratio` must be a positive degradation factor. A
/// negative value anywhere means the producer hit the non-finite sentinel
/// (`-1`), i.e. the gauges were read from an empty store.
fn validate_bench_keystate(c: &mut Checker, run: &Json, path: &str) {
    if run.get("bytes_per_key").is_some() {
        let bpk = c.num(run, path, "bytes_per_key");
        let bytes = c.num(run, path, "resident_bytes");
        let keys = c.num(run, path, "resident_keys");
        for (key, v) in [
            ("bytes_per_key", bpk),
            ("resident_bytes", bytes),
            ("resident_keys", keys),
        ] {
            if let Some(v) = v {
                if v < 0.0 {
                    c.fail(path, format_args!("'{key}' is {v}, want >= 0"));
                }
            }
        }
        if let (Some(bpk), Some(bytes), Some(keys)) = (bpk, bytes, keys) {
            let derived = bytes / keys.max(1.0);
            if bpk >= 0.0 && (bpk - derived).abs() > derived.abs() * 1e-6 + 1e-6 {
                c.fail(
                    path,
                    format_args!(
                        "'bytes_per_key' is {bpk}, want resident_bytes / \
                         resident_keys = {derived}"
                    ),
                );
            }
        }
    }
    if let Some(Json::Num(ratio)) = run.get("p9999_ratio") {
        if *ratio <= 0.0 {
            c.fail(path, format_args!("'p9999_ratio' is {ratio}, want > 0"));
        }
    }
}

/// Validate the optional per-run `controller` object: the autoscaling
/// controller's decision timeline (`runs[].controller`, emitted by
/// `jet_bench` when a run is driven with a `ControllerConfig`). Events must
/// carry a known `kind`, a virtual timestamp that never goes backwards, and
/// a member count of at least one wherever one is reported.
fn validate_bench_controller(c: &mut Checker, ctl: &Json, path: &str) {
    const KINDS: [&str; 6] = [
        "decided",
        "rescale-completed",
        "rescale-failed",
        "cooldown",
        "backoff",
        "degraded",
    ];
    if !matches!(ctl, Json::Obj(_)) {
        c.fail(path, format_args!("is {}, want object", ctl.kind()));
        return;
    }
    if let Some(m) = c.num(ctl, path, "final_members") {
        if m < 1.0 {
            c.fail(path, format_args!("'final_members' is {m}, want >= 1"));
        }
    }
    let Some(events) = c.arr(ctl, path, "events") else {
        return;
    };
    let mut prev_at = f64::NEG_INFINITY;
    for (i, e) in events.iter().enumerate() {
        let epath = format!("{path}.events[{i}]");
        if !matches!(e, Json::Obj(_)) {
            c.fail(&epath, format_args!("is {}, want object", e.kind()));
            continue;
        }
        if let Some(at) = c.num(e, &epath, "at") {
            // The controller appends events as virtual time advances; a
            // timeline that runs backwards would mean the run is lying
            // about decision ordering.
            if at < prev_at {
                c.fail(
                    &epath,
                    format_args!("'at' {at} precedes previous event at {prev_at}"),
                );
            }
            prev_at = prev_at.max(at);
        }
        c.str(e, &epath, "label");
        match c.str(e, &epath, "kind") {
            Some(kind) if !KINDS.contains(&kind) => {
                c.fail(&epath, format_args!("unknown event kind '{kind}'"));
            }
            _ => {}
        }
        match e.get("direction") {
            Some(Json::Str(d)) if d == "up" || d == "down" => {}
            Some(other) => c.fail(
                &epath,
                format_args!("'direction' is {other:?}, want \"up\" or \"down\""),
            ),
            None => {}
        }
        if let Some(Json::Num(m)) = e.get("members") {
            if *m < 1.0 {
                c.fail(&epath, format_args!("'members' is {m}, want >= 1"));
            }
        }
    }
}

/// Validate the optional per-run `attribution` object (`jet-bench-v1`): the
/// full-distribution latency waterfall. Every band's slices must sum exactly
/// to the exemplar's measured end-to-end latency.
fn validate_bench_attribution(c: &mut Checker, a: &Json, path: &str) {
    if !matches!(a, Json::Obj(_)) {
        c.fail(path, format_args!("is {}, want object", a.kind()));
        return;
    }
    for key in ["observed", "sampled", "sample_shift"] {
        c.num(a, path, key);
    }
    let Some(bands) = c.arr(a, path, "bands") else {
        return;
    };
    for (i, band) in bands.iter().enumerate() {
        let bpath = format!("{path}.bands[{i}]");
        if !matches!(band, Json::Obj(_)) {
            c.fail(&bpath, format_args!("is {}, want object", band.kind()));
            continue;
        }
        c.str(band, &bpath, "band");
        c.num(band, &bpath, "percentile");
        c.num(band, &bpath, "target_nanos");
        let event_ts = c.num(band, &bpath, "event_ts_nanos");
        let emitted_at = c.num(band, &bpath, "emitted_at_nanos");
        let latency = c.num(band, &bpath, "latency_nanos");
        if let (Some(ev), Some(em), Some(lat)) = (event_ts, emitted_at, latency) {
            // The sink computes latency = emitted_at - event_ts (saturating),
            // so the stamp must be internally consistent.
            if lat != (em - ev).max(0.0) {
                c.fail(
                    &bpath,
                    format_args!("latency_nanos {lat} != emitted_at - event_ts {}", em - ev),
                );
            }
        }
        // The band flattens the Attribution fields; reuse the spike validator
        // so the exact-sum and share-sum invariants are enforced, with the
        // band's own measured latency as the total the slices must hit.
        validate_attribution(c, band, &bpath, latency);
    }
}

fn validate_metrics_snapshot(c: &mut Checker, v: &Json, path: &str) {
    let Some(items) = c.arr(v, path, "metrics") else {
        return;
    };
    for (i, m) in items.iter().enumerate() {
        let mpath = format!("{path}.metrics[{i}]");
        let name = c.str(m, &mpath, "name").unwrap_or_default().to_string();
        if !name.is_empty() {
            let mpath = format!("{mpath} ({name})");
            c.string_map(m, &mpath, "tags");
            match c.str(m, &mpath, "type") {
                Some("counter") | Some("gauge") => {
                    c.num(m, &mpath, "value");
                }
                Some("histogram") => c.percentile_summary(m, &mpath),
                Some(other) => c.fail(&mpath, format_args!("unknown metric type '{other}'")),
                None => {}
            }
        }
    }
}

/// Validate a `results/SPIKE_*.json` document against `jet-spike-v1`.
pub fn validate_spike(doc: &Json) -> Vec<String> {
    let mut c = Checker { errors: Vec::new() };
    if !matches!(doc, Json::Obj(_)) {
        return vec![format!("root: is {}, want object", doc.kind())];
    }
    match c.str(doc, "root", "schema") {
        Some("jet-spike-v1") | None => {}
        Some(other) => c.fail("root", format_args!("unknown schema '{other}'")),
    }
    c.str(doc, "root", "bench");
    c.str(doc, "root", "run");
    c.num(doc, "root", "threshold_nanos");
    if let Some(f) = doc.get("fidelity") {
        for key in [
            "trace_ring_dropped",
            "collector_dropped",
            "recorder_evicted",
            "sample_shift",
            "spans_retained",
            "snapshots_retained",
            "observed",
            "suppressed",
        ] {
            c.num(f, "fidelity", key);
        }
    } else {
        c.fail("root", "missing key 'fidelity'");
    }
    let Some(incidents) = c.arr(doc, "root", "incidents") else {
        return c.errors;
    };
    for (i, inc) in incidents.iter().enumerate() {
        let path = format!("incidents[{i}]");
        if !matches!(inc, Json::Obj(_)) {
            c.fail(&path, format_args!("is {}, want object", inc.kind()));
            continue;
        }
        for key in [
            "id",
            "first_detected_nanos",
            "last_detected_nanos",
            "samples",
        ] {
            c.num(inc, &path, key);
        }
        let peak_latency = match inc.get("peak") {
            Some(peak) => {
                let ppath = format!("{path}.peak");
                c.num(peak, &ppath, "event_ts_nanos");
                c.num(peak, &ppath, "emitted_at_nanos");
                c.num(peak, &ppath, "latency_nanos")
            }
            None => {
                c.fail(&path, "missing key 'peak'");
                None
            }
        };
        match inc.get("window") {
            Some(w) => {
                let wpath = format!("{path}.window");
                for key in ["lo_nanos", "hi_nanos", "events", "truncated", "snapshots"] {
                    c.num(w, &wpath, key);
                }
            }
            None => c.fail(&path, "missing key 'window'"),
        }
        match inc.get("attribution") {
            Some(a) => {
                validate_attribution(&mut c, a, &format!("{path}.attribution"), peak_latency)
            }
            None => c.fail(&path, "missing key 'attribution'"),
        }
    }
    c.errors
}

fn validate_attribution(c: &mut Checker, a: &Json, path: &str, peak_latency: Option<f64>) {
    let total = c.num(a, path, "total_nanos");
    c.str(a, path, "top_cause");
    c.str(a, path, "top_group");
    match a.get("blamed_vertex") {
        Some(Json::Str(_)) | Some(Json::Null) => {}
        Some(other) => c.fail(
            path,
            format_args!("'blamed_vertex' is {}, want string or null", other.kind()),
        ),
        None => c.fail(path, "missing key 'blamed_vertex'"),
    }
    let Some(causes) = c.arr(a, path, "causes") else {
        return;
    };
    let mut nanos_sum = 0f64;
    let mut share_sum = 0f64;
    for (j, slice) in causes.iter().enumerate() {
        let spath = format!("{path}.causes[{j}]");
        c.str(slice, &spath, "cause");
        c.str(slice, &spath, "group");
        c.str(slice, &spath, "detail");
        nanos_sum += c.num(slice, &spath, "nanos").unwrap_or(0.0);
        share_sum += c.num(slice, &spath, "share").unwrap_or(0.0);
    }
    // The attribution engine partitions the spike window exactly; a report
    // whose slices don't sum to the spike latency would silently misstate
    // the blame. All values are integer nanos < 2^53, so f64 sums exactly.
    if let Some(total) = total {
        if nanos_sum != total {
            c.fail(
                path,
                format_args!("cause nanos sum to {nanos_sum}, total_nanos is {total}"),
            );
        }
        if let Some(peak) = peak_latency {
            if total != peak {
                c.fail(
                    path,
                    format_args!("total_nanos {total} != peak.latency_nanos {peak}"),
                );
            }
        }
        if total > 0.0 && (share_sum - 1.0).abs() > 1e-3 {
            c.fail(
                path,
                format_args!("cause shares sum to {share_sum}, want 1"),
            );
        }
    }
}

/// Validate a `results/TIMELINE_*.json` document against `jet-timeline-v1`.
///
/// Structural invariants beyond key presence: `ticks_nanos` is strictly
/// monotone (the sampler folds same-instant re-samples), and every series is
/// rectangular — exactly one delta per tick, because late-appearing series
/// are zero-padded at record time.
pub fn validate_timeline(doc: &Json) -> Vec<String> {
    let mut c = Checker { errors: Vec::new() };
    if !matches!(doc, Json::Obj(_)) {
        return vec![format!("root: is {}, want object", doc.kind())];
    }
    match c.str(doc, "root", "schema") {
        Some("jet-timeline-v1") | None => {}
        Some(other) => c.fail("root", format_args!("unknown schema '{other}'")),
    }
    c.str(doc, "root", "bench");
    c.str(doc, "root", "run");
    c.num(doc, "root", "cadence_nanos");
    c.num(doc, "root", "evicted_ticks");
    let mut tick_count = 0usize;
    if let Some(ticks) = c.arr(doc, "root", "ticks_nanos") {
        tick_count = ticks.len();
        let mut prev = f64::NEG_INFINITY;
        for (i, t) in ticks.iter().enumerate() {
            match t {
                Json::Num(n) => {
                    if *n <= prev {
                        c.fail(
                            "root.ticks_nanos",
                            format_args!("not strictly monotone at [{i}]: {prev} then {n}"),
                        );
                    }
                    prev = *n;
                }
                other => c.fail(
                    "root.ticks_nanos",
                    format_args!("[{i}] is {}, want number", other.kind()),
                ),
            }
        }
    }
    let Some(series) = c.arr(doc, "root", "series") else {
        return c.errors;
    };
    for (i, s) in series.iter().enumerate() {
        let spath = format!("series[{i}]");
        if !matches!(s, Json::Obj(_)) {
            c.fail(&spath, format_args!("is {}, want object", s.kind()));
            continue;
        }
        let name = c.str(s, &spath, "name").unwrap_or_default().to_string();
        let spath = if name.is_empty() {
            spath
        } else {
            format!("{spath} ({name})")
        };
        c.string_map(s, &spath, "tags");
        match c.str(s, &spath, "kind") {
            Some("counter") | Some("gauge") | Some("histogram_p99") | None => {}
            Some(other) => c.fail(&spath, format_args!("unknown series kind '{other}'")),
        }
        c.num(s, &spath, "base");
        if let Some(deltas) = c.arr(s, &spath, "deltas") {
            if deltas.len() != tick_count {
                c.fail(
                    &spath,
                    format_args!("has {} delta(s) for {} tick(s)", deltas.len(), tick_count),
                );
            }
            for (j, d) in deltas.iter().enumerate() {
                if !matches!(d, Json::Num(_)) {
                    c.fail(
                        &spath,
                        format_args!("deltas[{j}] is {}, want number", d.kind()),
                    );
                }
            }
        }
    }
    c.errors
}

// ------------------------------------------------------------------ files

/// Validate one results file by name: `BENCH_*`, `SPIKE_*`, and `TIMELINE_*`
/// files get their schema check, anything else is skipped (`Ok(None)`).
pub fn validate_file(file_name: &str, contents: &str) -> Option<Vec<String>> {
    let validator: fn(&Json) -> Vec<String> = if file_name.starts_with("BENCH_") {
        validate_bench
    } else if file_name.starts_with("SPIKE_") {
        validate_spike
    } else if file_name.starts_with("TIMELINE_") {
        validate_timeline
    } else {
        return None;
    };
    match parse(contents) {
        Ok(doc) => Some(validator(&doc)),
        Err(e) => Some(vec![format!("not valid JSON: {e}")]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jet_bench::{BenchReport, RunResult};
    use jet_cluster::{ControllerEvent, Direction};
    use jet_core::flight::{
        Attribution, AttributionReport, BandWaterfall, Cause, CauseSlice, IncidentReport,
        SpikeFidelity, SpikeIncident, SpikeReport, Stamp,
    };
    use jet_core::metrics::MetricsRegistry;
    use jet_core::telemetry::{Timeline, TimelineConfig};
    use jet_util::histogram::Histogram;

    const MS: u64 = 1_000_000;

    #[test]
    fn parser_round_trips_basic_documents() {
        let doc = parse(r#"{"a": [1, -2.5, 1e3], "b": "x\"\\\nA", "c": null, "d": true}"#)
            .expect("parse");
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2],
            Json::Num(1000.0)
        );
        assert_eq!(doc.get("b").unwrap().as_str().unwrap(), "x\"\\\nA");
        assert_eq!(doc.get("c"), Some(&Json::Null));
        assert_eq!(doc.get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "{} trailing", "\"open"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    fn sample_run_result() -> RunResult {
        let mut hist = Histogram::latency();
        for v in [MS, 2 * MS, 5 * MS, 10 * MS] {
            hist.record(v);
        }
        let reg = MetricsRegistry::new();
        reg.counter(
            "jet_events_in_total",
            jet_core::metrics::tags(&[("vertex", "v")]),
        )
        .add(4);
        RunResult {
            hist,
            outputs: 4,
            inputs: 100,
            wall_secs: 0.5,
            virtual_secs: 3.0,
            metrics: reg.snapshot(),
            trace: None,
            diagnostics: None,
            cluster_events: Vec::new(),
            spike: None,
            attribution: Some(sample_attribution_report()),
            timeline: None,
            controller_events: Some(vec![
                ControllerEvent::Decided {
                    at: 15 * MS,
                    direction: Direction::Up,
                    occupancy: 912_345,
                    stall_rate: 2_500,
                    members: 2,
                },
                ControllerEvent::RescaleCompleted {
                    at: 40 * MS,
                    direction: Direction::Up,
                    members: 3,
                },
                ControllerEvent::CooldownEntered {
                    at: 40 * MS,
                    until: 90 * MS,
                },
            ]),
            members_final: 3,
        }
    }

    fn sample_attribution_report() -> AttributionReport {
        AttributionReport {
            observed: 100,
            sampled: 50,
            sample_shift: 1,
            bands: vec![BandWaterfall {
                band: "p99".into(),
                percentile: 99.0,
                target_nanos: 5 * MS,
                stamp: Stamp {
                    event_ts: 100 * MS,
                    emitted_at: 105 * MS,
                    latency: 5 * MS,
                },
                attribution: Attribution {
                    t0: 100 * MS,
                    t1: 105 * MS,
                    total_nanos: 5 * MS,
                    slices: vec![
                        CauseSlice {
                            cause: Cause::TaskletExec,
                            nanos: 3 * MS,
                            share: 0.6,
                            detail: "window-agg".into(),
                        },
                        CauseSlice {
                            cause: Cause::QueueWait,
                            nanos: 2 * MS,
                            share: 0.4,
                            detail: String::new(),
                        },
                    ],
                    top_cause: Cause::TaskletExec,
                    top_group: "compute",
                    blamed_vertex: Some("window-agg".into()),
                },
            }],
        }
    }

    #[test]
    fn real_bench_report_output_conforms() {
        let mut report = BenchReport::new("unit");
        report.param("query", "Q5").param("members", 2);
        report.add_run(
            "case-a",
            &[("rate", "1000".to_string())],
            &sample_run_result(),
        );
        report.add_values("case-b", &[], &[("speedup", 2.5)]);
        let doc = parse(&report.to_json()).expect("producer emits valid JSON");
        let errors = validate_bench(&doc);
        assert!(errors.is_empty(), "{errors:#?}");
    }

    #[test]
    fn keystate_fields_conform_when_consistent() {
        let mut report = BenchReport::new("fig_keyscale");
        report.add_values(
            "keys-10k-state",
            &[("keys", "10000".to_string())],
            &[
                ("keys", 10_000.0),
                ("resident_bytes", 480_000.0),
                ("resident_keys", 10_000.0),
                ("bytes_per_key", 48.0),
            ],
        );
        report.add_values("sweep", &[], &[("p9999_ratio", 1.4)]);
        let errors = validate_bench(&parse(&report.to_json()).expect("parse"));
        assert!(errors.is_empty(), "{errors:#?}");
    }

    #[test]
    fn keystate_validation_catches_a_lying_bytes_per_key() {
        let mut report = BenchReport::new("fig_keyscale");
        // bytes_per_key disagrees with resident_bytes / resident_keys.
        report.add_values(
            "keys-10k-state",
            &[],
            &[
                ("resident_bytes", 480_000.0),
                ("resident_keys", 10_000.0),
                ("bytes_per_key", 32.0),
            ],
        );
        let errors = validate_bench(&parse(&report.to_json()).expect("parse"));
        assert!(
            errors
                .iter()
                .any(|e| e.contains("bytes_per_key") && e.contains("resident_bytes")),
            "{errors:#?}"
        );
    }

    #[test]
    fn keystate_validation_catches_the_nonfinite_sentinel() {
        let mut report = BenchReport::new("fig_keyscale");
        // The producer writes -1 when a value was non-finite (empty store).
        report.add_values(
            "keys-10k-state",
            &[],
            &[("bytes_per_key", f64::NAN), ("resident_bytes", 0.0)],
        );
        let errors = validate_bench(&parse(&report.to_json()).expect("parse"));
        assert!(
            errors
                .iter()
                .any(|e| e.contains("'bytes_per_key' is -1, want >= 0")),
            "{errors:#?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("missing key 'resident_keys'")),
            "{errors:#?}"
        );
    }

    fn sample_spike_report() -> SpikeReport {
        SpikeReport {
            bench: "unit".into(),
            run_label: "crash".into(),
            threshold_nanos: 2 * MS,
            fidelity: SpikeFidelity {
                observed: 100,
                ..SpikeFidelity::default()
            },
            incidents: vec![IncidentReport {
                incident: SpikeIncident {
                    id: 0,
                    first_detected: 150 * MS,
                    last_detected: 150 * MS,
                    samples: 1,
                    peak_latency: 50 * MS,
                    peak_event_ts: 100 * MS,
                    peak_emitted_at: 150 * MS,
                    threshold: 2 * MS,
                },
                window_lo: 80 * MS,
                window_hi: 170 * MS,
                window_events: 4,
                window_truncated: 0,
                window_snapshots: 0,
                attribution: Attribution {
                    t0: 100 * MS,
                    t1: 150 * MS,
                    total_nanos: 50 * MS,
                    slices: vec![
                        CauseSlice {
                            cause: Cause::Recovery,
                            nanos: 30 * MS,
                            share: 0.6,
                            detail: "snapshot 3".into(),
                        },
                        CauseSlice {
                            cause: Cause::FaultDetection,
                            nanos: 20 * MS,
                            share: 0.4,
                            detail: "member \"1\"".into(),
                        },
                    ],
                    top_cause: Cause::Recovery,
                    top_group: "recovery",
                    blamed_vertex: None,
                },
            }],
        }
    }

    #[test]
    fn real_spike_report_output_conforms() {
        let report = sample_spike_report();
        let doc = parse(&report.to_json()).expect("producer emits valid JSON");
        let errors = validate_spike(&doc);
        assert!(errors.is_empty(), "{errors:#?}");
    }

    #[test]
    fn spike_validation_catches_a_lying_decomposition() {
        let mut report = sample_spike_report();
        report.incidents[0].attribution.slices[0].nanos = 31 * MS; // no longer sums
        let doc = parse(&report.to_json()).expect("parse");
        let errors = validate_spike(&doc);
        assert!(
            errors.iter().any(|e| e.contains("cause nanos sum")),
            "{errors:#?}"
        );
    }

    #[test]
    fn bench_attribution_catches_a_lying_waterfall() {
        let mut result = sample_run_result();
        // Break the exact-sum invariant: slices no longer sum to the band's
        // measured latency.
        result.attribution.as_mut().unwrap().bands[0]
            .attribution
            .slices[0]
            .nanos = 4 * MS;
        let mut report = BenchReport::new("unit");
        report.add_run("case-a", &[], &result);
        let errors = validate_bench(&parse(&report.to_json()).expect("parse"));
        assert!(
            errors.iter().any(|e| e.contains("cause nanos sum")),
            "{errors:#?}"
        );
    }

    #[test]
    fn bench_attribution_catches_an_inconsistent_stamp() {
        let mut result = sample_run_result();
        let band = &mut result.attribution.as_mut().unwrap().bands[0];
        // latency no longer equals emitted_at - event_ts, and the slices no
        // longer sum to it either: both violations must surface.
        band.stamp.latency = 6 * MS;
        let mut report = BenchReport::new("unit");
        report.add_run("case-a", &[], &result);
        let errors = validate_bench(&parse(&report.to_json()).expect("parse"));
        assert!(
            errors
                .iter()
                .any(|e| e.contains("latency_nanos") && e.contains("emitted_at - event_ts")),
            "{errors:#?}"
        );
    }

    #[test]
    fn real_timeline_output_conforms() {
        let timeline = Timeline::with_config(TimelineConfig {
            cadence_nanos: 10 * MS,
            capacity: 8,
        });
        let reg = MetricsRegistry::new();
        let c = reg.counter("jet_events_in_total", jet_core::metrics::tags(&[]));
        for tick in 1..=3u64 {
            c.add(100);
            timeline.record_sample(tick * 10 * MS, &reg.snapshot());
        }
        let doc = parse(&timeline.to_json("unit", "case-a")).expect("producer emits valid JSON");
        let errors = validate_timeline(&doc);
        assert!(errors.is_empty(), "{errors:#?}");
    }

    #[test]
    fn timeline_validation_catches_non_monotone_ticks_and_ragged_series() {
        let json = r#"{
            "schema": "jet-timeline-v1", "bench": "x", "run": "y",
            "cadence_nanos": 1000, "evicted_ticks": 0,
            "ticks_nanos": [1000, 3000, 2000],
            "series": [
                {"name": "jet_a", "tags": {}, "kind": "counter", "base": 0,
                 "deltas": [1, 2]},
                {"name": "jet_b", "tags": {}, "kind": "bogus", "base": 0,
                 "deltas": [1, 2, 3]}
            ]
        }"#;
        let errors = validate_timeline(&parse(json).expect("parse"));
        assert!(
            errors.iter().any(|e| e.contains("not strictly monotone")),
            "{errors:#?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("2 delta(s) for 3 tick(s)")),
            "{errors:#?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("unknown series kind 'bogus'")),
            "{errors:#?}"
        );
    }

    #[test]
    fn controller_validation_catches_bad_timelines() {
        let json = r#"{
            "bench": "x", "params": {},
            "runs": [{"label": "a", "params": {},
                "controller": {"final_members": 0, "events": [
                    {"at": 5000, "kind": "decided", "label": "scale-up",
                     "direction": "sideways", "members": 0},
                    {"at": 4000, "kind": "warp", "label": "?"}
                ]}}]
        }"#;
        let errors = validate_bench(&parse(json).expect("parse"));
        assert!(
            errors.iter().any(|e| e.contains("'final_members' is 0")),
            "{errors:#?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("'members' is 0")),
            "{errors:#?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("want \"up\" or \"down\"")),
            "{errors:#?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("unknown event kind 'warp'")),
            "{errors:#?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("'at' 4000 precedes previous event at 5000")),
            "{errors:#?}"
        );
    }

    #[test]
    fn bench_validation_catches_non_monotone_percentiles() {
        let json = r#"{
            "bench": "x", "params": {},
            "runs": [{"label": "a", "params": {},
                "latency_nanos": {"count": 4, "min": 0, "max": 10, "mean": 5.0,
                                  "p50": 6, "p90": 5, "p99": 7, "p999": 8, "p9999": 9}}]
        }"#;
        let errors = validate_bench(&parse(json).expect("parse"));
        assert!(
            errors.iter().any(|e| e.contains("not monotone")),
            "{errors:#?}"
        );
    }

    #[test]
    fn missing_keys_are_reported_with_paths() {
        let errors = validate_spike(&parse(r#"{"schema": "jet-spike-v1"}"#).expect("parse"));
        assert!(errors.iter().any(|e| e.contains("missing key 'bench'")));
        assert!(errors.iter().any(|e| e.contains("missing key 'fidelity'")));
        assert!(errors.iter().any(|e| e.contains("missing key 'incidents'")));
    }

    #[test]
    fn validate_file_dispatches_on_prefix() {
        assert!(validate_file("TRACE_fig9_q5.json", "{}").is_none());
        assert!(validate_file("BENCH_x.json", "not json").unwrap()[0].contains("not valid JSON"));
        assert!(!validate_file("SPIKE_x.json", "{}").unwrap().is_empty());
        assert!(!validate_file("TIMELINE_x.json", "{}").unwrap().is_empty());
    }
}

//! CLI entry point: `cargo run -p schema-check [results-dir]`.
//!
//! Scans `results/` for `BENCH_*.json`, `SPIKE_*.json`, and
//! `TIMELINE_*.json`, validates each against its documented schema, and
//! exits non-zero on any violation so CI never uploads a malformed artifact.
//! A missing or empty results dir is a clean pass (nothing produced yet,
//! nothing to check).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // When run via `cargo run -p schema-check`, the manifest dir is
            // xtask/schema-check; results/ sits at the workspace root.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
        });
    let mut checked = 0usize;
    let mut violations = 0usize;
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(_) => {
            println!(
                "schema-check: no results dir at {} — nothing to check",
                dir.display()
            );
            return ExitCode::SUCCESS;
        }
    };
    let mut names: Vec<_> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    names.sort();
    for path in names {
        let Some(file_name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let contents = match std::fs::read_to_string(&path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{}: unreadable: {e}", path.display());
                violations += 1;
                continue;
            }
        };
        let Some(errors) = schema_check::validate_file(file_name, &contents) else {
            continue; // not a BENCH_/SPIKE_/TIMELINE_ file
        };
        checked += 1;
        for err in &errors {
            eprintln!("{}: {err}", path.display());
        }
        violations += errors.len();
    }
    if violations == 0 {
        println!("schema-check: {checked} results file(s) conform");
        ExitCode::SUCCESS
    } else {
        eprintln!("schema-check: {violations} violation(s) in {checked} file(s)");
        ExitCode::FAILURE
    }
}

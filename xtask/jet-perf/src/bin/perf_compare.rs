//! CLI entry point:
//! `cargo run -p jet-perf --bin perf-compare [results-dir] [--strict] [--threshold <frac>]`.
//!
//! Diffs every current `results/BENCH_*.json` against its committed
//! baseline in `results/baseline/` and prints per-percentile deltas.
//! Warn-only by default so a threshold trip never blocks unrelated work;
//! `--strict` exits non-zero on any regression for a gating CI lane. A
//! bench with no baseline is reported and skipped — seed one by copying
//! the BENCH file into `results/baseline/`.

use std::path::PathBuf;
use std::process::ExitCode;

const DEFAULT_THRESHOLD: f64 = 0.25;

fn main() -> ExitCode {
    let mut strict = false;
    let mut threshold = DEFAULT_THRESHOLD;
    let mut dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--strict" => strict = true,
            "--threshold" => {
                threshold = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .unwrap_or(DEFAULT_THRESHOLD);
            }
            _ => dir = Some(PathBuf::from(a)),
        }
    }
    let dir =
        dir.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"));

    let baseline_dir = dir.join("baseline");
    if !baseline_dir.is_dir() {
        println!(
            "perf-compare: no baselines at {} — seed with `cp results/BENCH_*.json results/baseline/`",
            baseline_dir.display()
        );
        return ExitCode::SUCCESS;
    }
    let mut baselines: Vec<_> = match std::fs::read_dir(&baseline_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    baselines.sort();
    let mut compared = 0usize;
    let mut regressions = 0usize;
    for base_path in baselines {
        let name = base_path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let cur_path = dir.join(&name);
        if !cur_path.is_file() {
            println!("perf-compare: {name}: no current results (skipped)");
            continue;
        }
        let (base, cur) = match (load(&base_path), load(&cur_path)) {
            (Some(b), Some(c)) => (b, c),
            _ => return ExitCode::FAILURE,
        };
        let cmp = jet_perf::compare(&base, &cur, threshold);
        compared += 1;
        for run in &cmp.missing_runs {
            println!("perf-compare: {name}: run `{run}` missing from current results");
            regressions += 1;
        }
        for run in &cmp.new_runs {
            println!("perf-compare: {name}: run `{run}` has no baseline (new)");
        }
        for d in &cmp.deltas {
            if d.regressed {
                println!("  REGRESSED {}", jet_perf::render_delta(d));
                regressions += 1;
            }
        }
    }
    if regressions == 0 {
        println!(
            "perf-compare: {compared} bench(es) within {:.0}% of baseline",
            threshold * 100.0
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "perf-compare: {regressions} regression(s) beyond {:.0}% across {compared} bench(es){}",
            threshold * 100.0,
            if strict {
                ""
            } else {
                " (warn-only; pass --strict to gate)"
            }
        );
        if strict {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

fn load(path: &std::path::Path) -> Option<schema_check::Json> {
    let contents = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{}: unreadable: {e}", path.display());
            return None;
        }
    };
    match schema_check::parse(&contents) {
        Ok(d) => Some(d),
        Err(e) => {
            eprintln!("{}: not valid JSON: {e}", path.display());
            None
        }
    }
}

//! CLI entry point: `cargo run -p jet-perf --bin perf-history [results-dir]`.
//!
//! Appends one `jet-perf-history-v1` line per (bench, run) from every
//! `results/BENCH_*.json` to `results/history/<bench>.jsonl`. The log is
//! append-only: each invocation stamps the current commit and wall time, so
//! the same artifacts re-recorded across commits build a latency trend the
//! overwritten BENCH files cannot.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // Manifest dir is xtask/jet-perf; results/ sits at the workspace
            // root.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
        });
    let commit = commit_hash(&dir);
    let recorded_at = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(_) => {
            println!(
                "perf-history: no results dir at {} — nothing to record",
                dir.display()
            );
            return ExitCode::SUCCESS;
        }
    };
    let mut bench_files: Vec<_> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    bench_files.sort();
    let history_dir = dir.join("history");
    let mut recorded = 0usize;
    for path in bench_files {
        let contents = match std::fs::read_to_string(&path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{}: unreadable: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let doc = match schema_check::parse(&contents) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{}: not valid JSON: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let summaries = jet_perf::extract_summaries(&doc);
        if summaries.is_empty() {
            continue;
        }
        if std::fs::create_dir_all(&history_dir).is_err() {
            eprintln!("perf-history: cannot create {}", history_dir.display());
            return ExitCode::FAILURE;
        }
        let log = history_dir.join(format!("{}.jsonl", summaries[0].bench));
        let mut lines = String::new();
        for s in &summaries {
            lines.push_str(&jet_perf::history_line(s, recorded_at, &commit));
            lines.push('\n');
            recorded += 1;
        }
        let mut existing = std::fs::read_to_string(&log).unwrap_or_default();
        existing.push_str(&lines);
        if let Err(e) = std::fs::write(&log, existing) {
            eprintln!("{}: write failed: {e}", log.display());
            return ExitCode::FAILURE;
        }
        println!(
            "perf-history: {} += {} run(s) @ {commit}",
            log.display(),
            summaries.len()
        );
    }
    println!("perf-history: {recorded} run summarie(s) recorded");
    ExitCode::SUCCESS
}

/// Short hash of HEAD, or "unknown" when git is unavailable (history lines
/// must still be writable from an exported tarball).
fn commit_hash(dir: &std::path::Path) -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(dir)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

//! Cross-run performance history and regression gating over the
//! machine-readable bench artifacts.
//!
//! Two commands share this library:
//!
//! - `perf-history` extracts a one-line summary per (bench, run) from every
//!   `results/BENCH_*.json` and appends it to `results/history/<bench>.jsonl`
//!   (`jet-perf-history-v1`, one JSON object per line) — an append-only log
//!   that accretes across commits, so latency trends survive the BENCH files
//!   being overwritten by every re-run.
//! - `perf-compare` diffs the current `results/BENCH_*.json` against the
//!   committed snapshots in `results/baseline/` and reports per-percentile
//!   regressions beyond a relative threshold. It is warn-only by default
//!   (the simulation is deterministic but the baselines are refreshed
//!   manually); `--strict` turns regressions into a non-zero exit for CI.
//!
//! JSON parsing rides on the `schema-check` document model, so both
//! commands accept exactly what the validator accepts.

use schema_check::Json;
use std::fmt::Write as _;

/// One (bench, run) latency summary extracted from a BENCH document.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    pub bench: String,
    pub run: String,
    pub count: u64,
    pub p50_nanos: u64,
    pub p99_nanos: u64,
    pub p9999_nanos: u64,
    pub max_nanos: u64,
}

/// Pull the latency summaries out of a parsed `BENCH_*.json` document.
/// Runs without a `latency_nanos` block (derived-value rows like speedup
/// tables) are skipped — they carry nothing to trend.
pub fn extract_summaries(doc: &Json) -> Vec<RunSummary> {
    let bench = doc
        .get("bench")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();
    let Some(runs) = doc.get("runs").and_then(Json::as_arr) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for run in runs {
        let Some(label) = run.get("label").and_then(Json::as_str) else {
            continue;
        };
        let Some(lat) = run.get("latency_nanos") else {
            continue;
        };
        let num = |key: &str| lat.get(key).and_then(Json::as_num).unwrap_or(0.0) as u64;
        out.push(RunSummary {
            bench: bench.clone(),
            run: label.to_string(),
            count: num("count"),
            p50_nanos: num("p50"),
            p99_nanos: num("p99"),
            p9999_nanos: num("p9999"),
            max_nanos: num("max"),
        });
    }
    out
}

/// Render one `jet-perf-history-v1` JSONL line. `recorded_at` is epoch
/// seconds, `commit` the short hash of HEAD (or "unknown" outside git).
pub fn history_line(s: &RunSummary, recorded_at: u64, commit: &str) -> String {
    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"schema\": \"jet-perf-history-v1\", \"bench\": \"{}\", \"run\": \"{}\", \
         \"recorded_at\": {}, \"commit\": \"{}\", \"count\": {}, \"p50_nanos\": {}, \
         \"p99_nanos\": {}, \"p9999_nanos\": {}, \"max_nanos\": {}}}",
        json_escape(&s.bench),
        json_escape(&s.run),
        recorded_at,
        json_escape(commit),
        s.count,
        s.p50_nanos,
        s.p99_nanos,
        s.p9999_nanos,
        s.max_nanos,
    );
    line
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One stat compared between a baseline run and the current run.
#[derive(Debug, Clone)]
pub struct Delta {
    pub bench: String,
    pub run: String,
    pub stat: &'static str,
    pub base_nanos: u64,
    pub current_nanos: u64,
    /// current / base; > 1 is slower than baseline.
    pub ratio: f64,
    /// True when the relative slowdown exceeds the compare threshold.
    pub regressed: bool,
}

/// Outcome of comparing one bench document against its baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    pub deltas: Vec<Delta>,
    /// Run labels present in the baseline but missing from the current
    /// results (a silently dropped run must not pass unnoticed).
    pub missing_runs: Vec<String>,
    /// Run labels present now but absent from the baseline (informational).
    pub new_runs: Vec<String>,
}

impl Comparison {
    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas.iter().filter(|d| d.regressed)
    }
}

/// Compare the current bench document against its committed baseline.
/// `threshold` is the relative slowdown that counts as a regression
/// (0.25 = current more than 25% above baseline). Runs are matched by
/// label; the tail percentiles are what the reproduction defends, so
/// p50/p99/p99.99/max are all compared.
pub fn compare(baseline: &Json, current: &Json, threshold: f64) -> Comparison {
    let base = extract_summaries(baseline);
    let cur = extract_summaries(current);
    let mut out = Comparison::default();
    for b in &base {
        let Some(c) = cur.iter().find(|c| c.run == b.run) else {
            out.missing_runs.push(b.run.clone());
            continue;
        };
        let stats: [(&'static str, u64, u64); 4] = [
            ("p50", b.p50_nanos, c.p50_nanos),
            ("p99", b.p99_nanos, c.p99_nanos),
            ("p9999", b.p9999_nanos, c.p9999_nanos),
            ("max", b.max_nanos, c.max_nanos),
        ];
        for (stat, base_nanos, current_nanos) in stats {
            let ratio = if base_nanos == 0 {
                if current_nanos == 0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                current_nanos as f64 / base_nanos as f64
            };
            out.deltas.push(Delta {
                bench: b.bench.clone(),
                run: b.run.clone(),
                stat,
                base_nanos,
                current_nanos,
                ratio,
                regressed: ratio > 1.0 + threshold,
            });
        }
    }
    for c in &cur {
        if !base.iter().any(|b| b.run == c.run) {
            out.new_runs.push(c.run.clone());
        }
    }
    out
}

/// Human line for one delta: `fig9/Q5 p9999  12.345ms -> 13.000ms (+5.3%)`.
pub fn render_delta(d: &Delta) -> String {
    let pct = (d.ratio - 1.0) * 100.0;
    format!(
        "{}/{} {:6}  {:10.3}ms -> {:10.3}ms ({:+.1}%)",
        d.bench,
        d.run,
        d.stat,
        d.base_nanos as f64 / 1e6,
        d.current_nanos as f64 / 1e6,
        pct,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_check::parse;

    const BENCH: &str = r#"{
        "bench": "fig9", "params": {},
        "runs": [
            {"label": "Q1", "params": {},
             "latency_nanos": {"count": 100, "min": 1000, "max": 9000, "mean": 3000,
                               "p50": 2000, "p90": 4000, "p99": 5000,
                               "p999": 7000, "p9999": 8000}},
            {"label": "derived", "params": {}, "values": {"speedup": 2.0}}
        ]
    }"#;

    #[test]
    fn summaries_skip_runs_without_latency() {
        let doc = parse(BENCH).expect("parse");
        let s = extract_summaries(&doc);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].bench, "fig9");
        assert_eq!(s[0].run, "Q1");
        assert_eq!(s[0].p50_nanos, 2000);
        assert_eq!(s[0].p9999_nanos, 8000);
        assert_eq!(s[0].max_nanos, 9000);
    }

    #[test]
    fn history_lines_are_valid_json() {
        let doc = parse(BENCH).expect("parse");
        let s = &extract_summaries(&doc)[0];
        let line = history_line(s, 1_700_000_000, "abc1234");
        let parsed = parse(&line).expect("history line parses");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("jet-perf-history-v1")
        );
        assert_eq!(parsed.get("p99_nanos").and_then(Json::as_num), Some(5000.0));
        assert_eq!(parsed.get("commit").and_then(Json::as_str), Some("abc1234"));
    }

    #[test]
    fn compare_flags_regressions_beyond_threshold() {
        let base = parse(BENCH).expect("parse");
        let current = parse(&BENCH.replace("8000", "12000")).expect("parse");
        let cmp = compare(&base, &current, 0.25);
        let regressed: Vec<_> = cmp.regressions().map(|d| d.stat).collect();
        assert_eq!(regressed, vec!["p9999"], "{:#?}", cmp.deltas);
        // Within threshold: a 10% slip on p50 is noise, not a regression.
        let current = parse(&BENCH.replace("\"p50\": 2000", "\"p50\": 2200")).expect("parse");
        let cmp = compare(&base, &current, 0.25);
        assert_eq!(cmp.regressions().count(), 0, "{:#?}", cmp.deltas);
        assert!(cmp.deltas.iter().any(|d| d.stat == "p50" && d.ratio > 1.09));
    }

    #[test]
    fn compare_reports_missing_and_new_runs() {
        let base = parse(BENCH).expect("parse");
        let current = parse(&BENCH.replace("\"Q1\"", "\"Q2\"")).expect("parse");
        let cmp = compare(&base, &current, 0.25);
        assert_eq!(cmp.missing_runs, vec!["Q1"]);
        assert_eq!(cmp.new_runs, vec!["Q2"]);
        assert!(cmp.deltas.is_empty());
    }

    #[test]
    fn zero_baseline_does_not_divide_by_zero() {
        let base = parse(&BENCH.replace("\"p50\": 2000", "\"p50\": 0")).expect("parse");
        let current = parse(BENCH).expect("parse");
        let cmp = compare(&base, &current, 0.25);
        let p50 = cmp.deltas.iter().find(|d| d.stat == "p50").expect("p50");
        assert!(p50.ratio.is_infinite() && p50.regressed);
    }
}

//! Fixture-driven end-to-end tests: one positive and one negative case per
//! effect class, plus a golden test for call-chain rendering and a CLI
//! exit-code check.

use jet_analyze::{analyze_paths, Analysis, Effect};
use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn analyze_fixture(name: &str) -> Analysis {
    analyze_paths(&[fixture(name)], &[]).expect("fixture readable")
}

fn effects_found(a: &Analysis) -> Vec<Effect> {
    let mut effects: Vec<Effect> = a.violations.iter().map(|v| v.effect).collect();
    effects.dedup();
    effects
}

#[test]
fn alloc_positive_flagged() {
    let a = analyze_fixture("alloc_pos.rs");
    assert!(
        effects_found(&a).contains(&Effect::Alloc),
        "{}",
        a.render_report()
    );
}

#[test]
fn alloc_negative_clean() {
    let a = analyze_fixture("alloc_neg.rs");
    assert!(a.is_clean(), "{}", a.render_report());
}

#[test]
fn block_positive_flagged() {
    let a = analyze_fixture("block_pos.rs");
    assert!(
        effects_found(&a).contains(&Effect::Block),
        "{}",
        a.render_report()
    );
}

#[test]
fn block_negative_clean() {
    let a = analyze_fixture("block_neg.rs");
    assert!(a.is_clean(), "{}", a.render_report());
}

#[test]
fn panic_positive_flagged() {
    let a = analyze_fixture("panic_pos.rs");
    assert!(
        effects_found(&a).contains(&Effect::Panic),
        "{}",
        a.render_report()
    );
}

#[test]
fn panic_negative_clean() {
    let a = analyze_fixture("panic_neg.rs");
    assert!(a.is_clean(), "{}", a.render_report());
}

#[test]
fn instant_positive_flagged() {
    let a = analyze_fixture("instant_pos.rs");
    assert!(
        effects_found(&a).contains(&Effect::Instant),
        "{}",
        a.render_report()
    );
}

#[test]
fn instant_negative_clean() {
    let a = analyze_fixture("instant_neg.rs");
    assert!(a.is_clean(), "{}", a.render_report());
}

#[test]
fn ordering_positive_flagged() {
    let a = analyze_fixture("ordering_pos.rs");
    let v: Vec<_> = a
        .violations
        .iter()
        .filter(|v| v.effect == Effect::Ordering)
        .collect();
    assert_eq!(v.len(), 1, "{}", a.render_report());
    assert!(v[0].in_fn.contains("seq"), "keyed by field: {}", v[0].in_fn);
    assert!(
        v[0].message.contains("Release"),
        "release side named: {}",
        v[0].message
    );
}

#[test]
fn ordering_negative_clean() {
    let a = analyze_fixture("ordering_neg.rs");
    assert!(a.is_clean(), "{}", a.render_report());
}

/// Golden test: the alloc fixture must report the full multi-hop chain
/// from the `Tasklet::call` root down to the allocating call.
#[test]
fn chain_rendering_golden() {
    let a = analyze_fixture("alloc_pos.rs");
    let v = a
        .violations
        .iter()
        .find(|v| v.effect == Effect::Alloc)
        .expect("alloc violation present");
    assert_eq!(
        v.compact_chain(),
        "Producer::call \u{2192} Producer::flush_outbox \u{2192} Outbox::grow \u{2192} .push(",
        "full report:\n{}",
        a.render_report()
    );
    let rendered = v.render();
    for needle in [
        "Producer::call",
        "Producer::flush_outbox",
        "Outbox::grow",
        ".push(",
        "[alloc]",
    ] {
        assert!(
            rendered.contains(needle),
            "missing {needle} in:\n{rendered}"
        );
    }
}

/// The CLI must exit non-zero when pointed at a seeded violation, for
/// every effect class, and report the sites on stdout.
#[test]
fn cli_exit_codes() {
    for (name, expect_fail) in [
        ("alloc_pos.rs", true),
        ("block_pos.rs", true),
        ("panic_pos.rs", true),
        ("instant_pos.rs", true),
        ("ordering_pos.rs", true),
        ("alloc_neg.rs", false),
        ("ordering_neg.rs", false),
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_jet-analyze"))
            .arg("--paths")
            .arg(fixture(name))
            .output()
            .expect("spawn jet-analyze");
        assert_eq!(
            out.status.code(),
            Some(if expect_fail { 1 } else { 0 }),
            "{name}: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

// Positive fixture: `Instant::now()` taken per call on the hot path.

use std::time::Instant;

pub enum Progress {
    MadeProgress,
    NoProgress,
}

pub trait Tasklet {
    fn call(&mut self) -> Progress;
}

pub struct Stamper {
    count: u64,
}

impl Stamper {
    fn stamp(&mut self) -> u64 {
        let t = Instant::now();
        self.count += 1;
        t.elapsed().as_nanos() as u64
    }
}

impl Tasklet for Stamper {
    fn call(&mut self) -> Progress {
        self.stamp();
        Progress::MadeProgress
    }
}

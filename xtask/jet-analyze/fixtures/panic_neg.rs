// Negative fixture: the hot path handles the missing case explicitly; the
// only panic lives in a `#[cold]` helper, which is excluded from traversal.

pub enum Progress {
    MadeProgress,
    NoProgress,
}

pub trait Tasklet {
    fn call(&mut self) -> Progress;
}

pub struct Watermarker {
    last: Option<u64>,
}

impl Watermarker {
    fn advance(&mut self) -> Option<u64> {
        match self.last {
            Some(prev) => {
                self.last = Some(prev + 1);
                Some(prev)
            }
            None => None,
        }
    }

    #[cold]
    fn corrupted(&self) {
        panic!("watermark state corrupted");
    }
}

impl Tasklet for Watermarker {
    fn call(&mut self) -> Progress {
        match self.advance() {
            Some(_) => Progress::MadeProgress,
            None => Progress::NoProgress,
        }
    }
}

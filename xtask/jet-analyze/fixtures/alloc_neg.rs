// Negative fixture: the hot path writes into pre-sized storage only; the
// single allocation happens in the constructor, which is not a root.

pub enum Progress {
    MadeProgress,
    NoProgress,
}

pub trait Tasklet {
    fn call(&mut self) -> Progress;
}

pub struct RingWriter {
    slots: Vec<u64>,
    head: usize,
}

impl RingWriter {
    pub fn new(capacity: usize) -> Self {
        RingWriter {
            slots: vec![0; capacity],
            head: 0,
        }
    }

    fn store_next(&mut self, v: u64) {
        let idx = self.head % self.slots.len();
        self.slots[idx] = v;
        self.head = self.head.wrapping_add(1);
    }
}

impl Tasklet for RingWriter {
    fn call(&mut self) -> Progress {
        self.store_next(self.head as u64);
        Progress::MadeProgress
    }
}

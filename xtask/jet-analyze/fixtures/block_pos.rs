// Positive fixture: a Mutex lock on the hot path, one hop below the root.

use std::sync::Mutex;

pub enum Progress {
    MadeProgress,
    NoProgress,
}

pub trait Tasklet {
    fn call(&mut self) -> Progress;
}

pub struct SharedCounter {
    inner: Mutex<u64>,
}

impl SharedCounter {
    fn bump(&self) {
        if let Ok(mut g) = self.inner.lock() {
            *g += 1;
        }
    }
}

pub struct Metered {
    counter: SharedCounter,
}

impl Tasklet for Metered {
    fn call(&mut self) -> Progress {
        self.counter.bump();
        Progress::MadeProgress
    }
}

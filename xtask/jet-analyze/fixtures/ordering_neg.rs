// Negative fixture: the Release store on `seq` pairs with an Acquire load.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct SeqLock {
    seq: AtomicU64,
    data: AtomicU64,
}

impl SeqLock {
    pub fn publish(&self, v: u64) {
        self.data.store(v, Ordering::Relaxed);
        self.seq.store(self.seq.load(Ordering::Relaxed) + 1, Ordering::Release);
    }

    pub fn read_seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }
}

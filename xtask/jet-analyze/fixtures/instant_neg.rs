// Negative fixture: timestamps are passed in by the caller; the hot path
// never reads the clock itself.

pub enum Progress {
    MadeProgress,
    NoProgress,
}

pub trait Tasklet {
    fn call(&mut self) -> Progress;
}

pub struct Stamper {
    count: u64,
    last_nanos: u64,
}

impl Stamper {
    fn stamp(&mut self, now_nanos: u64) -> u64 {
        let delta = now_nanos.saturating_sub(self.last_nanos);
        self.last_nanos = now_nanos;
        self.count += 1;
        delta
    }
}

impl Tasklet for Stamper {
    fn call(&mut self) -> Progress {
        self.stamp(self.count);
        Progress::MadeProgress
    }
}

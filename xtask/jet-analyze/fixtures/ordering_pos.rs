// Positive fixture: a Release store on `seq` with no Acquire-side load
// anywhere — the release publish pairs with nothing.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct SeqLock {
    seq: AtomicU64,
    data: AtomicU64,
}

impl SeqLock {
    pub fn publish(&self, v: u64) {
        self.data.store(v, Ordering::Relaxed);
        self.seq.store(self.seq.load(Ordering::Relaxed) + 1, Ordering::Release);
    }

    pub fn peek(&self) -> u64 {
        // BUG (seeded): a Relaxed read cannot pair with the Release store.
        self.seq.load(Ordering::Relaxed)
    }
}

// Positive fixture: an unwrap on the hot path, one hop below the root.

pub enum Progress {
    MadeProgress,
    NoProgress,
}

pub trait Tasklet {
    fn call(&mut self) -> Progress;
}

pub struct Watermarker {
    last: Option<u64>,
}

impl Watermarker {
    fn advance(&mut self) -> u64 {
        let prev = self.last.unwrap();
        self.last = Some(prev + 1);
        prev
    }
}

impl Tasklet for Watermarker {
    fn call(&mut self) -> Progress {
        self.advance();
        Progress::MadeProgress
    }
}

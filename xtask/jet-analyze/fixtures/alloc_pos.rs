// Positive fixture: alloc reachable from a hot root through two hops.
// `call()` -> `flush_outbox()` -> `grow()` -> `Vec::push` growth.

pub enum Progress {
    MadeProgress,
    NoProgress,
}

pub trait Tasklet {
    fn call(&mut self) -> Progress;
}

pub struct Outbox {
    buf: Vec<u64>,
}

impl Outbox {
    fn grow(&mut self, v: u64) {
        self.buf.push(v);
    }
}

pub struct Producer {
    outbox: Outbox,
    next: u64,
}

impl Producer {
    fn flush_outbox(&mut self) {
        self.outbox.grow(self.next);
    }
}

impl Tasklet for Producer {
    fn call(&mut self) -> Progress {
        self.next += 1;
        self.flush_outbox();
        Progress::MadeProgress
    }
}

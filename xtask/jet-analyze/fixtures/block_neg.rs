// Negative fixture: the hot path uses an atomic counter; no lock anywhere
// reachable from the root.

use std::sync::atomic::{AtomicU64, Ordering};

pub enum Progress {
    MadeProgress,
    NoProgress,
}

pub trait Tasklet {
    fn call(&mut self) -> Progress;
}

pub struct AtomicCounter {
    count: AtomicU64,
}

impl AtomicCounter {
    fn bump(&self) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn read_count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

pub struct Metered {
    counter: AtomicCounter,
}

impl Tasklet for Metered {
    fn call(&mut self) -> Progress {
        self.counter.bump();
        if self.counter.read_count() == 0 {
            return Progress::NoProgress;
        }
        Progress::MadeProgress
    }
}

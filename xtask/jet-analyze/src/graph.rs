//! Call-graph resolution and hot-path reachability.
//!
//! Resolution is best-effort by design (see the crate docs for the
//! soundness holes). Order of preference for a method call:
//!
//! 1. receiver type known (via `self`, a struct field's declared type, or
//!    a workspace-unique field name) → that type's inherent/trait-impl
//!    methods, falling back to trait defaults;
//! 2. transparent wrappers (`Box`/`Arc`/`Rc`/`Option`/`RefCell`/...) are
//!    unwrapped; `dyn Trait` / `impl Trait` inners fan out to *all* impls;
//! 3. external-type effect tables (`Mutex::lock` → block, `Vec::push` →
//!    alloc, `Arc::clone` → exempt refcount bump);
//! 4. untyped receivers match every workspace method of that name;
//! 5. last resort: a type-unknown effect table (`.clone()` → alloc, ...).

use crate::extract::{allow_near, cold_near, Callee, ChainSeg, FnDef, Recv, Workspace};
use crate::{sort_violations, Analysis, ChainHop, Effect, SeenSites, Violation};
use std::collections::VecDeque;

/// Wrapper types whose methods mostly forward to the inner type.
const WRAPPERS: &[&str] = &[
    "Box",
    "Arc",
    "Rc",
    "Option",
    "RefCell",
    "Cell",
    "Pin",
    "ManuallyDrop",
    "UnsafeCell",
    "MaybeUninit",
    // Locks: `x.lock().m()` types `m` against the protected value (the
    // receiver walk treats the adapter call as transparent); the `lock()`
    // call itself still gets its Block effect from the typed table.
    "Mutex",
    "RwLock",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "Ref",
    "RefMut",
];

// -------------------------------------------------------- type text utils --

/// `&mut Arc<dyn Processor>` → `("Arc", Some("dyn Processor"))`; strips
/// references and leading `dyn`, reduces paths to their last segment.
pub(crate) fn split_outer(ty: &str) -> (String, Option<String>) {
    let mut s = ty.trim();
    loop {
        if let Some(rest) = s.strip_prefix('&') {
            s = rest.trim_start();
        } else if let Some(rest) = s.strip_prefix("mut ") {
            s = rest.trim_start();
        } else if let Some(rest) = s.strip_prefix("dyn ") {
            s = rest.trim_start();
        } else {
            break;
        }
    }
    let open = s.find('<');
    let head = &s[..open.unwrap_or(s.len())];
    let outer = head.rsplit("::").next().unwrap_or(head).trim().to_string();
    let inner = open.map(|o| {
        let body = &s[o + 1..];
        // Matching `>` then first top-level `,` bounds the first type arg.
        let mut depth = 1i32;
        let mut end = body.len();
        let mut comma = None;
        for (i, c) in body.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i;
                        break;
                    }
                }
                ',' if depth == 1 && comma.is_none() => comma = Some(i),
                _ => {}
            }
        }
        body[..comma.unwrap_or(end).min(end)].trim().to_string()
    });
    (outer, inner.filter(|s| !s.is_empty()))
}

/// One level of container unwrap for `xs[i].m()` receivers: `Vec<T>` → `T`,
/// `Box<[T]>` → `T`, `[T; N]` → `T`.
fn index_unwrap(ty: &str) -> Option<String> {
    let t = ty.trim();
    if let Some(rest) = t.trim_start_matches('&').trim_start().strip_prefix('[') {
        let end = rest.find([';', ']']).unwrap_or(rest.len());
        return Some(rest[..end].trim().to_string());
    }
    let (outer, inner) = split_outer(t);
    let inner = inner?;
    if inner.trim_start().starts_with('[') {
        return index_unwrap(&inner);
    }
    match outer.as_str() {
        "Vec" | "VecDeque" | "Box" | "Arc" | "Rc" => Some(inner),
        _ => None,
    }
}

// ----------------------------------------------------------- effect tables --

/// `(receiver type, method)` pairs with a known effect — or a known
/// exemption (`Arc::clone` is a refcount bump, not a deep clone).
fn typed_method_effect(outer: &str, name: &str) -> Option<Result<Effect, ()>> {
    match (outer, name) {
        ("Arc" | "Rc" | "Waker", "clone") => Some(Err(())), // exempt
        ("Mutex" | "RwLock", "lock" | "read" | "write") => Some(Ok(Effect::Block)),
        ("Condvar", "wait" | "wait_while" | "wait_timeout") => Some(Ok(Effect::Block)),
        ("Receiver", "recv" | "recv_timeout" | "iter") => Some(Ok(Effect::Block)),
        ("Instant" | "SystemTime", "elapsed" | "duration_since") => Some(Ok(Effect::Instant)),
        _ => None,
    }
}

/// Type-unknown fallback table.
fn generic_method_effect(name: &str, zero_args: bool) -> Option<Effect> {
    Some(match name {
        "clone" | "to_vec" | "to_owned" | "to_string" | "collect" | "push" | "push_back"
        | "push_front" | "push_str" | "extend" | "extend_from_slice" | "insert" | "append"
        | "reserve" | "reserve_exact" | "resize" | "split_off" | "into_boxed_slice" | "repeat"
        | "concat" | "or_insert" | "or_insert_with" => Effect::Alloc,
        "lock" | "recv" | "recv_timeout" | "wait" | "wait_while" | "wait_timeout" | "park" => {
            Effect::Block
        }
        // `.join()` on a JoinHandle blocks; `.join(", ")` on a slice
        // allocates — arity disambiguates.
        "join" => {
            if zero_args {
                Effect::Block
            } else {
                Effect::Alloc
            }
        }
        "unwrap" | "expect" => Effect::Panic,
        "elapsed" => Effect::Instant,
        _ => return None,
    })
}

/// Known-effect static paths (`Type::fn` / `module::fn`).
fn path_effect(segs: &[String]) -> Option<Effect> {
    let last = segs.last()?.as_str();
    let second = segs.len().checked_sub(2).map(|i| segs[i].as_str());
    match (second, last) {
        (Some("Instant" | "SystemTime"), "now") => Some(Effect::Instant),
        (Some("Box" | "Arc" | "Rc"), "new") => Some(Effect::Alloc),
        (
            Some("Vec" | "String" | "HashMap" | "HashSet" | "BTreeMap" | "VecDeque"),
            "with_capacity",
        )
        | (Some("Vec" | "String"), "from") => Some(Effect::Alloc),
        _ => {
            if segs.iter().any(|s| s == "thread")
                && matches!(last, "sleep" | "sleep_ms" | "park" | "park_timeout")
            {
                Some(Effect::Block)
            } else {
                None
            }
        }
    }
}

// ------------------------------------------------------------- resolution --

pub(crate) enum Resolved {
    Edges(Vec<usize>),
    External(Effect),
    Nothing,
}

fn dispatch_type(ws: &Workspace, ty: &str, name: &str) -> Option<Vec<usize>> {
    let key = (ty.to_string(), name.to_string());
    if let Some(ids) = ws.by_type_method.get(&key) {
        return Some(ids.clone());
    }
    // Unoverridden trait default: every trait this type implements.
    let mut ids = Vec::new();
    for (tr, self_ty) in &ws.impls {
        if self_ty == ty {
            if let Some(&d) = ws.trait_defaults.get(&(tr.clone(), name.to_string())) {
                ids.push(d);
            }
        }
    }
    if ids.is_empty() {
        None
    } else {
        Some(ids)
    }
}

/// `dyn Trait` receivers: every impl of the trait, plus the default body.
fn dispatch_trait(ws: &Workspace, tr: &str, name: &str) -> Option<Vec<usize>> {
    let mut ids = ws
        .by_trait_method
        .get(&(tr.to_string(), name.to_string()))
        .cloned()
        .unwrap_or_default();
    if let Some(&d) = ws.trait_defaults.get(&(tr.to_string(), name.to_string())) {
        ids.push(d);
    }
    if ids.is_empty() {
        None
    } else {
        Some(ids)
    }
}

/// Declared type of a field/local name, seen from `caller`'s self type.
fn field_type(ws: &Workspace, caller: &FnDef, name: &str) -> Option<String> {
    if let Some(self_ty) = &caller.self_ty {
        if let Some(fields) = ws.fields.get(self_ty) {
            if let Some(ty) = fields.get(name) {
                return Some(ty.clone());
            }
        }
    }
    ws.field_unique_type.get(name).cloned()
}

/// Declared type of a chain head: fn parameter, then `self` field, then
/// globally-unique field name, then `Some(x)`/`Ok(x)` alias payload.
fn head_type(ws: &Workspace, caller: &FnDef, name: &str) -> Option<String> {
    let direct = |n: &str| {
        caller
            .params
            .get(n)
            .cloned()
            .or_else(|| field_type(ws, caller, n))
    };
    if let Some(t) = direct(name) {
        return Some(t);
    }
    // Follow local aliases: `Some(o) => ...` makes `o` the payload of the
    // source (strip one `Option`/`Result` layer per payload hop);
    // `let h = self.inner.lock();` keeps the source's type as-is.
    let mut name = name.to_string();
    let mut unwraps = 0usize;
    for _ in 0..4 {
        let (src, payload) = caller.aliases.get(&name)?;
        name = src.clone();
        unwraps += usize::from(*payload);
        if let Some(mut t) = direct(&name) {
            for _ in 0..unwraps {
                let (outer, inner) = split_outer(&t);
                match (outer.as_str(), inner) {
                    ("Option" | "Result", Some(i)) => t = i,
                    _ => break,
                }
            }
            return Some(t);
        }
    }
    None
}

/// Peel wrapper layers off `ty` until a workspace type or trait is
/// exposed; `None` when the chain bottoms out in an external type.
fn reduce_to_workspace(ws: &Workspace, ty: &str) -> Option<String> {
    let mut t = ty.to_string();
    for _ in 0..8 {
        let (outer, inner) = split_outer(&t);
        if ws.fields.contains_key(&outer) || ws.types.contains(&outer) || ws.traits.contains(&outer)
        {
            return Some(outer);
        }
        match inner {
            Some(i) if WRAPPERS.contains(&outer.as_str()) => t = i,
            _ => return None,
        }
    }
    None
}

/// Full left-to-right walk of an anchored `head.f1[..].f2` chain through
/// workspace struct field maps. `None` on any untypable hop.
fn walk_chain(ws: &Workspace, caller: &FnDef, segs: &[ChainSeg], anchored: bool) -> Option<String> {
    if !anchored {
        return None;
    }
    let head = &segs[0];
    let mut ty = if head.name == "self" {
        caller.self_ty.clone()?
    } else {
        let mut t = head_type(ws, caller, &head.name)?;
        if head.indexed {
            t = index_unwrap(&t)?;
        }
        t
    };
    for seg in &segs[1..] {
        let owner = reduce_to_workspace(ws, &ty)?;
        let mut next = ws.fields.get(&owner)?.get(&seg.name)?.clone();
        if seg.indexed {
            next = index_unwrap(&next)?;
        }
        ty = next;
    }
    Some(ty)
}

/// Best-effort receiver-chain type: full anchored walk first, falling
/// back to the last hop's field name when it is unique workspace-wide.
fn chain_type(ws: &Workspace, caller: &FnDef, segs: &[ChainSeg], anchored: bool) -> Option<String> {
    walk_chain(ws, caller, segs, anchored).or_else(|| {
        let last = segs.last()?;
        let mut t = field_type(ws, caller, &last.name)?;
        if last.indexed {
            t = index_unwrap(&t)?;
        }
        Some(t)
    })
}

fn resolve_method(
    ws: &Workspace,
    caller: &FnDef,
    name: &str,
    recv: &Recv,
    zero_args: bool,
) -> Resolved {
    let mut ty: Option<String> = match recv {
        Recv::SelfDirect => caller.self_ty.clone(),
        Recv::Chain { segs, anchored } => chain_type(ws, caller, segs, *anchored),
        Recv::Other => None,
    };
    let mut hops = 0;
    while let Some(t) = ty.take() {
        hops += 1;
        if hops > 8 {
            break;
        }
        let (outer, inner) = split_outer(&t);
        match typed_method_effect(&outer, name) {
            Some(Ok(e)) => return Resolved::External(e),
            Some(Err(())) => return Resolved::Nothing, // exempt
            None => {}
        }
        if ws.traits.contains(&outer) {
            if let Some(ids) = dispatch_trait(ws, &outer, name) {
                return Resolved::Edges(ids);
            }
            return match generic_method_effect(name, zero_args) {
                Some(e) => Resolved::External(e),
                None => Resolved::Nothing,
            };
        }
        if ws.types.contains(&outer) {
            if let Some(ids) = dispatch_type(ws, &outer, name) {
                return Resolved::Edges(ids);
            }
            // Derived/forwarded method on a workspace type (`.clone()` on
            // an owning struct is a deep clone): fall to the generic table.
            return match generic_method_effect(name, zero_args) {
                Some(e) => Resolved::External(e),
                None => Resolved::Nothing,
            };
        }
        if WRAPPERS.contains(&outer.as_str()) {
            if let Some(i) = inner {
                ty = Some(i);
                continue;
            }
        }
        // External non-wrapper container: type-unknown table.
        return match generic_method_effect(name, zero_args) {
            Some(e) => Resolved::External(e),
            None => Resolved::Nothing,
        };
    }
    // No type information at all. Prefer the effect tables: an untyped
    // `.push(` is far more likely `Vec::push` than a workspace method, and
    // the conservative answer (report the effect at the call site) is
    // also the right one when it *is* a workspace method that allocates.
    if let Some(e) = generic_method_effect(name, zero_args) {
        return Resolved::External(e);
    }
    // Std-idiom names (`MaybeUninit::write`, `ptr::read`, atomics) would
    // produce wild false edges if fanned out by name alone.
    const NEVER_FAN_OUT: &[&str] = &[
        "write",
        "read",
        "assume_init",
        "load",
        "store",
        "get",
        "set",
        "take",
        "replace",
        "new",
        "next",
        "len",
        "min",
        "max",
        "iter",
        "keys",
        "values",
        "get_mut",
        "as_ref",
        "as_mut",
        // Iterator / Option / Result adapter names.
        "map",
        "filter",
        "filter_map",
        "flat_map",
        "for_each",
        "fold",
        "zip",
        "enumerate",
        "rev",
        "cloned",
        "copied",
        "flatten",
        "any",
        "all",
        "find",
        "position",
        "count",
        "sum",
        "last",
        "nth",
        "chunks",
        "windows",
        "map_or",
        "and_then",
        "or_else",
        "unwrap_or",
        "unwrap_or_else",
        "unwrap_or_default",
        "ok_or",
        "ok",
        "err",
        // Std collection ops that never allocate.
        "remove",
        "is_empty",
        "clear",
        "contains",
        "contains_key",
        "pop",
        "pop_front",
        "pop_back",
        "front",
        "back",
        "first",
        "swap",
    ];
    if NEVER_FAN_OUT.contains(&name) {
        return Resolved::Nothing;
    }
    match ws.by_method_name.get(name) {
        Some(ids) => Resolved::Edges(ids.clone()),
        None => Resolved::Nothing,
    }
}

fn resolve_path(ws: &Workspace, caller: &FnDef, segs: &[String]) -> Resolved {
    if segs.len() == 1 {
        let s = &segs[0];
        if s.chars().next().is_some_and(char::is_uppercase) {
            return Resolved::Nothing; // tuple-struct / variant constructor
        }
        if let Some(ids) = ws.by_free_name.get(s) {
            return Resolved::Edges(ids.clone());
        }
        return Resolved::Nothing;
    }
    let last = segs.last().unwrap();
    let second = &segs[segs.len() - 2];
    let type_name = if second == "Self" {
        caller.self_ty.clone()
    } else {
        Some(second.clone())
    };
    if let Some(t) = &type_name {
        if ws.types.contains(t) {
            if let Some(ids) = dispatch_type(ws, t, last) {
                return Resolved::Edges(ids);
            }
            return Resolved::Nothing; // assoc const/ctor/variant path
        }
        if ws.traits.contains(t) {
            if let Some(ids) = dispatch_trait(ws, t, last) {
                return Resolved::Edges(ids);
            }
            return Resolved::Nothing;
        }
    }
    if let Some(e) = path_effect(segs) {
        return Resolved::External(e);
    }
    if last.chars().next().is_some_and(char::is_lowercase) {
        if let Some(ids) = ws.by_free_name.get(last) {
            return Resolved::Edges(ids.clone());
        }
    }
    Resolved::Nothing
}

// --------------------------------------------------------------- root set --

enum RootSpec {
    /// Every impl (and default) of these trait methods.
    Trait(&'static str, &'static [&'static str]),
    /// Inherent methods of a named type.
    Type(&'static str, &'static [&'static str]),
    /// Methods defined in files whose path ends with the suffix.
    FileMethods(&'static str, &'static [&'static str]),
    /// Free fns in files whose path ends with the suffix.
    FileFns(&'static str, &'static [&'static str]),
}

/// The hot root set (crate docs: every entry point that runs per-record on
/// a shared cooperative worker).
const ROOTS: &[RootSpec] = &[
    RootSpec::Trait("Tasklet", &["call"]),
    RootSpec::Trait(
        "Processor",
        &[
            "process",
            "try_process_watermark",
            "tick",
            "complete",
            "complete_edge",
        ],
    ),
    RootSpec::FileMethods(
        "spsc.rs",
        &[
            "offer",
            "offer_batch",
            "poll",
            "drain_batch",
            "drain_batch_while",
            "drain_into",
        ],
    ),
    RootSpec::FileMethods(
        "conveyor.rs",
        &[
            "poll_lane",
            "poll_any",
            "drain",
            "drain_lane_batch_while",
            "drain_lanes_batch",
            "peek_lane",
        ],
    ),
    RootSpec::Type("TraceWriter", &["record", "record_call"]),
    RootSpec::Type(
        "OutboundCollector",
        &["offer_event", "offer_event_run", "offer_to_all"],
    ),
    RootSpec::FileFns(
        "exec.rs",
        &[
            "worker_loop",
            "worker_loop_observed",
            "worker_loop_fair",
            "observed_call",
            "run_sequential",
        ],
    ),
];

fn root_ids(ws: &Workspace) -> Vec<usize> {
    let mut ids = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        let is_root = ROOTS.iter().any(|spec| match spec {
            RootSpec::Trait(tr, names) => {
                f.trait_name.as_deref() == Some(*tr) && names.contains(&f.name.as_str())
            }
            RootSpec::Type(ty, names) => {
                !f.is_default
                    && f.self_ty.as_deref() == Some(*ty)
                    && names.contains(&f.name.as_str())
            }
            RootSpec::FileMethods(suffix, names) => {
                f.file.ends_with(suffix) && f.self_ty.is_some() && names.contains(&f.name.as_str())
            }
            RootSpec::FileFns(suffix, names) => {
                f.file.ends_with(suffix) && f.self_ty.is_none() && names.contains(&f.name.as_str())
            }
        });
        if is_root && !f.cold {
            ids.push(i);
        }
    }
    ids
}

// -------------------------------------------------------------- traversal --

/// Is this effect at this site suppressed by an inline annotation?
fn suppressed(ws: &Workspace, f: &FnDef, line: usize, effect: Effect) -> bool {
    if f.allows.contains(&effect) {
        return true;
    }
    if allow_near(ws, &f.file, line, effect) {
        return true;
    }
    // The instant class predates this tool: jet-lint rule 4 escapes count.
    effect == Effect::Instant
        && ws
            .comment_window(&f.file, line, 2)
            .iter()
            .any(|c| c.contains("jet-lint: allow(instant)") || c.contains("throttled"))
}

pub(crate) fn analyze(ws: &Workspace) -> Analysis {
    let mut analysis = Analysis::default();
    let roots = root_ids(ws);
    analysis.roots = roots.len();
    analysis.fns_indexed = ws.fns.len();

    // BFS with parent pointers → shortest root-to-effect chains.
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; ws.fns.len()];
    let mut visited = vec![false; ws.fns.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in &roots {
        if !visited[r] {
            visited[r] = true;
            queue.push_back(r);
        }
    }
    let mut seen: SeenSites = SeenSites::new();
    let mut violations = Vec::new();
    let mut suppressed_count = 0usize;

    let report = |f: &FnDef,
                  id: usize,
                  line: usize,
                  effect: Effect,
                  pattern: String,
                  parent: &[Option<(usize, usize)>],
                  seen: &mut SeenSites,
                  violations: &mut Vec<Violation>,
                  suppressed_count: &mut usize| {
        if suppressed(ws, f, line, effect) || cold_near(ws, &f.file, line) {
            *suppressed_count += 1;
            return;
        }
        let key = (effect, f.file.clone(), line, pattern.clone());
        if seen.contains_key(&key) {
            return;
        }
        seen.insert(key, ());
        // Rebuild the root → here chain from the parent pointers.
        let mut hops = Vec::new();
        let mut cur = id;
        loop {
            let hop_fn = &ws.fns[cur];
            hops.push(ChainHop {
                fn_name: hop_fn.short_name(),
                file: hop_fn.file.clone(),
                line: hop_fn.line,
            });
            match parent[cur] {
                Some((p, _)) => cur = p,
                None => break,
            }
        }
        hops.reverse();
        let root_name = hops[0].fn_name.clone();
        violations.push(Violation {
            effect,
            file: f.file.clone(),
            line,
            pattern: pattern.clone(),
            in_fn: f.qualified(),
            chain: hops,
            message: format!("forbidden {effect} reachable from hot root {root_name}"),
        });
    };

    while let Some(id) = queue.pop_front() {
        let f = &ws.fns[id];
        for m in &f.macro_effects {
            report(
                f,
                id,
                m.line,
                m.effect,
                m.pattern.clone(),
                &parent,
                &mut seen,
                &mut violations,
                &mut suppressed_count,
            );
        }
        for call in &f.calls {
            // A call-site cold marker cuts the edge (and any effect there).
            if cold_near(ws, &f.file, call.line) {
                continue;
            }
            let resolved = match &call.callee {
                Callee::Method {
                    name,
                    recv,
                    zero_args,
                } => resolve_method(ws, f, name, recv, *zero_args),
                Callee::Path { segs } => resolve_path(ws, f, segs),
            };
            match resolved {
                Resolved::External(effect) => {
                    let pattern = match &call.callee {
                        Callee::Method { name, .. } => format!(".{name}("),
                        Callee::Path { segs } => format!("{}(", segs.join("::")),
                    };
                    report(
                        f,
                        id,
                        call.line,
                        effect,
                        pattern,
                        &parent,
                        &mut seen,
                        &mut violations,
                        &mut suppressed_count,
                    );
                }
                Resolved::Edges(targets) => {
                    for t in targets {
                        if !visited[t] && !ws.fns[t].cold {
                            visited[t] = true;
                            parent[t] = Some((id, call.line));
                            queue.push_back(t);
                        }
                    }
                }
                Resolved::Nothing => {}
            }
        }
    }

    sort_violations(&mut violations);
    analysis.violations = violations;
    analysis.suppressed = suppressed_count;
    analysis
}

//! Hand-rolled parser for the TOML subset `analyze-baseline.toml` uses
//! (no registry access, so no real `toml` crate): `[[allow]]` tables with
//! `key = "value"` string entries and `#` comments. Every entry must carry
//! a non-empty `reason` — the baseline is an audit trail, not a mute
//! button.

/// One audited, allowed violation.
#[derive(Debug, Clone, Default)]
pub struct BaselineEntry {
    /// Effect class name (`alloc`, `block`, `panic`, `instant`, `ordering`).
    pub effect: String,
    /// Qualified containing fn (`crates/.../file.rs::Type::fn`) or, for
    /// the ordering pass, `field:<name>`.
    pub site: String,
    /// Matched pattern text (`` .push_back( ``, `format!`, `release-unpaired`).
    pub pattern: String,
    /// Why this site is safe. Required.
    pub reason: String,
}

impl BaselineEntry {
    pub fn matches(&self, key: &(String, String, String)) -> bool {
        self.effect == key.0 && self.site == key.1 && self.pattern == key.2
    }
}

/// Parse the baseline file. Errors carry 1-based line numbers.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut entries: Vec<BaselineEntry> = Vec::new();
    let mut in_entry = false;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            entries.push(BaselineEntry::default());
            in_entry = true;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {lineno}: unknown table `{line}` (only [[allow]] is supported)"
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "line {lineno}: expected `key = \"value\"`, got `{line}`"
            ));
        };
        if !in_entry {
            return Err(format!(
                "line {lineno}: `{}` appears before the first [[allow]] table",
                key.trim()
            ));
        }
        let value = value.trim();
        let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            return Err(format!(
                "line {lineno}: value must be a double-quoted string, got `{value}`"
            ));
        };
        let entry = entries.last_mut().expect("in_entry implies an entry");
        let slot = match key.trim() {
            "effect" => &mut entry.effect,
            "site" => &mut entry.site,
            "pattern" => &mut entry.pattern,
            "reason" => &mut entry.reason,
            other => {
                return Err(format!(
                    "line {lineno}: unknown key `{other}` (expected effect/site/pattern/reason)"
                ))
            }
        };
        if !slot.is_empty() {
            return Err(format!("line {lineno}: duplicate key `{}`", key.trim()));
        }
        *slot = value.to_string();
    }
    for (n, e) in entries.iter().enumerate() {
        if e.effect.is_empty() || e.site.is_empty() || e.pattern.is_empty() {
            return Err(format!(
                "entry {}: effect, site, and pattern are all required",
                n + 1
            ));
        }
        if crate::Effect::parse(&e.effect).is_none() {
            return Err(format!(
                "entry {}: unknown effect `{}` (known: alloc, block, panic, instant, ordering)",
                n + 1,
                e.effect
            ));
        }
        if e.reason.trim().len() < 8 {
            return Err(format!(
                "entry {} ({} | {}): reason is required — explain why this audited site is safe",
                n + 1,
                e.effect,
                e.site
            ));
        }
    }
    Ok(entries)
}

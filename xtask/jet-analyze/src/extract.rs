//! Per-file extraction: turn parsed items into [`FnDef`]s with raw call
//! sites, macro effect sites, and annotation state, plus the struct-field
//! and impl indexes the resolver needs.

use crate::Effect;
use std::collections::{BTreeMap, BTreeSet};
use syn::{parse_file, Item, ItemFn, Token, TokenKind};

/// Adapter methods whose return forwards to the receiver's protected /
/// inner value for typing purposes: `x.lock().m()` types `m` against
/// what `x` wraps (in concert with the lock/cell entries in WRAPPERS).
pub(crate) const TRANSPARENT: &[&str] = &[
    "lock",
    "read",
    "write",
    "borrow",
    "borrow_mut",
    "as_ref",
    "as_mut",
    "as_deref",
    "as_deref_mut",
    "get_ref",
    "get_mut",
    "unwrap",
    "expect",
];

/// One segment of a receiver chain: `inputs[oi]` → `{name: "inputs",
/// indexed: true}` (indexing unwraps one container level during typing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ChainSeg {
    pub name: String,
    pub indexed: bool,
}

/// How a method call's receiver was spelled — the input to type resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Recv {
    /// `self.m()`
    SelfDirect,
    /// `head.f1.f2.m()`; `segs[0]` is the head. `anchored` is false when
    /// the chain was cut at a non-ident head (`foo().bar.m()`), in which
    /// case only the trailing segments are known.
    Chain { segs: Vec<ChainSeg>, anchored: bool },
    /// Parenthesised expression / literal / method-chain receiver.
    Other,
}

#[derive(Debug, Clone)]
pub(crate) enum Callee {
    Method {
        name: String,
        recv: Recv,
        zero_args: bool,
    },
    Path {
        segs: Vec<String>,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct CallSite {
    pub line: usize,
    pub callee: Callee,
}

#[derive(Debug, Clone)]
pub(crate) struct EffectSite {
    pub line: usize,
    pub effect: Effect,
    pub pattern: String,
}

/// One function in the workspace call graph.
#[derive(Debug)]
pub(crate) struct FnDef {
    pub file: String,
    /// `Some(Type)` for impl methods, `Some(Trait)` for trait defaults.
    pub self_ty: Option<String>,
    /// `Some(Trait)` when this is `impl Trait for _` or a trait default.
    pub trait_name: Option<String>,
    /// True for a trait-declared default method body.
    pub is_default: bool,
    pub name: String,
    pub line: usize,
    /// `#[cold]` or `// jet-analyze: cold` above the decl: excluded from
    /// hot-path traversal entirely.
    pub cold: bool,
    /// Effect classes allowed fn-wide via an annotation above the decl.
    pub allows: Vec<Effect>,
    /// Typed parameters, `name -> type text` (`&`/`mut` stripped).
    pub params: BTreeMap<String, String>,
    /// Local bindings: `alias -> (source name, is_payload)`. Payload
    /// aliases come from `Some(x)`/`Ok(x)` destructuring; plain aliases
    /// from `let h = self.inner.lock();`-style field-chain bindings.
    pub aliases: BTreeMap<String, (String, bool)>,
    pub calls: Vec<CallSite>,
    /// Direct effects from macro invocations (`panic!`, `format!`, ...).
    pub macro_effects: Vec<EffectSite>,
    /// Raw body tokens, kept for the ordering pass (it needs call
    /// arguments, which the call list does not carry).
    pub raw_body: Vec<Token>,
}

impl FnDef {
    /// `Type::name` or bare `name` — the chain-hop display form.
    pub fn short_name(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{}::{}", t, self.name),
            None => self.name.clone(),
        }
    }

    /// `crates/.../file.rs::Type::name` — the baseline `site` form.
    pub fn qualified(&self) -> String {
        format!("{}::{}", self.file, self.short_name())
    }
}

/// Everything extracted from all files, plus resolver indexes.
#[derive(Debug, Default)]
pub(crate) struct Workspace {
    pub fns: Vec<FnDef>,
    /// Per-file comment text by 1-based line (`comments[file][line-1]`).
    pub comments: BTreeMap<String, Vec<String>>,
    /// Struct name → field name → type text.
    pub fields: BTreeMap<String, BTreeMap<String, String>>,
    /// `(trait, self_ty)` pairs from `impl Trait for Type`.
    pub impls: Vec<(String, String)>,
    // ----- indexes (built once after extraction) -----
    pub types: BTreeSet<String>,
    pub traits: BTreeSet<String>,
    pub by_type_method: BTreeMap<(String, String), Vec<usize>>,
    pub by_trait_method: BTreeMap<(String, String), Vec<usize>>,
    pub trait_defaults: BTreeMap<(String, String), usize>,
    pub by_method_name: BTreeMap<String, Vec<usize>>,
    pub by_free_name: BTreeMap<String, Vec<usize>>,
    /// Field name → type text, when every declaration of that field name
    /// in the workspace agrees on the type (used to type bare locals that
    /// alias fields, and `x.field.m()` chains through foreign structs).
    pub field_unique_type: BTreeMap<String, String>,
}

impl Workspace {
    pub fn build_indexes(&mut self) {
        for (i, f) in self.fns.iter().enumerate() {
            match (&f.self_ty, f.is_default) {
                (Some(ty), false) => {
                    self.by_type_method
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(i);
                    self.by_method_name
                        .entry(f.name.clone())
                        .or_default()
                        .push(i);
                    self.types.insert(ty.clone());
                }
                (Some(tr), true) => {
                    self.trait_defaults.insert((tr.clone(), f.name.clone()), i);
                    self.by_method_name
                        .entry(f.name.clone())
                        .or_default()
                        .push(i);
                }
                (None, _) => {
                    self.by_free_name.entry(f.name.clone()).or_default().push(i);
                }
            }
            if let Some(tr) = &f.trait_name {
                if !f.is_default {
                    self.by_trait_method
                        .entry((tr.clone(), f.name.clone()))
                        .or_default()
                        .push(i);
                }
                self.traits.insert(tr.clone());
            }
        }
        for name in self.fields.keys() {
            self.types.insert(name.clone());
        }
        let mut by_field: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for fields in self.fields.values() {
            for (name, ty) in fields {
                by_field.entry(name.clone()).or_default().insert(ty.clone());
            }
        }
        for (name, tys) in by_field {
            if tys.len() == 1 {
                self.field_unique_type
                    .insert(name, tys.into_iter().next().unwrap());
            }
        }
    }

    /// Comment text on `line` or up to `span` lines above it.
    pub fn comment_window(&self, file: &str, line: usize, span: usize) -> Vec<&str> {
        let Some(comments) = self.comments.get(file) else {
            return Vec::new();
        };
        let lo = line.saturating_sub(span).max(1);
        (lo..=line)
            .filter_map(|l| comments.get(l - 1))
            .map(String::as_str)
            .filter(|s| !s.is_empty())
            .collect()
    }
}

// ------------------------------------------------------------ annotations --

/// Parse every `jet-analyze: allow(a, b)` occurrence in a comment line.
/// Returns `(classes, has_reason)` per occurrence; unknown class names come
/// back as errors via `None` entries in `classes`.
pub(crate) fn scan_allows(text: &str) -> Vec<(Vec<Option<Effect>>, bool)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(idx) = rest.find("jet-analyze: allow(") {
        let after = &rest[idx + "jet-analyze: allow(".len()..];
        let Some(close) = after.find(')') else { break };
        let classes: Vec<Option<Effect>> = after[..close]
            .split(',')
            .map(|c| Effect::parse(c.trim()))
            .collect();
        let tail = &after[close + 1..];
        let tail_end = tail.find("jet-analyze:").unwrap_or(tail.len());
        out.push((classes, has_reason(&tail[..tail_end])));
        rest = tail;
    }
    out
}

/// A reason is at least a few words of prose after the annotation marker.
fn has_reason(tail: &str) -> bool {
    tail.chars().filter(|c| c.is_alphanumeric()).count() >= 3
}

/// Does any line in the window carry `jet-analyze: allow(<class>)`?
pub(crate) fn allow_near(ws: &Workspace, file: &str, line: usize, class: Effect) -> bool {
    ws.comment_window(file, line, 2).iter().any(|c| {
        scan_allows(c)
            .iter()
            .any(|(classes, _)| classes.contains(&Some(class)))
    })
}

/// Does any line in the window mark the site cold?
pub(crate) fn cold_near(ws: &Workspace, file: &str, line: usize) -> bool {
    ws.comment_window(file, line, 2)
        .iter()
        .any(|c| c.contains("jet-analyze: cold"))
}

/// File-wide annotation hygiene: every `allow(...)` needs a known class
/// and a reason; every `cold` marker needs a reason. This is how the
/// "baseline must have no unexplained entries" rule extends to inline
/// escapes.
fn check_annotations(file: &str, comments: &[String], errors: &mut Vec<String>) {
    for (i, c) in comments.iter().enumerate() {
        if c.is_empty() {
            continue;
        }
        let line = i + 1;
        for (classes, reasoned) in scan_allows(c) {
            if classes.iter().any(Option::is_none) {
                errors.push(format!(
                    "{file}:{line}: jet-analyze: allow(...) names an unknown effect class \
                     (known: alloc, block, panic, instant, ordering)"
                ));
            }
            if !reasoned {
                errors.push(format!(
                    "{file}:{line}: jet-analyze: allow(...) has no reason — write \
                     `// jet-analyze: allow(<class>) — <why this site is safe>`"
                ));
            }
        }
        let mut rest = c.as_str();
        while let Some(idx) = rest.find("jet-analyze: cold") {
            let tail = &rest[idx + "jet-analyze: cold".len()..];
            let tail_end = tail.find("jet-analyze:").unwrap_or(tail.len());
            if !has_reason(&tail[..tail_end]) {
                errors.push(format!(
                    "{file}:{line}: jet-analyze: cold has no reason — write \
                     `// jet-analyze: cold — <why this path is off the hot path>`"
                ));
            }
            rest = tail;
        }
    }
}

// -------------------------------------------------------------- cfg prune --

/// Items compiled out of the release binary (tests, loom model builds) are
/// invisible to the hot path. `cfg(not(loom))` is the *release* side and
/// must stay in.
fn cfg_pruned(attrs: &[String]) -> bool {
    attrs.iter().any(|a| {
        if a == "test" {
            return true;
        }
        if !a.starts_with("cfg") {
            return false;
        }
        for gate in ["test", "loom"] {
            let mut rest = a.as_str();
            while let Some(idx) = rest.find(gate) {
                // Reject matches inside larger idents (e.g. `testable`).
                let before = rest[..idx].chars().next_back();
                let after = rest[idx + gate.len()..].chars().next();
                let whole = !before.is_some_and(|c| c.is_alphanumeric() || c == '_')
                    && !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
                if whole && !rest[..idx].trim_end().ends_with("not(") {
                    return true;
                }
                rest = &rest[idx + gate.len()..];
            }
        }
        false
    })
}

// ------------------------------------------------------------ body scan --

/// Control-flow keywords that can directly precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "move",
    "in", "as", "ref", "unsafe", "await", "yield", "where", "dyn",
];

fn macro_effect(name: &str) -> Option<Effect> {
    Some(match name {
        "panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq"
        | "assert_ne" | "format" => Effect::Panic,
        "vec" => Effect::Alloc,
        "println" | "eprintln" | "print" | "eprint" | "dbg" => Effect::Block,
        // debug_assert* compiles out of release builds; write!/log macros
        // are target-dependent and audited by jet-lint instead.
        _ => return None,
    })
}

/// `b[j]` is `<`; return the index just past the matching `>` (arrow-aware:
/// `->` does not close).
fn skip_angles(b: &[Token], mut j: usize) -> usize {
    let mut depth = 0i32;
    let mut prev_minus = false;
    while j < b.len() {
        match &b[j].kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('>') if !prev_minus => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        prev_minus = b[j].is_punct('-');
        j += 1;
    }
    j
}

/// Walk back from the `.` of a method call, collecting the whole
/// `head.field[idx].field` receiver chain. (Also used by the ordering
/// pass, hence the visibility.)
pub(crate) fn receiver_pub(b: &[Token], dot: usize) -> Recv {
    let mut segs: Vec<ChainSeg> = Vec::new();
    let mut j = dot; // b[j] is the `.` left of the method name
    loop {
        if j == 0 {
            break;
        }
        let mut k = j - 1;
        let mut indexed = false;
        // Skip index groups (`xs[i]`, `m[a][b]`) and transparent adapter
        // calls (`x.lock().m()` — `m` is typed against what `x` protects).
        loop {
            if b[k].is_punct(']') {
                let mut depth = 0i32;
                loop {
                    if b[k].is_punct(']') {
                        depth += 1;
                    } else if b[k].is_punct('[') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if k == 0 {
                        return finish(segs, false);
                    }
                    k -= 1;
                }
                indexed = true;
                if k == 0 {
                    return finish(segs, false);
                }
                k -= 1;
                continue;
            }
            if b[k].is_punct(')') {
                let mut depth = 0i32;
                loop {
                    if b[k].is_punct(')') {
                        depth += 1;
                    } else if b[k].is_punct('(') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if k == 0 {
                        return finish(segs, false);
                    }
                    k -= 1;
                }
                // `b[k]` is the `(`; require a `.adapter` before it.
                if k < 3
                    || !b[k - 1].ident().is_some_and(|a| TRANSPARENT.contains(&a))
                    || !b[k - 2].is_punct('.')
                {
                    return finish(segs, false);
                }
                k -= 3;
                continue;
            }
            break;
        }
        match &b[k].kind {
            TokenKind::Ident(a) if a == "self" && segs.is_empty() && !indexed => {
                return Recv::SelfDirect;
            }
            TokenKind::Ident(a) => {
                segs.push(ChainSeg {
                    name: a.clone(),
                    indexed,
                });
                if a == "self" {
                    // Head reached; `self` cannot be further qualified.
                    segs.reverse();
                    return Recv::Chain {
                        segs,
                        anchored: true,
                    };
                }
                if k >= 1 && b[k - 1].is_punct('.') {
                    j = k - 1;
                    continue;
                }
                // Clean ident head (param or local).
                segs.reverse();
                return Recv::Chain {
                    segs,
                    anchored: true,
                };
            }
            _ => break,
        }
    }
    finish(segs, false)
}

fn finish(mut segs: Vec<ChainSeg>, anchored: bool) -> Recv {
    if segs.is_empty() {
        Recv::Other
    } else {
        segs.reverse();
        Recv::Chain { segs, anchored }
    }
}

/// Track local bindings back to the name they alias, so the resolver can
/// type them: `Some(x)`/`Ok(x)` destructuring (match arms and
/// `if let`/`while let`) marks the alias as the *payload* of the source,
/// and plain `let h = self.inner.lock();` aliases `h` to the field chain's
/// last name. Returns `alias -> (source name, is_payload)`.
fn scan_aliases(b: &[Token]) -> BTreeMap<String, (String, bool)> {
    // Parse `[&|mut]* ident (.field | .adapter(..))*` starting at `j`,
    // yielding the last field-chain name and the index just past the
    // parsed expression. Transparent adapters don't change the name.
    fn source_name(b: &[Token], mut j: usize) -> Option<(String, usize)> {
        while b
            .get(j)
            .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
        {
            j += 1;
        }
        let head = b.get(j)?.ident()?;
        if KEYWORDS.contains(&head) {
            return None;
        }
        let mut name = head.to_string();
        j += 1;
        while b.get(j).is_some_and(|t| t.is_punct('.')) {
            let seg = b.get(j + 1)?.ident()?;
            if TRANSPARENT.contains(&seg) && b.get(j + 2).is_some_and(|t| t.is_punct('(')) {
                let mut depth = 0i32;
                let mut m = j + 2;
                loop {
                    if b.get(m)?.is_punct('(') {
                        depth += 1;
                    } else if b[m].is_punct(')') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    m += 1;
                }
                j = m + 1;
                continue;
            }
            name = seg.to_string();
            j += 2;
        }
        Some((name, j))
    }
    // The source expression must END at the parse boundary — this rejects
    // fn calls (`let x = foo()`), comparisons, arithmetic, etc.
    fn bounded(b: &[Token], j: usize, terms: &[char]) -> bool {
        match b.get(j) {
            None => true,
            Some(t) => terms.iter().any(|&c| t.is_punct(c)),
        }
    }
    let mut out = BTreeMap::new();
    let mut i = 0usize;
    while i + 2 < b.len() {
        // `Some(alias) =>` / `let Some(alias) = src`.
        if matches!(b[i].ident(), Some("Some" | "Ok"))
            && b[i + 1].is_punct('(')
            && b.get(i + 3).is_some_and(|t| t.is_punct(')'))
            && b.get(i + 4).is_some_and(|t| t.is_punct('='))
        {
            if let Some(alias) = b[i + 2].ident().map(str::to_string) {
                let src = if b.get(i + 5).is_some_and(|t| t.is_punct('>')) {
                    // Match arm: scrutinee follows the nearest preceding
                    // `match` (bounded backward search).
                    (i.saturating_sub(24)..i)
                        .rev()
                        .find(|&m| b[m].is_ident("match"))
                        .and_then(|m| source_name(b, m + 1))
                        .filter(|&(_, end)| bounded(b, end, &['{']))
                } else {
                    source_name(b, i + 5).filter(|&(_, end)| bounded(b, end, &['{', ';']))
                };
                if let Some((src, _)) = src {
                    if src != alias {
                        out.entry(alias).or_insert((src, true));
                    }
                }
            }
            i += 5;
            continue;
        }
        // `let [mut] alias = src;`
        if b[i].is_ident("let") {
            let mut p = i + 1;
            if b.get(p).is_some_and(|t| t.is_ident("mut")) {
                p += 1;
            }
            if let Some(alias) = b.get(p).and_then(Token::ident).map(str::to_string) {
                if b.get(p + 1).is_some_and(|t| t.is_punct('='))
                    && !b.get(p + 2).is_some_and(|t| t.is_punct('='))
                {
                    if let Some((src, end)) = source_name(b, p + 2) {
                        if bounded(b, end, &[';']) && src != alias {
                            out.entry(alias).or_insert((src, false));
                        }
                    }
                }
            }
        }
        i += 1;
    }
    out
}

fn scan_body(b: &[Token]) -> (Vec<CallSite>, Vec<EffectSite>) {
    let mut calls = Vec::new();
    let mut macros = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        // Macro invocation: `name!(` / `name![` / `name!{`.
        if let Some(name) = b[i].ident() {
            if b.get(i + 1).is_some_and(|t| t.is_punct('!'))
                && b.get(i + 2)
                    .is_some_and(|t| t.is_punct('(') || t.is_punct('[') || t.is_punct('{'))
            {
                if let Some(effect) = macro_effect(name) {
                    macros.push(EffectSite {
                        line: b[i].line,
                        effect,
                        pattern: format!("{name}!"),
                    });
                }
                // Args stay in the stream: calls inside them are scanned.
                i += 2;
                continue;
            }
        }
        // Method call: `.name(` with optional turbofish.
        if b[i].is_punct('.') {
            if let Some(m) = b.get(i + 1).and_then(Token::ident) {
                let mut j = i + 2;
                if b.get(j).is_some_and(|t| t.is_punct(':'))
                    && b.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    && b.get(j + 2).is_some_and(|t| t.is_punct('<'))
                {
                    j = skip_angles(b, j + 2);
                }
                if b.get(j).is_some_and(|t| t.is_punct('(')) {
                    calls.push(CallSite {
                        line: b[i + 1].line,
                        callee: Callee::Method {
                            name: m.to_string(),
                            recv: receiver_pub(b, i),
                            zero_args: b.get(j + 1).is_some_and(|t| t.is_punct(')')),
                        },
                    });
                }
                i += 2;
                continue;
            }
            i += 1;
            continue;
        }
        // Path call: `seg::seg::name(` (head not preceded by `.`/`:`/`fn`).
        if let Some(name) = b[i].ident() {
            let prev_path = i > 0 && (b[i - 1].is_punct('.') || b[i - 1].is_punct(':'));
            let prev_fn = i > 0 && b[i - 1].is_ident("fn");
            if !prev_path && !prev_fn && !KEYWORDS.contains(&name) {
                let mut segs = vec![name.to_string()];
                let mut j = i + 1;
                loop {
                    if b.get(j).is_some_and(|t| t.is_punct(':'))
                        && b.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    {
                        j += 2;
                        if b.get(j).is_some_and(|t| t.is_punct('<')) {
                            j = skip_angles(b, j);
                            continue;
                        }
                        if let Some(s) = b.get(j).and_then(Token::ident) {
                            segs.push(s.to_string());
                            j += 1;
                            continue;
                        }
                    }
                    break;
                }
                if b.get(j).is_some_and(|t| t.is_punct('(')) {
                    calls.push(CallSite {
                        line: b[i].line,
                        callee: Callee::Path { segs },
                    });
                }
                i = j.max(i + 1);
                continue;
            }
            i += 1;
            continue;
        }
        i += 1;
    }
    (calls, macros)
}

// ---------------------------------------------------------------- driver --

struct FnCtx<'a> {
    file: &'a str,
    comments: &'a [String],
    self_ty: Option<&'a str>,
    trait_name: Option<&'a str>,
    is_default: bool,
}

fn record_fn(f: &ItemFn, ctx: &FnCtx<'_>, ws: &mut Workspace) {
    if cfg_pruned(&f.attrs) || f.has_attr("test") && f.attrs.iter().any(|a| a == "test") {
        return;
    }
    if f.body.is_empty() && ctx.is_default {
        // Trait method declaration without a default body.
        return;
    }
    let window: Vec<&str> = {
        let lo = f.line.saturating_sub(3).max(1);
        (lo..f.line)
            .filter_map(|l| ctx.comments.get(l - 1))
            .map(String::as_str)
            .collect()
    };
    let cold = f.has_attr("cold") || window.iter().any(|c| c.contains("jet-analyze: cold"));
    let mut allows = Vec::new();
    for c in &window {
        for (classes, _) in scan_allows(c) {
            allows.extend(classes.into_iter().flatten());
        }
    }
    let (calls, macro_effects) = scan_body(&f.body);
    ws.fns.push(FnDef {
        file: ctx.file.to_string(),
        self_ty: ctx.self_ty.map(str::to_string),
        trait_name: ctx.trait_name.map(str::to_string),
        is_default: ctx.is_default,
        name: f.name.clone(),
        line: f.line,
        params: f.params.iter().cloned().collect(),
        aliases: scan_aliases(&f.body),
        cold,
        allows,
        calls,
        macro_effects,
        raw_body: f.body.clone(),
    });
}

fn walk_items(items: &[Item], file: &str, comments: &[String], ws: &mut Workspace) {
    for item in items {
        match item {
            Item::Fn(f) => record_fn(
                f,
                &FnCtx {
                    file,
                    comments,
                    self_ty: None,
                    trait_name: None,
                    is_default: false,
                },
                ws,
            ),
            Item::Impl(im) => {
                if cfg_pruned(&im.attrs) {
                    continue;
                }
                if let Some(tr) = &im.trait_name {
                    ws.impls.push((tr.clone(), im.self_ty.clone()));
                }
                for f in &im.fns {
                    record_fn(
                        f,
                        &FnCtx {
                            file,
                            comments,
                            self_ty: Some(&im.self_ty),
                            trait_name: im.trait_name.as_deref(),
                            is_default: false,
                        },
                        ws,
                    );
                }
            }
            Item::Trait(t) => {
                if cfg_pruned(&t.attrs) {
                    continue;
                }
                ws.traits.insert(t.name.clone());
                for f in &t.fns {
                    if f.body.is_empty() {
                        continue;
                    }
                    record_fn(
                        f,
                        &FnCtx {
                            file,
                            comments,
                            self_ty: Some(&t.name),
                            trait_name: Some(&t.name),
                            is_default: true,
                        },
                        ws,
                    );
                }
            }
            Item::Mod(m) => {
                if cfg_pruned(&m.attrs) {
                    continue;
                }
                walk_items(&m.items, file, comments, ws);
            }
            Item::Struct(s) => {
                if cfg_pruned(&s.attrs) {
                    continue;
                }
                let entry = ws.fields.entry(s.name.clone()).or_default();
                for (name, ty) in &s.fields {
                    entry.insert(name.clone(), ty.clone());
                }
            }
        }
    }
}

/// Extract one source file into the workspace. Parse failures are recorded
/// as annotation errors, not panics — one odd file must not take down a
/// workspace scan.
pub(crate) fn extract_file(label: &str, src: &str, ws: &mut Workspace, errors: &mut Vec<String>) {
    let parsed = match parse_file(src) {
        Ok(p) => p,
        Err(e) => {
            errors.push(format!("{label}: parse error: {e}"));
            return;
        }
    };
    check_annotations(label, &parsed.comments, errors);
    walk_items(&parsed.items, label, &parsed.comments, ws);
    ws.comments.insert(label.to_string(), parsed.comments);
}

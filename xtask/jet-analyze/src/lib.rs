//! jet-analyze: interprocedural hot-path reachability analyzer.
//!
//! The engine's tail-latency story rests on one invariant (paper §3.2): a
//! tasklet's `call()` on a shared cooperative worker never blocks, never
//! allocates on the steady path, never panics, and never reads the wall
//! clock per record. `jet-lint` checks the *direct text* of tasklet bodies;
//! this tool proves the property *transitively*: it parses every crate
//! (via the vendored mini-`syn`), builds a best-effort call graph, marks
//! the hot roots, and reports every forbidden effect reachable from them —
//! with the full call chain (`call() → flush_outbox() → grow()`).
//!
//! ## Effect lattice
//!
//! * **alloc** — heap allocation or growth: `Box::new`/`Arc::new`/`vec!`,
//!   `Vec`/`String`/map growth methods (`push`, `extend`, `insert`, ...),
//!   `.to_vec()`/`.to_string()`/`.to_owned()`/`.collect()`, and `.clone()`
//!   on owning types (`Arc`/`Rc` handle clones are refcount bumps and are
//!   exempt when the receiver type is known).
//! * **block** — blocking primitives: `.lock()`, `.recv()`, `.wait()`,
//!   zero-argument `.join()`, `thread::sleep`/`park`, `println!` (stdout
//!   lock).
//! * **panic** — panic-capable paths: `panic!`/`unreachable!`/`todo!`/
//!   `assert!`-family, `.unwrap()`/`.expect()`, and `format!`
//!   (formatting runs arbitrary `Display` impls and allocates).
//!   `debug_assert!` is exempt: it compiles out of release builds, which
//!   is what the hot path runs.
//! * **instant** — wall-clock reads: `Instant::now`, `SystemTime::now`,
//!   `.elapsed()`.
//!
//! ## Root set
//!
//! Every `impl Tasklet for _` `call`, the `Processor` hot methods
//! (`process`, `try_process_watermark`, `complete`, `complete_edge`), the
//! jet-queue bulk transfer APIs, the trace-ring writers, and the exec
//! worker loops. `save_snapshot`/restore are *not* roots: snapshot staging
//! is cadence-bounded control work whose cost the flight recorder measures
//! and attributes separately.
//!
//! ## Escapes
//!
//! * `// jet-analyze: allow(<effect>) — <reason>` on the offending line
//!   (or ≤2 lines above) suppresses one site; placed above a `fn` it
//!   covers the whole body. A missing reason is itself a violation.
//! * `// jet-analyze: cold — <reason>` (or `#[cold]`) marks a fn or a
//!   call site as off the hot path: traversal stops there.
//! * `analyze-baseline.toml` allowlists audited violations by
//!   `(effect, containing fn, pattern)` so pre-existing sites are explicit
//!   and new regressions fail CI. Baselined chains are still reported.
//! * `jet-lint: allow(instant)` / a nearby `throttled` comment also
//!   satisfy the **instant** class, so clock sites audited for jet-lint
//!   rule 4 need no second annotation.
//!
//! ## A second pass: release/acquire pairing
//!
//! Every `store(Release)` on a field must have a matching `load(Acquire)`
//! somewhere in the workspace and vice versa (RMWs and SeqCst count for
//! the side(s) they order). This upgrades jet-lint rule 3 from "has a
//! comment" to "has a partner". Fields are keyed by name workspace-wide —
//! coarse, but one-sided protocols are exactly the bug class loom found in
//! the SPSC ring's early drafts.
//!
//! ## Known soundness holes (documented, deliberate)
//!
//! Receiver types are resolved heuristically (`self.field` through struct
//! field declarations, everything else by method-name match), so dyn-trait
//! calls fan out to *all* impls (over-approximation) while calls on
//! untyped locals fall back to name matching (under-approximation when a
//! name is neither workspace-defined nor in the effect tables). Implicit
//! calls — `Drop` glue, operator overloads, index panics, `?` conversions
//! — are invisible. `mod foo;` resolution is by directory walk, not by
//! module graph, so `#[path]` tricks are unseen.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

mod baseline;
mod extract;
mod graph;
mod ordering;

pub use baseline::{parse_baseline, BaselineEntry};

/// One forbidden-effect class (plus the pairing pass's `Ordering`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Effect {
    Alloc,
    Block,
    Panic,
    Instant,
    Ordering,
}

impl Effect {
    pub fn name(self) -> &'static str {
        match self {
            Effect::Alloc => "alloc",
            Effect::Block => "block",
            Effect::Panic => "panic",
            Effect::Instant => "instant",
            Effect::Ordering => "ordering",
        }
    }

    pub fn parse(s: &str) -> Option<Effect> {
        Some(match s {
            "alloc" => Effect::Alloc,
            "block" => Effect::Block,
            "panic" => Effect::Panic,
            "instant" => Effect::Instant,
            "ordering" => Effect::Ordering,
            _ => return None,
        })
    }
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One hop of a call chain: the fn and the line of the call site leading
/// to the next hop (for the last hop, the line of the effect).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainHop {
    /// `Type::fn` or bare `fn`.
    pub fn_name: String,
    pub file: String,
    pub line: usize,
}

/// A forbidden effect reachable from a hot root (or an unpaired atomic
/// ordering, for which `chain` is empty).
#[derive(Debug, Clone)]
pub struct Violation {
    pub effect: Effect,
    pub file: String,
    pub line: usize,
    /// The matched pattern: `` `.push_back(` `` , `` `format!` `` , an
    /// ordering-pass tag, ...
    pub pattern: String,
    /// Qualified containing fn: `crates/.../file.rs::Type::fn` (for the
    /// ordering pass: `field:<name>`).
    pub in_fn: String,
    /// Root-to-effect path; `chain[0]` is the root.
    pub chain: Vec<ChainHop>,
    pub message: String,
}

impl Violation {
    /// The identity the baseline matches on (line-number free, so pure
    /// reformatting does not invalidate entries).
    pub fn baseline_key(&self) -> (String, String, String) {
        (
            self.effect.name().to_string(),
            self.in_fn.clone(),
            self.pattern.clone(),
        )
    }

    /// `call → flush_outbox → grow → `.push(`` — the one-line chain.
    pub fn compact_chain(&self) -> String {
        let mut s = String::new();
        for hop in &self.chain {
            s.push_str(&hop.fn_name);
            s.push_str(" → ");
        }
        s.push_str(&self.pattern);
        s
    }

    /// Multi-line report block with one hop per line.
    pub fn render(&self) -> String {
        let mut s = format!(
            "[{}] {}:{}: {} in {}\n",
            self.effect, self.file, self.line, self.pattern, self.in_fn
        );
        if !self.chain.is_empty() {
            for (i, hop) in self.chain.iter().enumerate() {
                let arrow = if i == 0 { "  " } else { "  → " };
                s.push_str(&format!(
                    "{arrow}{} ({}:{})\n",
                    hop.fn_name, hop.file, hop.line
                ));
            }
            s.push_str(&format!(
                "  → {} at {}:{} [{}]\n",
                self.pattern, self.file, self.line, self.effect
            ));
        } else {
            s.push_str(&format!("  {}\n", self.message));
        }
        s
    }
}

/// Result of one analysis run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Violations not covered by the baseline: these fail the run.
    pub violations: Vec<Violation>,
    /// Violations matched by a baseline entry: reported, not failing.
    pub baselined: Vec<Violation>,
    /// Annotation problems (e.g. an `allow` with no reason): failing.
    pub annotation_errors: Vec<String>,
    /// Baseline entries that matched nothing (warn: prune them).
    pub stale_baseline: Vec<String>,
    pub files_scanned: usize,
    pub fns_indexed: usize,
    pub roots: usize,
    /// Effect sites suppressed by inline `allow` annotations.
    pub suppressed: usize,
}

impl Analysis {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.annotation_errors.is_empty()
    }

    /// Full human-readable report (what CI uploads as the artifact).
    pub fn render_report(&self) -> String {
        let mut s = String::new();
        for v in &self.violations {
            s.push_str(&v.render());
            s.push('\n');
        }
        if !self.violations.is_empty() {
            s.push_str(&format!(
                "jet-analyze: {} violation(s) not covered by the baseline\n",
                self.violations.len()
            ));
        }
        for e in &self.annotation_errors {
            s.push_str(&format!("annotation error: {e}\n"));
        }
        if !self.baselined.is_empty() {
            s.push_str(&format!(
                "\n{} baselined violation(s) (audited, allowed):\n",
                self.baselined.len()
            ));
            for v in &self.baselined {
                s.push_str(&format!("  [{}] {}\n", v.effect, v.compact_chain()));
            }
        }
        for e in &self.stale_baseline {
            s.push_str(&format!("stale baseline entry (matched nothing): {e}\n"));
        }
        s.push_str(&format!(
            "jet-analyze: {} files, {} fns, {} hot roots; {} failing, {} baselined, {} inline-allowed\n",
            self.files_scanned,
            self.fns_indexed,
            self.roots,
            self.violations.len(),
            self.baselined.len(),
            self.suppressed
        ));
        s
    }
}

/// Analyze a set of source files (labels are the paths as given). Used by
/// the fixture tests and `--paths` CLI mode.
pub fn analyze_sources(sources: &[(String, String)], baseline: &[BaselineEntry]) -> Analysis {
    let mut ws = extract::Workspace::default();
    let mut annotation_errors = Vec::new();
    for (label, src) in sources {
        extract::extract_file(label, src, &mut ws, &mut annotation_errors);
    }
    ws.build_indexes();
    let mut analysis = graph::analyze(&ws);
    ordering::check_pairing(&ws, &mut analysis);
    analysis.annotation_errors.extend(annotation_errors);
    apply_baseline(&mut analysis, baseline);
    analysis.files_scanned = sources.len();
    analysis
}

/// Split raw violations into failing vs baselined, and spot stale entries.
fn apply_baseline(analysis: &mut Analysis, baseline: &[BaselineEntry]) {
    if baseline.is_empty() {
        return;
    }
    let mut used = vec![false; baseline.len()];
    let mut failing = Vec::new();
    let mut allowed = std::mem::take(&mut analysis.baselined);
    for v in std::mem::take(&mut analysis.violations) {
        let key = v.baseline_key();
        match baseline.iter().position(|b| b.matches(&key)) {
            Some(i) => {
                used[i] = true;
                allowed.push(v);
            }
            None => failing.push(v),
        }
    }
    analysis.stale_baseline = baseline
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(b, _)| format!("{} | {} | {}", b.effect, b.site, b.pattern))
        .collect();
    analysis.violations = failing;
    analysis.baselined = allowed;
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Load sources from arbitrary files/directories (fixture mode).
pub fn analyze_paths(paths: &[PathBuf], baseline: &[BaselineEntry]) -> std::io::Result<Analysis> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            collect_rs(p, &mut files)?;
        } else {
            files.push(p.clone());
        }
    }
    files.sort();
    let mut sources = Vec::new();
    for f in &files {
        sources.push((
            f.to_string_lossy().into_owned(),
            std::fs::read_to_string(f)?,
        ));
    }
    Ok(analyze_sources(&sources, baseline))
}

/// Analyze the workspace rooted at `root`: every `.rs` under
/// `crates/*/src`, with the baseline at `root/analyze-baseline.toml` (when
/// present). Vendored stand-ins and the xtask tools themselves are out of
/// scope on purpose, exactly like jet-lint.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates)? {
        let dir = entry?.path().join("src");
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut sources = Vec::new();
    for f in &files {
        let label = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .into_owned();
        sources.push((label, std::fs::read_to_string(f)?));
    }
    let baseline_path = root.join("analyze-baseline.toml");
    let baseline = if baseline_path.is_file() {
        parse_baseline(&std::fs::read_to_string(&baseline_path)?)
            .map_err(|e| std::io::Error::other(format!("analyze-baseline.toml: {e}")))?
    } else {
        Vec::new()
    };
    Ok(analyze_sources(&sources, &baseline))
}

/// Stable ordering for reports: effect class, then file, then line.
pub(crate) fn sort_violations(vs: &mut [Violation]) {
    vs.sort_by(|a, b| {
        (a.effect, &a.file, a.line, &a.pattern).cmp(&(b.effect, &b.file, b.line, &b.pattern))
    });
}

/// Dedup helper used by the graph pass: one report per effect site.
pub(crate) type SiteKey = (Effect, String, usize, String);
pub(crate) type SeenSites = BTreeMap<SiteKey, ()>;

//! CLI for the jet-analyze hot-path reachability analyzer.
//!
//! ```text
//! cargo run -p jet-analyze                  # whole workspace + baseline
//! cargo run -p jet-analyze -- <ROOT>        # workspace at another root
//! cargo run -p jet-analyze -- --paths a.rs dir/ [--baseline FILE]
//! cargo run -p jet-analyze -- --report out.txt
//! ```
//!
//! Exit codes: 0 clean (or every violation baselined), 1 violations or
//! annotation errors, 2 usage/IO/baseline-parse errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut baseline_file: Option<PathBuf> = None;
    let mut report_file: Option<PathBuf> = None;
    let mut mode_paths = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--paths" => mode_paths = true,
            "--baseline" => {
                i += 1;
                let Some(f) = args.get(i) else {
                    eprintln!("jet-analyze: --baseline needs a file argument");
                    return ExitCode::from(2);
                };
                baseline_file = Some(PathBuf::from(f));
            }
            "--report" => {
                i += 1;
                let Some(f) = args.get(i) else {
                    eprintln!("jet-analyze: --report needs a file argument");
                    return ExitCode::from(2);
                };
                report_file = Some(PathBuf::from(f));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: jet-analyze [ROOT] [--report FILE]\n       \
                     jet-analyze --paths FILE_OR_DIR... [--baseline FILE] [--report FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("jet-analyze: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
            other => {
                if mode_paths {
                    paths.push(PathBuf::from(other));
                } else if root.is_none() {
                    root = Some(PathBuf::from(other));
                } else {
                    eprintln!("jet-analyze: more than one ROOT given (try --help)");
                    return ExitCode::from(2);
                }
            }
        }
        i += 1;
    }

    let analysis = if mode_paths {
        if paths.is_empty() {
            eprintln!("jet-analyze: --paths needs at least one file or directory");
            return ExitCode::from(2);
        }
        let baseline = match &baseline_file {
            Some(f) => match std::fs::read_to_string(f)
                .map_err(|e| e.to_string())
                .and_then(|t| jet_analyze::parse_baseline(&t))
            {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("jet-analyze: {}: {e}", f.display());
                    return ExitCode::from(2);
                }
            },
            None => Vec::new(),
        };
        match jet_analyze::analyze_paths(&paths, &baseline) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("jet-analyze: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        // Default root: the workspace this tool is built inside.
        let root = root.unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
        });
        match jet_analyze::analyze_workspace(&root) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("jet-analyze: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let report = analysis.render_report();
    print!("{report}");
    if let Some(f) = &report_file {
        if let Err(e) = std::fs::write(f, &report) {
            eprintln!("jet-analyze: writing {}: {e}", f.display());
            return ExitCode::from(2);
        }
    }
    if analysis.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Atomic release/acquire pairing audit.
//!
//! Every `store(Release)` on a struct field must have a matching
//! `load(Acquire)` on the same field somewhere in the workspace, and vice
//! versa — a one-sided protocol publishes data nobody safely observes (or
//! observes data nobody published), which is exactly the bug class loom
//! caught in the SPSC ring's early drafts. RMWs and `compare_exchange`
//! count for whichever side(s) their orderings carry; `SeqCst` counts for
//! both; a standalone `fence(Acquire)`/`fence(Release)` anywhere in the
//! workspace satisfies that side globally (fence-based pairing is legal
//! and too coarse to attribute per-field).
//!
//! Fields are keyed by *name* workspace-wide. That is deliberately coarse:
//! it keeps the audit independent of the receiver-type heuristics, and
//! same-named atomic fields with different protocols would be a lint-worthy
//! naming hazard anyway. Only calls whose arguments mention a memory
//! `Ordering` are considered, so ordinary `store`/`swap` methods on
//! non-atomic types never match.

use crate::extract::{allow_near, Recv, Workspace};
use crate::{sort_violations, Analysis, Effect, Violation};
use std::collections::BTreeMap;
use syn::{Token, TokenKind};

const RMW_OPS: &[&str] = &[
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

#[derive(Debug, Clone)]
struct AtomicSite {
    file: String,
    line: usize,
    in_fn: String,
    op: String,
    /// Orderings named in the call arguments.
    orderings: Vec<String>,
}

impl AtomicSite {
    fn has(&self, o: &str) -> bool {
        self.orderings.iter().any(|x| x == o)
    }

    fn release_side(&self) -> bool {
        let strong = self.has("Release") || self.has("AcqRel") || self.has("SeqCst");
        match self.op.as_str() {
            "store" => strong,
            "load" => false,
            _ => strong, // RMW / compare_exchange
        }
    }

    fn acquire_side(&self) -> bool {
        let strong = self.has("Acquire") || self.has("AcqRel") || self.has("SeqCst");
        match self.op.as_str() {
            "load" => self.has("Acquire") || self.has("SeqCst"),
            "store" => false,
            _ => strong,
        }
    }
}

/// Collect the `Ordering` idents inside the call parens starting at `open`.
fn orderings_in_args(b: &[Token], open: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut j = open;
    while j < b.len() {
        match &b[j].kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenKind::Ident(i)
                if matches!(
                    i.as_str(),
                    "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
                ) =>
            {
                out.push(i.clone());
            }
            _ => {}
        }
        j += 1;
    }
    out
}

/// Find the `(` index for the method call at `.``name``(`, handling the
/// same turbofish shape as the extractor.
fn paren_after(b: &[Token], name_idx: usize) -> Option<usize> {
    let mut j = name_idx + 1;
    if b.get(j).is_some_and(|t| t.is_punct(':'))
        && b.get(j + 1).is_some_and(|t| t.is_punct(':'))
        && b.get(j + 2).is_some_and(|t| t.is_punct('<'))
    {
        j += 2;
        let mut depth = 0i32;
        while j < b.len() {
            if b[j].is_punct('<') {
                depth += 1;
            } else if b[j].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    b.get(j).is_some_and(|t| t.is_punct('(')).then_some(j)
}

/// Second pass over every fn body (including `Drop` impls the call graph
/// cannot reach): gather atomic ops per field, then flag one-sided pairs.
pub(crate) fn check_pairing(ws: &Workspace, analysis: &mut Analysis) {
    let mut by_field: BTreeMap<String, Vec<AtomicSite>> = BTreeMap::new();
    let mut fence_release = false;
    let mut fence_acquire = false;

    for f in &ws.fns {
        // Re-scan this body's raw tokens; the extractor's call list has no
        // argument info, and we need the orderings.
        let b: &[Token] = &f.raw_body;
        for i in 0..b.len() {
            if !b[i].is_punct('.') {
                continue;
            }
            let Some(op) = b.get(i + 1).and_then(Token::ident) else {
                continue;
            };
            if op != "store" && op != "load" && !RMW_OPS.contains(&op) {
                continue;
            }
            let Some(open) = paren_after(b, i + 1) else {
                continue;
            };
            let orderings = orderings_in_args(b, open);
            if orderings.is_empty() {
                continue; // not an atomic op (or ordering passed indirectly)
            }
            let field = match crate::extract::receiver_pub(b, i) {
                // The atomic is named by the last chain hop
                // (`self.shared.head.store(..)` → field `head`).
                Recv::Chain { segs, .. } => segs.last().map(|s| s.name.clone()),
                Recv::SelfDirect | Recv::Other => None,
            };
            let Some(field) = field.filter(|n| n != "self") else {
                continue;
            };
            by_field.entry(field).or_default().push(AtomicSite {
                file: f.file.clone(),
                line: b[i + 1].line,
                in_fn: f.qualified(),
                op: op.to_string(),
                orderings,
            });
        }
        // `fence(Ordering::X)` free calls.
        for i in 0..b.len() {
            if b[i].is_ident("fence")
                && (i == 0 || !b[i - 1].is_punct('.'))
                && b.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                let os = orderings_in_args(b, i + 1);
                fence_release |= os
                    .iter()
                    .any(|o| o == "Release" || o == "AcqRel" || o == "SeqCst");
                fence_acquire |= os
                    .iter()
                    .any(|o| o == "Acquire" || o == "AcqRel" || o == "SeqCst");
            }
        }
    }

    let mut violations = Vec::new();
    for (field, sites) in &by_field {
        let releases: Vec<&AtomicSite> = sites.iter().filter(|s| s.release_side()).collect();
        let acquires: Vec<&AtomicSite> = sites.iter().filter(|s| s.acquire_side()).collect();
        let checks = [
            (
                &releases,
                !acquires.is_empty() || fence_acquire,
                "release-unpaired",
                "store(Release)",
                "load(Acquire)",
            ),
            (
                &acquires,
                !releases.is_empty() || fence_release,
                "acquire-unpaired",
                "load(Acquire)",
                "store(Release)",
            ),
        ];
        for (present, partnered, tag, this_side, missing_side) in checks {
            if present.is_empty() || partnered {
                continue;
            }
            if present
                .iter()
                .any(|s| allow_near(ws, &s.file, s.line, Effect::Ordering))
            {
                analysis.suppressed += 1;
                continue;
            }
            let first = present[0];
            let sites_text = present
                .iter()
                .map(|s| format!("{}:{} ({})", s.file, s.line, s.in_fn))
                .collect::<Vec<_>>()
                .join(", ");
            violations.push(Violation {
                effect: Effect::Ordering,
                file: first.file.clone(),
                line: first.line,
                pattern: tag.to_string(),
                in_fn: format!("field:{field}"),
                chain: Vec::new(),
                message: format!(
                    "field `{field}` has {this_side}-side ops but no {missing_side} partner \
                     anywhere in the workspace; sites: {sites_text}"
                ),
            });
        }
    }
    sort_violations(&mut violations);
    analysis.violations.extend(violations);
}

//! jet-lint acceptance tests: the seeded-violation fixture must fail with
//! every rule firing, the annotated fixture must pass, and the real
//! workspace tree must be clean (which is what keeps it clean).

use std::collections::BTreeSet;
use std::path::Path;

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(p).expect("fixture readable")
}

#[test]
fn bad_fixture_trips_every_rule() {
    // Label the fixture as a hot-path file so rule 4 is in scope.
    let findings = jet_lint::lint_file("exec.rs", &fixture("bad.rs"));
    let rules: BTreeSet<&str> = findings.iter().map(|f| f.rule).collect();
    for expected in [
        "undocumented-unsafe",
        "blocking-in-tasklet",
        "ordering-justification",
        "instant-on-hot-path",
        "single-item-poll",
    ] {
        assert!(
            rules.contains(expected),
            "rule {expected} did not fire; findings: {findings:#?}"
        );
    }
    // All three seeded blocking calls are reported individually.
    let blocking = findings
        .iter()
        .filter(|f| f.rule == "blocking-in-tasklet")
        .count();
    assert_eq!(blocking, 3, "findings: {findings:#?}");
}

#[test]
fn controller_bad_fixture_trips_the_raw_gauge_rule() {
    // Label the fixture as a controller file so rule 7 is in scope.
    let findings = jet_lint::lint_file("controller.rs", &fixture("controller_bad.rs"));
    let raw = findings.iter().filter(|f| f.rule == "raw-gauge").count();
    // One finding per seeded live read: snapshot(), counter_total,
    // get_all, as_gauge.
    assert_eq!(raw, 4, "findings: {findings:#?}");
    // The same file under a non-controller label is out of scope.
    assert!(
        jet_lint::lint_file("runtime.rs", &fixture("controller_bad.rs")).is_empty(),
        "rule 7 must be scoped to controller files"
    );
}

#[test]
fn controller_good_fixture_is_clean() {
    let findings = jet_lint::lint_file("controller.rs", &fixture("controller_good.rs"));
    assert!(findings.is_empty(), "false positives: {findings:#?}");
}

#[test]
fn good_fixture_is_clean() {
    let findings = jet_lint::lint_file("exec.rs", &fixture("good.rs"));
    assert!(findings.is_empty(), "false positives: {findings:#?}");
}

#[test]
fn workspace_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (scanned, findings) = jet_lint::lint_workspace(&root).expect("workspace scan");
    assert!(scanned > 30, "suspiciously few files scanned: {scanned}");
    assert!(
        findings.is_empty(),
        "workspace has lint violations:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

// Lint-test fixture for rule 7 (raw-gauge): the compliant shape — one
// annotated cadenced ingestion point fills a sample window, and decisions
// aggregate over that window only. Linted under the label `controller.rs`.

pub fn observe(&mut self, now: u64, snap: &MetricsSnapshot) {
    // jet-lint: allow(raw-gauge) — the cadenced ingestion point itself
    let recv_window_min = snap
        .get_all("jet_channel_receive_window")
        .filter_map(|m| m.as_gauge())
        .min()
        .unwrap_or(i64::MAX);
    // jet-lint: allow(raw-gauge) — cumulative counter, windowed later
    let bp_stalls = snap.counter_total("jet_backpressure_stalls_total", &[]);
    self.samples.push_back(Sample {
        at: now,
        bp_stalls,
        recv_window_min,
    });
}

pub fn decide(&mut self, now: u64) -> Option<Direction> {
    let (occupancy, stall_rate, _recv) = self.window_aggregate()?;
    if occupancy >= self.cfg.scale_up_occupancy || stall_rate >= self.cfg.scale_up_stall_rate {
        Some(Direction::Up)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_read_live_snapshots() {
        let snap = registry.snapshot();
        let _ = snap.counter_total("jet_backpressure_stalls_total", &[]);
    }
}

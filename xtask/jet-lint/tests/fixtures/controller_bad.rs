// Lint-test fixture for rule 7 (raw-gauge): autoscaling decision code
// reading live telemetry instead of the windowed sample ring. This file is
// never compiled; linted under the label `controller.rs`.

pub fn decide_from_live_telemetry(&mut self) -> Option<Direction> {
    let snap = self.registry.snapshot(); // seeded: live snapshot in decision code
    let stalls = snap.counter_total("jet_backpressure_stalls_total", &[]); // seeded
    let depth = snap
        .get_all("jet_channel_receive_window") // seeded: snapshot lookup
        .filter_map(|m| m.as_gauge()) // seeded: gauge extraction
        .min();
    if stalls > self.cfg.scale_up_stall_rate || depth < Some(1) {
        Some(Direction::Up)
    } else {
        None
    }
}

// Lint-test fixture: the same shapes as bad.rs, each correctly annotated.
// jet-lint must report nothing here.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

pub fn documented_unsafe() -> u64 {
    let x: u64 = 42;
    let p = &x as *const u64;
    // SAFETY: `p` points at the live local `x` above.
    unsafe { *p }
}

struct T;

impl Tasklet for T {
    fn call(&mut self) -> Progress {
        // jet-lint: allow(blocking) — shutdown path, runs once per job.
        std::thread::sleep(std::time::Duration::from_millis(1));
        // single-item: control items mutate alignment state one at a time.
        while let Some(item) = self.input.poll_lane(0) {
            self.handle(item);
        }
        self.input.drain_batch(64, |item| self.stage(item));
        Progress::Idle
    }
}

pub fn justified_seqcst(a: &AtomicUsize) {
    // ordering: the cancel flag needs a total order with live-count updates.
    a.store(1, Ordering::SeqCst);
}

pub fn cold_clock_read() -> Instant {
    // jet-lint: allow(instant) — called once at job submit (cold).
    Instant::now()
}

pub fn strings_and_comments_do_not_count() -> &'static str {
    // The word unsafe in a string or comment is not code: "unsafe".
    "unsafe { Ordering::SeqCst; thread::sleep(); Instant::now() }"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_block_and_read_clocks() {
        std::thread::sleep(std::time::Duration::from_millis(1));
        let _ = std::time::Instant::now();
    }
}

// Lint-test fixture: every rule violated at least once. This file is never
// compiled; jet-lint must report each seeded violation (see lint_fixtures.rs).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

pub fn undocumented_unsafe() -> u64 {
    let x: u64 = 42;
    let p = &x as *const u64;
    unsafe { *p } // seeded: no SAFETY comment anywhere near
}

// A comment that is not a safety justification.
pub unsafe fn also_undocumented() {}

struct T;

impl Tasklet for T {
    fn call(&mut self) -> Progress {
        std::thread::sleep(std::time::Duration::from_millis(1)); // seeded
        let _ = self.rx.recv(); // seeded: blocking recv
        let _guard = self.state.lock(); // seeded: mutex inside tasklet
        while let Some(item) = self.input.poll_lane(0) {
            // seeded: single-item poll loop, no annotation
            self.handle(item);
        }
        Progress::Idle
    }
}

pub fn unjustified_seqcst(a: &AtomicUsize) {
    a.store(1, Ordering::SeqCst); // seeded: no ordering comment
}

pub fn hot_clock_read() -> Instant {
    Instant::now() // seeded: exec.rs-style hot file, no throttle marker
}

//! jet-lint: the workspace's concurrency-invariant checker.
//!
//! The latency discipline this engine is built around (cooperative
//! tasklets, wait-free queues, bounded hot paths — see DESIGN.md
//! "Correctness toolkit") cannot be expressed in the type system alone, so
//! this tool enforces the textual part in CI:
//!
//! 1. **undocumented-unsafe** — every `unsafe` block or `unsafe impl`
//!    carries a `// SAFETY:` comment on the same line or within the five
//!    lines above it.
//! 2. **blocking-in-tasklet** — `impl Tasklet` bodies may not call blocking
//!    primitives (`thread::sleep`, blocking `.recv()`, `.lock()`,
//!    `.wait(...)`): a tasklet's `call()` runs on a shared cooperative
//!    worker, and one blocked tasklet stalls every tasklet on that worker
//!    (the paper's core scheduling invariant). Escape hatch for audited
//!    sites: `// jet-lint: allow(blocking) — <reason>`.
//! 3. **ordering-justification** — `Ordering::SeqCst` anywhere, and relaxed
//!    publish operations (`.store`/RMW with `Ordering::Relaxed`) in the
//!    lock-free files, need an `// ordering:` comment explaining the choice.
//! 4. **instant-on-hot-path** — `Instant::now()` in hot-path files is a
//!    ~20-30ns syscall-adjacent stall per record; sites must be throttled
//!    or cold and say so: `// jet-lint: allow(instant) — <reason>` (a
//!    `throttled` mention in a nearby comment also counts).
//! 5. **single-item-poll** — `.poll(`/`.poll_lane(`/`.poll_any(` inside a
//!    tasklet impl pays one acquire load and one release store per item;
//!    the hot path must move events with the bulk `drain_*`/`offer_batch`
//!    APIs, which publish once per run. Legit item-granular sites (control
//!    items that mutate protocol state per item) annotate
//!    `// single-item: <reason>` within 3 lines above.
//! 6. **metric-name / span-name** — observability names are API: dashboards,
//!    the spike schema-check and the flight recorder's attribution engine
//!    all match on them textually. Literal names at registration sites
//!    (`.counter(`, `.counter_fn(`, `.gauge(`, `.gauge_fn(`,
//!    `.histogram(`) must be `jet_`-prefixed snake_case; counters end in
//!    `_total`; gauges and histograms end in a unit suffix (`_nanos`,
//!    `_records`, …). Literal trace span names (`.intern(`) are lowercase
//!    kebab-case. A name registered as two different instrument kinds
//!    anywhere in the workspace is a conflict. Escape hatch:
//!    `// jet-lint: allow(metric-name)` / `allow(span-name)`.
//! 7. **raw-gauge** — autoscaling decision code (the controller files) may
//!    not read unsampled instantaneous telemetry (`.snapshot()`,
//!    `.job_metrics(`, `.counter_total(`, `.gauge_total(`, `.as_gauge(`,
//!    `.get_all(`): one noisy scheduling quantum must never drive a
//!    rescale, so decisions read only the windowed sample ring the
//!    cadenced `observe` ingestion point fills. Sanctioned ingestion
//!    sites annotate `// jet-lint: allow(raw-gauge) — <reason>`.
//!
//! `#[cfg(test)]` / `#[cfg(all(test, ...))]`-gated regions are exempt from
//! rules 2–7 (tests may sleep, lock, poll and register throwaway names);
//! rule 1 applies everywhere.
//!
//! The scanner is a small hand-rolled lexer (comments, strings and char
//! literals are tracked, not regexed away) plus brace-depth region
//! tracking — deliberately dependency-free so it runs in every environment
//! the workspace builds in.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Source text split into what the compiler sees (`code`, with comments,
/// strings and char literals blanked out) and what the humans see
/// (`comments`, per line).
struct Scrubbed {
    code: Vec<String>,
    comments: Vec<String>,
}

fn scrub(src: &str) -> Scrubbed {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }
    let mut code = String::with_capacity(src.len());
    let mut comments = String::with_capacity(src.len());
    let mut state = State::Code;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            code.push('\n');
            comments.push('\n');
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code.push(' ');
                    comments.push(c);
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    code.push(' ');
                    comments.push(c);
                } else if c == '"' {
                    state = State::Str;
                    code.push(' ');
                    comments.push(' ');
                } else if c == 'r' && matches!(next, Some('"') | Some('#')) && !prev_is_ident(&code)
                {
                    // Raw string r"..." / r#"..."# (also the tail of br#).
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            code.push(' ');
                            comments.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    code.push(c);
                    comments.push(' ');
                } else if c == '\''
                    && (next == Some('\\') || (next.is_some() && chars.get(i + 2) == Some(&'\'')))
                {
                    // Char literal ('x' or '\...'), not a lifetime.
                    let mut j = i + 1;
                    if chars.get(j) == Some(&'\\') {
                        j += 1; // the escaped char
                    }
                    j += 1; // past the payload char
                    while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                        j += 1;
                    }
                    for _ in i..=j.min(chars.len() - 1) {
                        code.push(' ');
                        comments.push(' ');
                    }
                    i = j + 1;
                    continue;
                } else {
                    code.push(c);
                    comments.push(' ');
                }
            }
            State::LineComment => {
                code.push(' ');
                comments.push(c);
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code.push_str("  ");
                    comments.push_str("*/");
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                }
                code.push(' ');
                comments.push(c);
            }
            State::Str => {
                if c == '\\' {
                    code.push(' ');
                    comments.push(' ');
                    if next.is_some() && next != Some('\n') {
                        code.push(' ');
                        comments.push(' ');
                        i += 2;
                        continue;
                    }
                } else {
                    if c == '"' {
                        state = State::Code;
                    }
                    code.push(' ');
                    comments.push(' ');
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        state = State::Code;
                        for _ in 0..=hashes {
                            code.push(' ');
                            comments.push(' ');
                        }
                        i += 1 + hashes;
                        continue;
                    }
                }
                code.push(' ');
                comments.push(' ');
            }
        }
        i += 1;
    }
    Scrubbed {
        code: code.lines().map(str::to_string).collect(),
        comments: comments.lines().map(str::to_string).collect(),
    }
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Does `hay` contain `needle` as a standalone token (no identifier char on
/// either side)?
fn has_token(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Per-line "inside a region" mask. A region opens at the first `{` on or
/// after a line matching `trigger` and closes with the matching `}`.
/// Regions can themselves contain triggers; the mask covers the outermost.
fn region_mask(code: &[String], trigger: impl Fn(&str) -> bool) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut depth: i64 = 0;
    let mut open_at: Option<i64> = None;
    let mut pending = false;
    for (i, line) in code.iter().enumerate() {
        if open_at.is_none() && trigger(line) {
            pending = true;
        }
        let mut inside = open_at.is_some();
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending && open_at.is_none() {
                        open_at = Some(depth);
                        pending = false;
                        inside = true;
                    }
                }
                '}' => {
                    if open_at == Some(depth) {
                        open_at = None;
                        inside = true; // closing line still counts
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        mask[i] = inside;
    }
    mask
}

/// Is any comment on `line` or the `back` lines above it mentioning
/// `needle`?
fn comment_nearby(comments: &[String], line: usize, back: usize, needle: &str) -> bool {
    let lo = line.saturating_sub(back);
    comments[lo..=line].iter().any(|c| c.contains(needle))
}

const BLOCKING_PATTERNS: &[&str] = &[
    "thread::sleep",
    ".recv()",
    ".recv_timeout(",
    ".lock()",
    ".wait(",
    ".wait_while(",
    ".join()",
];

/// Files implementing the lock-free publish protocols: relaxed stores and
/// RMWs there must justify their ordering.
const LOCK_FREE_FILES: &[&str] = &["spsc.rs", "conveyor.rs", "trace.rs"];

/// Files on the tasklet hot path: `Instant::now()` there must be throttled
/// or cold, and annotated.
const HOT_PATH_FILES: &[&str] = &[
    "tasklet.rs",
    "exec.rs",
    "spsc.rs",
    "conveyor.rs",
    "trace.rs",
    "network.rs",
];

/// Files hosting autoscaling decision logic: instantaneous telemetry reads
/// there are confined to annotated ingestion points (rule 7).
const CONTROLLER_FILES: &[&str] = &["controller.rs"];

/// Reads that return a live instantaneous value rather than a windowed
/// sample: snapshots, snapshot lookups, and gauge/counter extraction.
const RAW_GAUGE_PATTERNS: &[&str] = &[
    ".snapshot()",
    ".job_metrics(",
    ".counter_total(",
    ".gauge_total(",
    ".as_gauge(",
    ".get_all(",
];

fn file_matches(file: &str, names: &[&str]) -> bool {
    let base = file.rsplit(['/', '\\']).next().unwrap_or(file);
    names.contains(&base)
}

/// Registration methods whose first argument is the instrument name, and
/// the instrument kind they create.
const METRIC_REGISTRATIONS: &[(&str, &str)] = &[
    (".counter_fn(", "counter"),
    (".counter(", "counter"),
    (".gauge_fn(", "gauge"),
    (".gauge(", "gauge"),
    (".histogram(", "histogram"),
    (".register_histogram(", "histogram"),
];

/// Unit suffixes a gauge or histogram name must end in, so readers know
/// what the number means without consulting the source.
const UNIT_SUFFIXES: &[&str] = &[
    "_nanos",
    "_bytes",
    "_records",
    "_depth",
    "_capacity",
    "_size",
    "_ratio",
    "_window",
    "_period",
];

/// One statically-visible metric registration (literal name only; dynamic
/// names cannot be checked textually).
#[derive(Debug, Clone)]
pub struct MetricSite {
    pub file: String,
    pub line: usize,
    pub kind: &'static str,
    pub name: String,
    /// Site carries a `// jet-lint: allow(metric-dup)` annotation.
    pub dup_allowed: bool,
}

/// Recover the first argument of a call when it is a string literal.
/// `start` is the byte offset just past the opening paren on scrubbed line
/// `line`. Scrub blanks literal contents, so if the first argument is a
/// literal, the scrubbed text up to the separating `,`/`)` is whitespace —
/// anything else (an identifier, `&`, `format!`) means a dynamic name and
/// returns `None`. The literal text itself is then read from the raw
/// source, looking at most 2 lines ahead (rustfmt puts a broken-out name
/// on the line after the call).
fn literal_first_arg(code: &[String], raw: &[&str], line: usize, start: usize) -> Option<String> {
    let mut first_code = None;
    'outer: for (off, l) in code.iter().enumerate().skip(line).take(3) {
        let s = if off == line {
            l.get(start..)?
        } else {
            l.as_str()
        };
        for c in s.chars() {
            if !c.is_whitespace() {
                first_code = Some(c);
                break 'outer;
            }
        }
    }
    if !matches!(first_code, Some(',') | Some(')')) {
        return None;
    }
    let mut text = String::new();
    for (off, l) in raw.iter().enumerate().skip(line).take(3) {
        let s = if off == line { l.get(start..)? } else { *l };
        text.push_str(s);
        text.push('\n');
    }
    let t = text.trim_start().strip_prefix('"')?;
    let name = &t[..t.find('"')?];
    if name.contains('\\') {
        return None; // escaped literal — not a plain name, leave it alone
    }
    Some(name.to_string())
}

fn scan_metric_sites(
    file: &str,
    code: &[String],
    raw: &[&str],
    comments: &[String],
    test_mask: &[bool],
) -> Vec<MetricSite> {
    let mut sites = Vec::new();
    for (i, line) in code.iter().enumerate() {
        if test_mask[i] {
            continue;
        }
        for (pat, kind) in METRIC_REGISTRATIONS {
            let mut from = 0;
            while let Some(pos) = line[from..].find(pat) {
                let at = from + pos;
                from = at + pat.len();
                if let Some(name) = literal_first_arg(code, raw, i, at + pat.len()) {
                    sites.push(MetricSite {
                        file: file.to_string(),
                        line: i + 1,
                        kind,
                        name,
                        dup_allowed: comment_nearby(comments, i, 1, "jet-lint: allow(metric-dup)"),
                    });
                }
            }
        }
    }
    sites
}

fn well_formed_metric_name(name: &str) -> bool {
    name.starts_with("jet_")
        && !name.ends_with('_')
        && !name.contains("__")
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

fn well_formed_span_name(name: &str) -> bool {
    name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || matches!(c, '.' | '_' | '-'))
}

/// Collect every literal metric registration in one file (tests excluded),
/// for the workspace-wide kind-conflict check.
pub fn metric_sites(file: &str, src: &str) -> Vec<MetricSite> {
    let scrubbed = scrub(src);
    let raw: Vec<&str> = src.lines().collect();
    let test_mask = region_mask(&scrubbed.code, |l| {
        l.contains("#[cfg(test)") || l.contains("#[cfg(all(test") || l.contains("#[cfg(all(loom")
    });
    scan_metric_sites(file, &scrubbed.code, &raw, &scrubbed.comments, &test_mask)
}

/// A metric name registered as two different instrument kinds is almost
/// certainly a copy-paste bug, and it breaks consumers that key on the
/// name. No escape hatch on purpose.
pub fn kind_conflicts(sites: &[MetricSite]) -> Vec<Finding> {
    let mut first: Vec<(&str, &MetricSite)> = Vec::new();
    let mut findings = Vec::new();
    for site in sites {
        match first.iter().find(|(name, _)| *name == site.name) {
            None => first.push((&site.name, site)),
            Some((_, prev)) if prev.kind != site.kind => findings.push(Finding {
                file: site.file.clone(),
                line: site.line,
                rule: "metric-kind-conflict",
                message: format!(
                    "`{}` registered as a {} here but as a {} at {}:{}",
                    site.name, site.kind, prev.kind, prev.file, prev.line
                ),
            }),
            Some(_) => {}
        }
    }
    findings
}

/// The same (name, kind) registered in two different files is usually an
/// accidental re-registration: in one registry the second registration
/// shadows or double-reports the first, and downstream consumers keyed on
/// the series name (the metrics timeline, Prometheus scrapes, merged
/// snapshots) see the collision. Same-file re-registration with different
/// tag sets is the established pattern for per-instance instruments
/// (wiring registers one gauge per conveyor), so only cross-file pairs are
/// flagged. Annotate `// jet-lint: allow(metric-dup) — <reason>` on either
/// site when the registries are genuinely distinct.
pub fn duplicate_registrations(sites: &[MetricSite]) -> Vec<Finding> {
    let mut first: Vec<(&str, &'static str, &MetricSite)> = Vec::new();
    let mut findings = Vec::new();
    for site in sites {
        match first
            .iter()
            .find(|(name, kind, _)| *name == site.name && *kind == site.kind)
        {
            None => first.push((&site.name, site.kind, site)),
            Some((_, _, prev)) => {
                if prev.file != site.file && !site.dup_allowed && !prev.dup_allowed {
                    findings.push(Finding {
                        file: site.file.clone(),
                        line: site.line,
                        rule: "metric-dup",
                        message: format!(
                            "`{}` ({}) is already registered at {}:{}; a second \
                             registration under the same key collides in the timeline \
                             and merged snapshots; annotate \
                             `// jet-lint: allow(metric-dup) — <reason>` if the \
                             registries are distinct",
                            site.name, site.kind, prev.file, prev.line
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// Lint one source file. `file` is the label used in findings (and for the
/// per-file rule scoping).
pub fn lint_file(file: &str, src: &str) -> Vec<Finding> {
    let scrubbed = scrub(src);
    let code = &scrubbed.code;
    let comments = &scrubbed.comments;
    let raw: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();

    let test_mask = region_mask(code, |l| {
        l.contains("#[cfg(test)") || l.contains("#[cfg(all(test") || l.contains("#[cfg(all(loom")
    });
    let tasklet_mask = region_mask(code, |l| has_token(l, "impl") && l.contains("Tasklet for"));
    // Rule 5 also covers the inherent `impl SomeTasklet { ... }` blocks the
    // trait impls delegate their hot loops to.
    let tasklet_impl_mask = region_mask(code, |l| has_token(l, "impl") && l.contains("Tasklet"));

    let lock_free = file_matches(file, LOCK_FREE_FILES);
    let hot_path = file_matches(file, HOT_PATH_FILES);
    let controller_file = file_matches(file, CONTROLLER_FILES);

    for (i, line) in code.iter().enumerate() {
        // Rule 1: undocumented unsafe — applies everywhere, tests included
        // (a test can still have UB).
        if has_token(line, "unsafe") && !comment_nearby(comments, i, 5, "SAFETY:") {
            findings.push(Finding {
                file: file.to_string(),
                line: i + 1,
                rule: "undocumented-unsafe",
                message: "`unsafe` without a `// SAFETY:` comment on the same line \
                          or within 5 lines above"
                    .to_string(),
            });
        }

        if test_mask[i] {
            continue;
        }

        // Rule 2: blocking call inside an `impl Tasklet` body.
        if tasklet_mask[i] {
            for pat in BLOCKING_PATTERNS {
                if line.contains(pat)
                    && !comment_nearby(comments, i, 1, "jet-lint: allow(blocking)")
                {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: i + 1,
                        rule: "blocking-in-tasklet",
                        message: format!(
                            "`{pat}` inside an `impl Tasklet` body blocks the whole \
                             cooperative worker; poll instead, or annotate \
                             `// jet-lint: allow(blocking) — <reason>`"
                        ),
                    });
                }
            }
        }

        // Rule 3: memory orderings that need justification.
        let needs_ordering_comment = line.contains("Ordering::SeqCst")
            || (lock_free
                && line.contains("Ordering::Relaxed")
                && (line.contains(".store(")
                    || line.contains(".swap(")
                    || line.contains(".fetch_")
                    || line.contains(".compare_exchange")));
        if needs_ordering_comment && !comment_nearby(comments, i, 5, "ordering:") {
            findings.push(Finding {
                file: file.to_string(),
                line: i + 1,
                rule: "ordering-justification",
                message: "SeqCst (or a relaxed publish in a lock-free file) without an \
                          `// ordering:` comment explaining why the ordering is right"
                    .to_string(),
            });
        }

        // Rule 4: wall-clock reads on the hot path. One matcher covers all
        // spellings: `Instant::now`, `std::time::Instant::now`, and
        // `SystemTime::now` (the substring check absorbs path prefixes).
        if hot_path
            && (line.contains("Instant::now") || line.contains("SystemTime::now"))
            && !comment_nearby(comments, i, 2, "jet-lint: allow(instant)")
            && !comment_nearby(comments, i, 2, "throttled")
        {
            findings.push(Finding {
                file: file.to_string(),
                line: i + 1,
                rule: "instant-on-hot-path",
                message: "clock read (`Instant::now()`/`SystemTime::now()`) in a \
                          hot-path file: throttle it or prove it cold, then annotate \
                          `// jet-lint: allow(instant) — <reason>`"
                    .to_string(),
            });
        }

        // Rule 6 (span half): literal trace span names must be lowercase
        // kebab-case — the attribution engine and diagnostics match on
        // these strings.
        if line.contains(".intern(")
            && !comment_nearby(comments, i, 1, "jet-lint: allow(span-name)")
        {
            let at = line.find(".intern(").expect("just matched");
            if let Some(name) = literal_first_arg(code, &raw, i, at + ".intern(".len()) {
                if !well_formed_span_name(&name) {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: i + 1,
                        rule: "span-name",
                        message: format!(
                            "span name `{name}` is not lowercase kebab-case \
                             ([a-z][a-z0-9._-]*); annotate \
                             `// jet-lint: allow(span-name)` if intentional"
                        ),
                    });
                }
            }
        }

        // Rule 7: instantaneous telemetry reads in autoscaling decision
        // code. A decision driven by a live gauge flaps on single-quantum
        // noise; all reads go through the cadenced ingestion point, which
        // carries the allow annotation.
        if controller_file {
            for pat in RAW_GAUGE_PATTERNS {
                if line.contains(pat)
                    && !comment_nearby(comments, i, 3, "jet-lint: allow(raw-gauge)")
                {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: i + 1,
                        rule: "raw-gauge",
                        message: format!(
                            "`{pat}` in controller code reads an unsampled instantaneous \
                             value; decisions must aggregate over the windowed sample \
                             ring, or annotate a sanctioned ingestion site \
                             `// jet-lint: allow(raw-gauge) — <reason>`"
                        ),
                    });
                }
            }
        }

        // Rule 5: item-at-a-time queue polling inside a tasklet impl.
        if tasklet_impl_mask[i]
            && (line.contains(".poll(")
                || line.contains(".poll_lane(")
                || line.contains(".poll_any("))
            && !comment_nearby(comments, i, 3, "single-item:")
        {
            findings.push(Finding {
                file: file.to_string(),
                line: i + 1,
                rule: "single-item-poll",
                message: "per-item `poll` inside a tasklet impl pays an atomic round-trip \
                          per event; use the bulk `drain_*` APIs, or annotate \
                          `// single-item: <reason>` for control-item sites"
                    .to_string(),
            });
        }
    }

    // Rule 6 (metric half): literal metric names at registration sites.
    for site in scan_metric_sites(file, code, &raw, comments, &test_mask) {
        let i = site.line - 1;
        if comment_nearby(comments, i, 1, "jet-lint: allow(metric-name)") {
            continue;
        }
        let problem = if !well_formed_metric_name(&site.name) {
            Some("is not `jet_`-prefixed snake_case".to_string())
        } else if site.kind == "counter" && !site.name.ends_with("_total") {
            Some("is a counter but does not end in `_total`".to_string())
        } else if site.kind != "counter" && !UNIT_SUFFIXES.iter().any(|s| site.name.ends_with(s)) {
            Some(format!(
                "is a {} but ends in no unit suffix ({})",
                site.kind,
                UNIT_SUFFIXES.join(", ")
            ))
        } else {
            None
        };
        if let Some(problem) = problem {
            findings.push(Finding {
                file: file.to_string(),
                line: site.line,
                rule: "metric-name",
                message: format!(
                    "metric name `{}` {problem}; rename it, or annotate \
                     `// jet-lint: allow(metric-name)` if intentional",
                    site.name
                ),
            });
        }
    }
    findings
}

/// Recursively lint every `.rs` file under `crates/*/src` of `root`.
/// Returns `(files_scanned, findings)`.
pub fn lint_workspace(root: &Path) -> std::io::Result<(usize, Vec<Finding>)> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates)? {
        let dir = entry?.path().join("src");
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut findings = Vec::new();
    let mut sites = Vec::new();
    for f in &files {
        let src = std::fs::read_to_string(f)?;
        let label = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .into_owned();
        findings.extend(lint_file(&label, &src));
        sites.extend(metric_sites(&label, &src));
    }
    findings.extend(kind_conflicts(&sites));
    findings.extend(duplicate_registrations(&sites));
    Ok((files.len(), findings))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_separates_code_and_comments() {
        let s = scrub("let x = 1; // SAFETY: not really\nlet s = \"unsafe\";\n");
        assert!(s.code[0].contains("let x = 1;"));
        assert!(!s.code[0].contains("SAFETY"));
        assert!(s.comments[0].contains("SAFETY: not really"));
        assert!(
            !s.code[1].contains("unsafe"),
            "string contents must be blanked: {:?}",
            s.code[1]
        );
    }

    #[test]
    fn scrub_handles_raw_strings_and_chars() {
        let s = scrub("let r = r#\"unsafe // x\"#; let c = '\"'; let l: &'static str = \"\";\n");
        assert!(!s.code[0].contains("unsafe"));
        assert!(!s.comments[0].contains("x"));
        assert!(s.code[0].contains("&'static str"), "{:?}", s.code[0]);
    }

    #[test]
    fn token_matching_respects_boundaries() {
        assert!(has_token("unsafe {", "unsafe"));
        assert!(!has_token("unsafe_thing()", "unsafe"));
        assert!(!has_token("not_unsafe", "unsafe"));
    }

    #[test]
    fn safety_comment_within_window_passes() {
        let src = "// SAFETY: fine\nunsafe { x() }\n";
        assert!(lint_file("a.rs", src).is_empty());
        let src = "unsafe { x() } // SAFETY: same line\n";
        assert!(lint_file("a.rs", src).is_empty());
    }

    #[test]
    fn undocumented_unsafe_is_flagged() {
        let src = "fn f() {\n    unsafe { x() }\n}\n";
        let f = lint_file("a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "undocumented-unsafe");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn test_regions_are_exempt_from_hot_path_rules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = Instant::now(); }\n}\n";
        assert!(lint_file("exec.rs", src).is_empty());
        let src = "fn hot() { let _ = Instant::now(); }\n";
        assert_eq!(lint_file("exec.rs", src).len(), 1);
        assert!(lint_file("cold.rs", src).is_empty(), "rule is per-file");
    }

    #[test]
    fn clock_read_spellings_are_all_flagged() {
        // Bare, fully-qualified, and SystemTime spellings all hit rule 4.
        for src in [
            "fn hot() { let _ = Instant::now(); }\n",
            "fn hot() { let _ = std::time::Instant::now(); }\n",
            "fn hot() { let _ = SystemTime::now(); }\n",
            "fn hot() { let _ = std::time::SystemTime::now(); }\n",
        ] {
            let f = lint_file("exec.rs", src);
            assert_eq!(f.len(), 1, "{src}");
            assert_eq!(f[0].rule, "instant-on-hot-path", "{src}");
        }
        // The allow escape works for every spelling.
        for src in [
            "fn hot() {\n    // jet-lint: allow(instant) — probe\n    \
             let _ = std::time::Instant::now();\n}\n",
            "fn hot() {\n    // jet-lint: allow(instant) — probe\n    \
             let _ = SystemTime::now();\n}\n",
        ] {
            assert!(lint_file("exec.rs", src).is_empty(), "{src}");
        }
    }

    #[test]
    fn tasklet_region_tracking_spans_braces() {
        let src = "impl Tasklet for T {\n    fn call(&mut self) -> Progress {\n        \
                   std::thread::sleep(d);\n    }\n}\nfn free() { std::thread::sleep(d); }\n";
        let f = lint_file("a.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "blocking-in-tasklet");
        assert_eq!(f[0].line, 3, "sleep outside the impl must not be flagged");
    }

    #[test]
    fn seqcst_needs_justification_everywhere() {
        let src = "fn f(a: &AtomicUsize) { a.store(1, Ordering::SeqCst); }\n";
        let f = lint_file("anywhere.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "ordering-justification");
        let src = "// ordering: total order needed for X\nfn f(a: &AtomicUsize) \
                   { a.store(1, Ordering::SeqCst); }\n";
        assert!(lint_file("anywhere.rs", src).is_empty());
    }

    #[test]
    fn single_item_poll_is_flagged_in_tasklet_impls() {
        let src = "impl Tasklet for T {\n    fn call(&mut self) -> Progress {\n        \
                   while let Some(x) = self.input.poll_lane(0) { eat(x); }\n    }\n}\n";
        let f = lint_file("a.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "single-item-poll");
        // Annotated control-item sites pass.
        let src = "impl Tasklet for T {\n    fn call(&mut self) -> Progress {\n        \
                   // single-item: barriers mutate alignment state per item\n        \
                   while let Some(x) = self.input.poll_lane(0) { eat(x); }\n    }\n}\n";
        assert!(lint_file("a.rs", src).is_empty());
        // Inherent impl blocks of tasklet types are covered too.
        let src = "impl SenderTasklet {\n    fn pump(&mut self) {\n        \
                   let _ = self.input.poll(0);\n    }\n}\n";
        assert_eq!(lint_file("a.rs", src).len(), 1);
        // Free functions and non-tasklet impls are not.
        let src = "fn free(c: &mut Consumer<u8>) { let _ = c.poll(); }\n";
        assert!(lint_file("a.rs", src).is_empty());
    }

    #[test]
    fn metric_names_must_carry_prefix_and_kind_suffix() {
        // Counter without `_total`.
        let src = "fn f(r: &R) { r.counter(\"jet_events_in\", tags(&[])); }\n";
        let f = lint_file("a.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "metric-name");
        // Gauge without a unit suffix.
        let src = "fn f(r: &R) { r.gauge(\"jet_queue\", tags(&[])); }\n";
        assert_eq!(lint_file("a.rs", src)[0].rule, "metric-name");
        // Missing jet_ prefix / bad charset.
        let src = "fn f(r: &R) { r.counter(\"events_total\", tags(&[])); }\n";
        assert_eq!(lint_file("a.rs", src).len(), 1);
        let src = "fn f(r: &R) { r.counter(\"jet_Events_total\", tags(&[])); }\n";
        assert_eq!(lint_file("a.rs", src).len(), 1);
        // Conforming names pass.
        let src = "fn f(r: &R) {\n    r.counter(\"jet_events_in_total\", tags(&[]));\n    \
                   r.gauge_fn(\"jet_queue_depth\", tags(&[]), || 0);\n    \
                   r.histogram(\"jet_call_duration_nanos\", tags(&[]));\n}\n";
        assert!(lint_file("a.rs", src).is_empty());
        // rustfmt-broken registration (name on the next line) is still seen.
        let src = "fn f(r: &R) {\n    r.counter_fn(\n        \"jet_events\",\n        \
                   tags(&[]),\n        || 0,\n    );\n}\n";
        assert_eq!(lint_file("a.rs", src).len(), 1, "multi-line call missed");
        // Dynamic names cannot be checked and are skipped.
        let src = "fn f(r: &R, n: &str) { r.counter(n, tags(&[])); }\n";
        assert!(lint_file("a.rs", src).is_empty());
        // Escape hatch.
        let src = "fn f(r: &R) {\n    // jet-lint: allow(metric-name) — external dashboard\n    \
                   r.counter(\"legacy_events\", tags(&[]));\n}\n";
        assert!(lint_file("a.rs", src).is_empty());
        // Tests are exempt.
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t(r: &R) { r.counter(\"x\", tags(&[])); }\n}\n";
        assert!(lint_file("a.rs", src).is_empty());
    }

    #[test]
    fn span_names_must_be_lowercase_kebab() {
        let src = "fn f(t: &Tracer) { let _ = t.intern(\"Recovery Phase\"); }\n";
        let f = lint_file("a.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "span-name");
        let src = "fn f(t: &Tracer) { let _ = t.intern(\"worker-idle\"); }\n";
        assert!(lint_file("a.rs", src).is_empty());
        // Dynamic span names are fine.
        let src = "fn f(t: &Tracer, v: &V) { let _ = t.intern(v.name()); }\n";
        assert!(lint_file("a.rs", src).is_empty());
    }

    #[test]
    fn conflicting_instrument_kinds_are_reported() {
        let a = metric_sites(
            "a.rs",
            "fn f(r: &R) { r.counter(\"jet_lag_nanos\", tags(&[])); }\n",
        );
        let b = metric_sites(
            "b.rs",
            "fn f(r: &R) { r.gauge(\"jet_lag_nanos\", tags(&[])); }\n",
        );
        let sites: Vec<MetricSite> = a.into_iter().chain(b).collect();
        let f = kind_conflicts(&sites);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "metric-kind-conflict");
        assert!(f[0].message.contains("a.rs"), "{}", f[0].message);
        // Same kind twice is fine (shared registration helper).
        let sites = metric_sites(
            "c.rs",
            "fn f(r: &R) {\n    r.counter(\"jet_x_total\", tags(&[]));\n    \
             r.counter_fn(\"jet_x_total\", tags(&[]), || 0);\n}\n",
        );
        assert!(kind_conflicts(&sites).is_empty());
    }

    #[test]
    fn cross_file_duplicate_registration_is_reported() {
        let a = metric_sites(
            "a.rs",
            "fn f(r: &R) { r.counter(\"jet_x_total\", tags(&[])); }\n",
        );
        let b = metric_sites(
            "b.rs",
            "fn f(r: &R) { r.counter(\"jet_x_total\", tags(&[])); }\n",
        );
        let sites: Vec<MetricSite> = a.into_iter().chain(b).collect();
        let f = duplicate_registrations(&sites);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "metric-dup");
        assert_eq!(f[0].file, "b.rs");
        assert!(f[0].message.contains("a.rs"), "{}", f[0].message);

        // Same file twice is the per-instance registration pattern — legal.
        let sites = metric_sites(
            "c.rs",
            "fn f(r: &R) {\n    r.gauge(\"jet_q_depth\", tags(&[(\"lane\", \"0\")]));\n    \
             r.gauge(\"jet_q_depth\", tags(&[(\"lane\", \"1\")]));\n}\n",
        );
        assert!(duplicate_registrations(&sites).is_empty());

        // An allow annotation on either site silences the pair.
        let a = metric_sites(
            "a.rs",
            "fn f(r: &R) {\n    // jet-lint: allow(metric-dup) — per-member registry\n    \
             r.counter(\"jet_y_total\", tags(&[]));\n}\n",
        );
        let b = metric_sites(
            "b.rs",
            "fn f(r: &R) { r.counter(\"jet_y_total\", tags(&[])); }\n",
        );
        let sites: Vec<MetricSite> = a.into_iter().chain(b).collect();
        assert!(duplicate_registrations(&sites).is_empty());
    }

    #[test]
    fn register_histogram_sites_are_scanned() {
        let sites = metric_sites(
            "a.rs",
            "fn f(r: &R, h: SharedHistogram) { r.register_histogram(\"jet_latency_nanos\", \
             tags(&[]), h); }\n",
        );
        assert_eq!(sites.len(), 1, "{sites:?}");
        assert_eq!(sites[0].kind, "histogram");
        assert_eq!(sites[0].name, "jet_latency_nanos");
        // ...and rule 6 name hygiene applies to them: a histogram with no
        // unit suffix is flagged.
        let src = "fn f(r: &R, h: SharedHistogram) { r.register_histogram(\"jet_latency\", \
                   tags(&[]), h); }\n";
        let f = lint_file("a.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "metric-name");
    }

    #[test]
    fn raw_gauge_reads_are_flagged_in_controller_files() {
        let src = "fn decide(&mut self, snap: &MetricsSnapshot) {\n    \
                   let lag = snap.counter_total(\"jet_backpressure_stalls_total\", &[]);\n}\n";
        let f = lint_file("controller.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "raw-gauge");
        // The rule is scoped to controller files.
        assert!(lint_file("runtime.rs", src).is_empty(), "rule is per-file");
        // Every instantaneous-read pattern is covered.
        for call in [
            "reg.snapshot()",
            "cluster.job_metrics()",
            "m.as_gauge()",
            "snap.gauge_total(\"jet_x_depth\", &[])",
            "snap.get_all(\"jet_channel_receive_window\")",
        ] {
            let src = format!("fn decide(&mut self) {{ let _ = {call}; }}\n");
            assert_eq!(lint_file("controller.rs", &src).len(), 1, "missed `{call}`");
        }
        // The sanctioned ingestion point annotates and passes.
        let src = "fn observe(&mut self, snap: &MetricsSnapshot) {\n    \
                   // jet-lint: allow(raw-gauge) — the cadenced ingestion point\n    \
                   let s = snap.counter_total(\"jet_backpressure_stalls_total\", &[]);\n}\n";
        assert!(lint_file("controller.rs", src).is_empty());
        // Tests are exempt.
        let src = "#[cfg(test)]\nmod tests {\n    fn t(r: &R) { let _ = r.snapshot(); }\n}\n";
        assert!(lint_file("controller.rs", src).is_empty());
    }

    #[test]
    fn relaxed_publish_rule_is_scoped_to_lock_free_files() {
        let src = "fn f(a: &AtomicUsize) { a.store(1, Ordering::Relaxed); }\n";
        assert_eq!(lint_file("spsc.rs", src).len(), 1);
        assert!(lint_file("metrics.rs", src).is_empty());
        // Relaxed *loads* are not publishes.
        let src = "fn f(a: &AtomicUsize) -> usize { a.load(Ordering::Relaxed) }\n";
        assert!(lint_file("spsc.rs", src).is_empty());
    }
}

//! CLI entry point: `cargo run -p jet-lint [workspace-root]`.
//!
//! Lints every `.rs` file under `crates/*/src` and exits non-zero on any
//! finding, so CI fails the build. Vendored stand-ins (`vendor/`) and this
//! tool itself are out of scope on purpose.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // When run via `cargo run -p jet-lint`, the manifest dir is
            // xtask/jet-lint; the workspace root is two levels up.
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .canonicalize()
                .expect("workspace root")
        });
    match jet_lint::lint_workspace(&root) {
        Ok((scanned, findings)) => {
            if findings.is_empty() {
                println!("jet-lint: {scanned} files clean");
                ExitCode::SUCCESS
            } else {
                for f in &findings {
                    eprintln!("{f}");
                }
                eprintln!(
                    "jet-lint: {} violation(s) in {scanned} files",
                    findings.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("jet-lint: cannot scan {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}

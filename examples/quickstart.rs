//! Quickstart: the "Word Count" of jet-rs (paper Listing 1 is Jet's word
//! count; this is the streaming analogue — a windowed word count over a
//! generated sentence stream).
//!
//! Run with: `cargo run --release --example quickstart`

use jet_cluster::{SimCluster, SimClusterConfig};
use jet_core::processors::agg::counting;
use jet_core::state::InlineStr;
use jet_core::Ts;
use jet_pipeline::{Pipeline, WindowDef, WindowResult};
use parking_lot::Mutex;
use std::sync::Arc;

const SEC: i64 = 1_000_000_000;

/// Grouping keys must be `Copy` (they live inline in the keyed frame
/// store), so words are keyed by a fixed-capacity inline string.
type Word = InlineStr<12>;

/// What the collect sink accumulates: timestamped per-word window counts.
type WordCounts = Arc<Mutex<Vec<(Ts, WindowResult<Word, u64>)>>>;

fn main() {
    const WORDS: &[&str] = &["jet", "streams", "low", "latency", "tasklets", "jet", "jet"];

    // 1. Describe the computation with the Pipeline API (§2.1).
    let pipeline = Pipeline::create();
    let results: WordCounts = Arc::new(Mutex::new(Vec::new()));
    pipeline
        // A rate-controlled source: 100k "sentences" per second, bounded.
        .read_from_generator_cfg(
            "sentences",
            100_000,
            Some(200_000),
            jet_core::processors::WatermarkPolicy::default(),
            |seq, _ts| {
                let w1 = WORDS[(seq % WORDS.len() as u64) as usize];
                let w2 = WORDS[((seq / 3) % WORDS.len() as u64) as usize];
                format!("{w1} {w2}")
            },
        )
        // flatMap(sentence -> words), as in Listing 1.
        .flat_map(|sentence: &String| sentence.split(' ').map(str::to_string).collect::<Vec<_>>())
        // groupingKey(word).window(tumbling 1s).aggregate(counting())
        .grouping_key(|word: &String| Word::from(word.as_str()))
        .window(WindowDef::tumbling(SEC))
        .aggregate(counting::<String>())
        .write_to_collect(results.clone());

    // 2. Compile to a Core-API DAG (operator fusion happens here, Fig. 2).
    let dag = pipeline.compile(2).expect("valid pipeline");
    println!("compiled DAG:\n{dag:?}\n");

    // 3. Run it on a 2-member simulated cluster.
    let cfg = SimClusterConfig {
        members: 2,
        cores_per_member: 2,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).expect("cluster starts");
    let finished = cluster.run_for(30 * SEC as u64);
    assert!(finished, "job should complete");

    // 4. Inspect the windowed counts.
    let results = results.lock();
    println!("got {} window results:", results.len());
    let mut totals: std::collections::HashMap<Word, u64> = std::collections::HashMap::new();
    for (_, r) in results.iter() {
        *totals.entry(r.key).or_insert(0) += r.value;
    }
    let mut totals: Vec<_> = totals.into_iter().collect();
    totals.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    for (word, count) in &totals {
        println!("  {word:10} {count}");
    }
    let total: u64 = totals.iter().map(|(_, c)| *c).sum();
    assert_eq!(
        total, 400_000,
        "two words per sentence, every word counted once"
    );
    println!("\ntotal words counted: {total} (exactly 2 x 200k sentences)");
}

//! Real-time rule execution (paper §6, "Real-time Rule Execution"): a bank
//! scores each incoming card transaction against per-client state and a
//! reference table, under a tight latency budget ("Jet is assigned a
//! maximum of 2ms for executing the complete set of business rules").
//!
//! The pipeline:
//!   transactions ──hash-join(client risk table)──> stateful rules ──> alerts
//!
//! * the risk table is the batch "build side" of a hash join (Listing 2);
//! * the per-client rolling profile (count, total, max) lives in keyed
//!   state (`map_stateful`) — snapshot-able, partition-aligned;
//! * the latency histogram verifies the 2 ms budget at the 99.99th
//!   percentile.
//!
//! Run with: `cargo run --release --example fraud_rules`

use jet_cluster::{SimCluster, SimClusterConfig};
use jet_core::metrics::{SharedCounter, SharedHistogram};
use jet_core::Ts;
use jet_pipeline::Pipeline;
use parking_lot::Mutex;
use std::sync::Arc;

const SEC: u64 = 1_000_000_000;

#[derive(Debug, Clone)]
struct Txn {
    client: u64,
    amount: i64,
    merchant: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct Alert {
    client: u64,
    amount: i64,
    rule: &'static str,
}

fn main() {
    const CLIENTS: u64 = 5_000;
    const TXNS: u64 = 300_000;

    let pipeline = Pipeline::create();
    let alerts: Arc<Mutex<Vec<(Ts, Alert)>>> = Arc::new(Mutex::new(Vec::new()));
    let latency = SharedHistogram::new();
    let scored = SharedCounter::new();

    // Reference data: risk level per client (would live in an IMap in
    // production; here a bounded build-side stage).
    let risk_table = pipeline.read_from_vec(
        "risk-table",
        (0..CLIENTS)
            .map(|c| (0, (c, (c % 7) as i64)))
            .collect::<Vec<_>>(),
    );

    let txns = pipeline.read_from_generator_cfg(
        "transactions",
        150_000, // 150k txns/s
        Some(TXNS),
        jet_core::processors::WatermarkPolicy::default(),
        |seq, _ts| {
            let r = jet_util::seq::mix64(seq);
            Txn {
                client: r % CLIENTS,
                amount: ((r >> 16) % 5_000) as i64 + 1,
                merchant: (r >> 40) % 1_000,
            }
        },
    );

    let enriched = txns.hash_join(
        &risk_table,
        |(client, _risk): &(u64, i64)| *client,
        |t: &Txn| t.client,
        |t, matches| {
            let risk = matches.first().map(|(_, r)| *r).unwrap_or(0);
            vec![(t.clone(), risk)]
        },
    );

    // Business rules over per-client rolling state: (txn count, total, max).
    enriched
        .map_stateful(
            |(t, _): &(Txn, i64)| t.client,
            || (0u64, 0i64, 0i64),
            |(count, total, max), (t, risk)| {
                *count += 1;
                *total += t.amount;
                *max = (*max).max(t.amount);
                let avg = *total / *count as i64;
                // Tens of rules in production; three representative ones:
                if t.amount > 10 * avg.max(1) && *count > 5 {
                    Some(Alert {
                        client: t.client,
                        amount: t.amount,
                        rule: "amount-spike",
                    })
                } else if *risk >= 6 && t.amount > 2_000 {
                    Some(Alert {
                        client: t.client,
                        amount: t.amount,
                        rule: "high-risk-client",
                    })
                } else if t.merchant == 13 && t.amount > 4_000 {
                    Some(Alert {
                        client: t.client,
                        amount: t.amount,
                        rule: "watchlist-merchant",
                    })
                } else {
                    None
                }
            },
        )
        .write_to_collect(alerts.clone());

    // Side branch: measure per-transaction scoring latency.
    let latency2 = latency.clone();
    let scored2 = scored.clone();
    pipeline
        .read_from_generator_cfg(
            "latency-probe",
            150_000,
            Some(TXNS),
            jet_core::processors::WatermarkPolicy::default(),
            |seq, _| seq,
        )
        .map(|s: &u64| *s)
        .write_to_latency(latency2, scored2);

    let dag = pipeline.compile(2).expect("valid pipeline");
    let cfg = SimClusterConfig {
        members: 2,
        cores_per_member: 2,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).expect("cluster starts");
    assert!(cluster.run_for(60 * SEC), "jobs should finish");

    let alerts = alerts.lock();
    println!("scored {TXNS} transactions, raised {} alerts", alerts.len());
    let mut by_rule: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for (_, a) in alerts.iter() {
        *by_rule.entry(a.rule).or_insert(0) += 1;
    }
    for (rule, n) in &by_rule {
        println!("  {rule:20} {n}");
    }
    let h = latency.snapshot();
    println!(
        "event-path latency: p50={:.3}ms p99.99={:.3}ms (budget: 2ms, §6)",
        h.percentile(50.0) as f64 / 1e6,
        h.percentile(99.99) as f64 / 1e6
    );
    assert!(!alerts.is_empty(), "rules should fire on this workload");
}

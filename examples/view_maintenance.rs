//! View maintenance over CDC (paper §6, "View Maintenance"): subscribe to
//! an IMap's event journal, consume the change stream, and maintain a
//! materialized aggregate view that updates with every change to the
//! source data — the Debezium-style pattern the paper describes.
//!
//! Run with: `cargo run --release --example view_maintenance`

use jet_core::dag::{Dag, Edge};
use jet_core::exec::spawn_threaded;
use jet_core::plan::{build_local, LocalConfig};
use jet_core::processors::JournalSource;
use jet_core::snapshot::SnapshotRegistry;
use jet_core::supplier;
use jet_core::{Inbox, Outbox, Processor, ProcessorContext};
use jet_imdg::imap::EntryEventKind;
use jet_imdg::{Grid, IMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A processor maintaining "order total per customer" from order CDC events.
struct TotalsView {
    view: IMap<u64, i64>,
}

impl Processor for TotalsView {
    fn process(&mut self, _: usize, inbox: &mut Inbox, _: &mut Outbox, _: &ProcessorContext) {
        while let Some((_ts, obj)) = inbox.take() {
            let (kind, _order_id, (customer, amount)) =
                *jet_core::downcast::<(EntryEventKind, u64, (u64, i64))>(obj);
            let delta = match kind {
                EntryEventKind::Added => amount,
                EntryEventKind::Removed => -amount,
                // Updates would need old values; the source map is
                // insert/remove-only in this example.
                EntryEventKind::Updated => 0,
            };
            self.view
                .compute(customer, |old| Some(old.copied().unwrap_or(0) + delta));
        }
    }
}

fn main() {
    let grid = Grid::new(2, 1);
    // Source of truth: orders (order id -> (customer, amount)).
    let orders: IMap<u64, (u64, i64)> = IMap::new(&grid, "orders");
    // Materialized view: customer -> total outstanding.
    let totals: IMap<u64, i64> = IMap::new(&grid, "customer-totals");

    // A CDC pipeline at the Core API level: journal source -> view updater.
    let mut dag = Dag::new();
    let orders_src = orders.clone();
    let src = dag.vertex_with_parallelism(
        "orders-cdc",
        2,
        supplier(move |_| Box::new(JournalSource::new(orders_src.clone()))),
    );
    let totals_sink = totals.clone();
    let view = dag.vertex_with_parallelism(
        "totals-view",
        1,
        supplier(move |_| {
            Box::new(TotalsView {
                view: totals_sink.clone(),
            })
        }),
    );
    dag.edge(Edge::between(src, view));

    let registry = Arc::new(SnapshotRegistry::disabled());
    let exec = build_local(&dag, &LocalConfig::new(2), &registry, None).unwrap();
    let cancelled = exec.cancelled.clone();
    let handle = spawn_threaded(exec.tasklets, 2, cancelled.clone());

    // Simulate OLTP traffic against the source-of-truth map.
    for order in 0..5_000u64 {
        let customer = order % 100;
        orders.put(order, (customer, (order % 90) as i64 + 10));
    }
    // Cancel a few orders.
    for order in (0..5_000u64).step_by(10) {
        orders.remove(&order);
    }

    // Wait until the view converges.
    let expected: i64 = (0..5_000u64)
        .filter(|o| o % 10 != 0)
        .map(|o| (o % 90) as i64 + 10)
        .sum();
    let mut spins = 0;
    loop {
        let total: i64 = totals.entries().iter().map(|(_, v)| *v).sum();
        if total == expected {
            break;
        }
        spins += 1;
        assert!(
            spins < 20_000,
            "view did not converge: {total} != {expected}"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    cancelled.store(true, Ordering::SeqCst);
    handle.join();

    println!("view converged: {} customers", totals.len());
    let sample: Vec<(u64, i64)> = totals
        .entries()
        .into_iter()
        .filter(|(c, _)| *c < 5)
        .collect();
    for (customer, total) in sample {
        println!("  customer {customer}: total {total}");
    }
    println!("aggregate across view: {expected} (matches source of truth)");
}

//! IoT / oil-rig drilling telemetry (paper §6, "Internet of Things" and
//! "Oil Rig Drilling"): high-frequency sensor channels aggregated in
//! sliding windows, with alarms on threshold breaches — "Jet computes
//! stateful aggregates over 10K messages/second maintaining latency under
//! 10ms", resembling NEXMark Q6.
//!
//! The pipeline fans one sensor stream out to (a) per-channel sliding
//! average RPM for the control loop and (b) a vibration alarm filter, and
//! maintains a materialized "latest reading" view in an IMap (§6 "View
//! Maintenance").
//!
//! Run with: `cargo run --release --example iot_monitoring`

use jet_cluster::{SimCluster, SimClusterConfig};
use jet_core::processors::agg::averaging;
use jet_core::Ts;
use jet_imdg::{Grid, IMap};
use jet_pipeline::{Pipeline, WindowDef, WindowResult};
use parking_lot::Mutex;
use std::sync::Arc;

const SEC: u64 = 1_000_000_000;
const MS: i64 = 1_000_000;

#[derive(Debug, Clone)]
struct Reading {
    channel: u64,
    rpm: i64,
    vibration: i64,
}

/// Timestamped sink output, shared with the collecting pipeline stage.
type Collected<T> = Arc<Mutex<Vec<(Ts, T)>>>;

fn main() {
    const CHANNELS: u64 = 70; // "up to 70 channels of high-frequency data"
    const RATE: u64 = 10_000; // "10K messages/second"
    const TOTAL: u64 = 50_000;

    // The grid doubles as the view store (CDC target).
    let grid = Grid::new(2, 1);
    let latest: IMap<u64, i64> = IMap::new(&grid, "latest-rpm");

    let pipeline = Pipeline::create();
    let averages: Collected<WindowResult<u64, f64>> = Arc::new(Mutex::new(Vec::new()));
    let alarms: Collected<(u64, i64)> = Arc::new(Mutex::new(Vec::new()));

    let readings = pipeline.read_from_generator_cfg(
        "sensors",
        RATE,
        Some(TOTAL),
        jet_core::processors::WatermarkPolicy::default(),
        |seq, _ts| {
            let r = jet_util::seq::mix64(seq);
            Reading {
                channel: seq % CHANNELS,
                rpm: 80 + (r % 40) as i64,
                vibration: (r >> 8) as i64 % 100,
            }
        },
    );

    // (a) Sliding average RPM per channel: the drilling control loop
    //     ("real-time adjustment of the revolutions per minute").
    readings
        .grouping_key(|r: &Reading| r.channel)
        .window(WindowDef::sliding(SEC as Ts, 100 * MS))
        .aggregate(averaging::<Reading>(|r| r.rpm))
        .write_to_collect(averages.clone());

    // (b) Vibration alarms: immediate filter, no windowing.
    readings
        .filter(|r: &Reading| r.vibration > 95)
        .map(|r: &Reading| (r.channel, r.vibration))
        .write_to_collect(alarms.clone());

    // (c) Materialized view: latest RPM per channel in the grid.
    readings.write_to_imap(latest.clone(), |r: &Reading| (r.channel, r.rpm));

    let dag = pipeline.compile(2).expect("valid pipeline");
    let cfg = SimClusterConfig {
        members: 2,
        cores_per_member: 2,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).expect("cluster starts");
    assert!(cluster.run_for(60 * SEC), "job should finish");

    let averages = averages.lock();
    let alarms = alarms.lock();
    println!("sliding-average results: {}", averages.len());
    println!("vibration alarms:        {}", alarms.len());
    println!("view entries in IMap:    {}", latest.len());
    assert_eq!(
        latest.len(),
        CHANNELS as usize,
        "every channel has a latest reading"
    );
    assert!(!averages.is_empty());
    // Spot-check: averages stay inside the generated RPM band.
    for (_, w) in averages.iter() {
        assert!(
            (80.0..120.0).contains(&w.value),
            "channel {} average {} out of band",
            w.key,
            w.value
        );
    }
    println!("all channel averages within the generated 80..120 RPM band");
}

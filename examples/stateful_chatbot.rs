//! Stateful AI chatbot (paper §6, "Stateful AI"): "the chatbot is deployed
//! as an automaton where Jet operators are states and edges represent
//! transitions. On each interaction with the human, the chatbot updates its
//! state and responds to users. Our client scaled the chatbot to thousands
//! of messages per second in a limited amount of computational resources."
//!
//! Each conversation is a key; its automaton state lives in keyed
//! snapshot-able engine state (`map_stateful`). The bot walks a small
//! support-desk flow: Greeting → CollectIssue → Diagnose → Resolved.
//!
//! Run with: `cargo run --release --example stateful_chatbot`

use jet_cluster::{SimCluster, SimClusterConfig};
use jet_core::state::Snap;
use jet_core::Ts;
use jet_pipeline::Pipeline;
use jet_util::codec::{ByteReader, ByteWriter, DecodeError};
use parking_lot::Mutex;
use std::sync::Arc;

const SEC: u64 = 1_000_000_000;

/// Automaton states (paper: "Jet operators are states").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BotState {
    Greeting,
    CollectIssue,
    Diagnose,
    Resolved,
}

impl Snap for BotState {
    fn save(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            BotState::Greeting => 0,
            BotState::CollectIssue => 1,
            BotState::Diagnose => 2,
            BotState::Resolved => 3,
        });
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.get_u8()? {
            0 => BotState::Greeting,
            1 => BotState::CollectIssue,
            2 => BotState::Diagnose,
            3 => BotState::Resolved,
            _ => return Err(DecodeError("unknown bot state")),
        })
    }
}

#[derive(Debug, Clone)]
struct UserMessage {
    conversation: u64,
    text: &'static str,
}

/// Timestamped `(conversation, reply)` pairs collected by the sink.
type Replies = Arc<Mutex<Vec<(Ts, (u64, String))>>>;

fn main() {
    const CONVERSATIONS: u64 = 2_000;
    const MESSAGES: u64 = 100_000; // "thousands of messages per second"

    let scripts: &[&'static str] = &["hello", "it is broken", "tried rebooting", "thanks"];

    let pipeline = Pipeline::create();
    let replies: Replies = Arc::new(Mutex::new(Vec::new()));

    pipeline
        .read_from_generator_cfg(
            "chat-messages",
            50_000,
            Some(MESSAGES),
            jet_core::processors::WatermarkPolicy::default(),
            move |seq, _ts| {
                // Conversations interleave; each cycles through its script.
                let conversation = seq % CONVERSATIONS;
                let turn = (seq / CONVERSATIONS) as usize % scripts.len();
                UserMessage {
                    conversation,
                    text: scripts[turn],
                }
            },
        )
        .map_stateful(
            |m: &UserMessage| m.conversation,
            || BotState::Greeting,
            |state, msg| {
                // Transition function: edges of the automaton.
                let (next, reply) = match (*state, msg.text) {
                    (BotState::Greeting, _) => {
                        (BotState::CollectIssue, "Hi! What seems to be the problem?")
                    }
                    (BotState::CollectIssue, _) => (
                        BotState::Diagnose,
                        "Got it. Have you tried turning it off and on?",
                    ),
                    (BotState::Diagnose, "tried rebooting") => (
                        BotState::Resolved,
                        "Escalating to a human engineer. Anything else?",
                    ),
                    (BotState::Diagnose, _) => (BotState::Diagnose, "Please try a reboot first."),
                    (BotState::Resolved, _) => (BotState::Greeting, "Happy to help. Bye!"),
                };
                *state = next;
                Some((msg.conversation, reply.to_string()))
            },
        )
        .write_to_collect(replies.clone());

    let dag = pipeline.compile(2).expect("valid pipeline");
    let cfg = SimClusterConfig {
        members: 2,
        cores_per_member: 2,
        // Conversations are long-lived state: checkpoint them (§4.4).
        guarantee: jet_core::Guarantee::ExactlyOnce,
        snapshot_interval: 500_000_000,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).expect("cluster starts");
    assert!(cluster.run_for(60 * SEC), "chat stream should finish");

    let replies = replies.lock();
    println!("handled {MESSAGES} messages across {CONVERSATIONS} conversations");
    println!("produced {} replies", replies.len());
    assert_eq!(
        replies.len(),
        MESSAGES as usize,
        "every message gets a reply"
    );

    // Every conversation walked the full automaton: count per reply kind.
    let mut by_reply: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for (_, (_, reply)) in replies.iter() {
        *by_reply.entry(reply.as_str()).or_insert(0) += 1;
    }
    for (reply, n) in &by_reply {
        println!("  {n:7}x {reply}");
    }
    println!(
        "snapshots completed during the run: {}",
        cluster.registry().completed()
    );
}

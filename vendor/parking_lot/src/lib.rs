//! Offline stand-in for the slice of `parking_lot` this workspace uses.
//!
//! The build container has no access to crates.io, so external dependencies
//! are replaced by minimal local implementations (see `vendor/README.md`).
//! `Mutex` and `RwLock` here wrap `std::sync` primitives and expose
//! parking_lot's poison-free API: `lock()` / `read()` / `write()` return
//! guards directly. A poisoned std lock means a panic already unwound while
//! holding it; propagating the panic (unwrap) matches test expectations.

use std::sync::{self, TryLockError};

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(
            *m.lock(),
            0,
            "lock must remain usable after a poisoning panic"
        );
    }
}

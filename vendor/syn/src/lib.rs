//! Offline stand-in for the [`syn`](https://crates.io/crates/syn) parser.
//!
//! The build container has no crates.io access, so — like the `loom` and
//! `proptest` stand-ins next door — this crate ships the slice of a real
//! parser that the workspace actually needs. `jet-analyze` builds a
//! whole-workspace call graph, which takes item-level structure (which fns
//! exist, which impl/trait they belong to, what a struct's fields are typed
//! as) plus the raw token stream of every fn body. It does **not** need
//! full expression ASTs, so unlike upstream syn, bodies stay as flat token
//! vectors with line numbers; closures are therefore naturally "inlined"
//! into their enclosing fn.
//!
//! What is modelled faithfully:
//!
//! * lexing: line/block comments (captured per line for annotation
//!   checks), string/raw-string/byte-string/char literals (content elided
//!   so `"unwrap()"` in a log message is not a call), lifetimes vs char
//!   literals, numeric literals including `1.5`, `0xff`, `1_000u64`;
//! * items: `fn` (free + associated, const/unsafe/extern modifiers),
//!   `impl Type` / `impl Trait for Type` (generics skipped, trait and self
//!   type reduced to their significant last segment), `trait` declarations
//!   with default method bodies, inline `mod`s (recursive), `struct`s with
//!   named fields and their type text, attributes (`#[cfg(...)]`,
//!   `#[cold]`, ...) attached to the following item.
//!
//! Known, deliberate divergences from upstream: no expression parsing, no
//! macro expansion (macro *arguments* stay in the token stream, so calls
//! inside `debug_assert!(...)` are still visible), tuple structs and enums
//! are skipped (no fields recorded), and `mod foo;` file modules are not
//! resolved (callers scan directories themselves).

use std::fmt;

/// One lexed token. Literal contents are elided — the lexer guarantees no
/// token text ever originates inside a string, char, or comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// String / char / numeric literal, content elided.
    Literal,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

impl Token {
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(i) if i == s)
    }
}

/// A parsed source file: top-level items plus the comment text of every
/// line (for `// jet-analyze: allow(...)`-style annotation lookups).
#[derive(Debug, Default)]
pub struct File {
    pub items: Vec<Item>,
    /// `comments[line-1]` is the comment text on that 1-based line (empty
    /// when the line has none).
    pub comments: Vec<String>,
}

#[derive(Debug)]
pub enum Item {
    Fn(ItemFn),
    Impl(ItemImpl),
    Trait(ItemTrait),
    Mod(ItemMod),
    Struct(ItemStruct),
}

/// A free or associated function. The body is the token stream between its
/// braces (exclusive); trait methods without a default body have an empty
/// body.
#[derive(Debug)]
pub struct ItemFn {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Raw text of each attribute on this fn (e.g. `cfg(test)`, `cold`).
    pub attrs: Vec<String>,
    /// Typed parameters as `(name, type-text)`; the `self` receiver and
    /// pattern parameters (`(a, b): ...`) are skipped.
    pub params: Vec<(String, String)>,
    pub body: Vec<Token>,
}

impl ItemFn {
    pub fn has_attr(&self, needle: &str) -> bool {
        self.attrs.iter().any(|a| a.contains(needle))
    }
}

#[derive(Debug)]
pub struct ItemImpl {
    /// Significant (last, depth-0) segment of the self type: `Foo` for
    /// `impl<T> Foo<T>`.
    pub self_ty: String,
    /// Significant segment of the trait path for `impl Trait for Type`.
    pub trait_name: Option<String>,
    pub fns: Vec<ItemFn>,
    pub attrs: Vec<String>,
    pub line: usize,
}

#[derive(Debug)]
pub struct ItemTrait {
    pub name: String,
    /// Methods declared by the trait; default methods carry bodies.
    pub fns: Vec<ItemFn>,
    pub attrs: Vec<String>,
    pub line: usize,
}

#[derive(Debug)]
pub struct ItemMod {
    pub name: String,
    pub items: Vec<Item>,
    pub attrs: Vec<String>,
    pub line: usize,
}

#[derive(Debug)]
pub struct ItemStruct {
    pub name: String,
    /// Named fields as `(name, type-text)`; type text is the joined token
    /// stream, e.g. `Vec < Item >`. Tuple structs record no fields.
    pub fields: Vec<(String, String)>,
    pub attrs: Vec<String>,
    pub line: usize,
}

#[derive(Debug)]
pub struct Error {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

// ---------------------------------------------------------------- lexer --

struct Lexer {
    tokens: Vec<Token>,
    comments: Vec<String>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Never fails: unterminated constructs run to EOF.
fn lex(src: &str) -> Lexer {
    let chars: Vec<char> = src.chars().collect();
    let line_count = src.lines().count().max(1);
    let mut comments = vec![String::new(); line_count + 1];
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments: captured per line, never tokenized.
        if c == '/' && next == Some('/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            if let Some(slot) = comments.get_mut(line) {
                slot.extend(chars[start..i].iter());
            }
            continue;
        }
        if c == '/' && next == Some('*') {
            let mut depth = 1u32;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if let Some(slot) = comments.get_mut(line) {
                        slot.push(chars[i]);
                    }
                    i += 1;
                }
            }
            continue;
        }
        // Raw / byte strings: r"", r#""#, b"", br#""#.
        if (c == 'r' || c == 'b') && matches!(next, Some('"') | Some('#') | Some('r')) {
            let mut j = i + 1;
            if c == 'b' && chars.get(j) == Some(&'r') {
                j += 1;
            }
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                // Scan to the matching `"###...`.
                j += 1;
                let raw = hashes > 0 || chars[i + 1] != '"' || c == 'r';
                loop {
                    match chars.get(j) {
                        None => break,
                        Some('\n') => {
                            line += 1;
                            j += 1;
                        }
                        Some('\\') if !raw => {
                            j += 2;
                        }
                        Some('"') => {
                            let mut ok = true;
                            for k in 0..hashes {
                                if chars.get(j + 1 + k) != Some(&'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            j += 1;
                            if ok {
                                j += hashes;
                                break;
                            }
                        }
                        Some(_) => j += 1,
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
                i = j;
                continue;
            }
            // Fall through: plain ident starting with r/b.
        }
        if c == '"' {
            i += 1;
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            tokens.push(Token {
                kind: TokenKind::Literal,
                line,
            });
            continue;
        }
        if c == '\'' {
            // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
            let is_char = match next {
                Some('\\') => true,
                Some(n) if is_ident_start(n) => {
                    // `'a'` is a char, `'a` (no closing quote) a lifetime.
                    let mut j = i + 2;
                    while chars.get(j).copied().is_some_and(is_ident_cont) {
                        j += 1;
                    }
                    chars.get(j) == Some(&'\'')
                }
                Some(_) => true,
                None => false,
            };
            if is_char {
                let mut j = i + 1;
                if chars.get(j) == Some(&'\\') {
                    j += 2;
                } else {
                    j += 1;
                }
                while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
                i = j + 1;
            } else {
                // Lifetime: skip the quote and the ident.
                i += 1;
                while chars.get(i).copied().is_some_and(is_ident_cont) {
                    i += 1;
                }
            }
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while chars.get(j).copied().is_some_and(is_ident_cont) {
                j += 1;
            }
            // Fractional part (but not `0..10` ranges or `1.max(2)`).
            if chars.get(j) == Some(&'.')
                && chars
                    .get(j + 1)
                    .copied()
                    .is_some_and(|d| d.is_ascii_digit())
            {
                j += 1;
                while chars.get(j).copied().is_some_and(is_ident_cont) {
                    j += 1;
                }
            }
            tokens.push(Token {
                kind: TokenKind::Literal,
                line,
            });
            i = j;
            continue;
        }
        if is_ident_start(c) {
            let mut j = i + 1;
            while chars.get(j).copied().is_some_and(is_ident_cont) {
                j += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident(chars[i..j].iter().collect()),
                line,
            });
            i = j;
            continue;
        }
        tokens.push(Token {
            kind: TokenKind::Punct(c),
            line,
        });
        i += 1;
    }
    let mut per_line = vec![String::new(); line_count];
    for (l, text) in comments.into_iter().enumerate() {
        if l >= 1 && l <= line_count {
            per_line[l - 1] = text;
        }
    }
    Lexer {
        tokens,
        comments: per_line,
    }
}

// --------------------------------------------------------------- parser --

struct Parser<'a> {
    t: &'a [Token],
    pos: usize,
}

const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "impl",
    "trait",
    "mod",
    "struct",
    "enum",
    "union",
    "use",
    "type",
    "static",
    "const",
    "extern",
    "macro_rules",
    "pub",
    "unsafe",
    "async",
];

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.t.get(self.pos)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.t.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(s))
    }

    fn line(&self) -> usize {
        self.peek().map(|t| t.line).unwrap_or(0)
    }

    /// Skip a balanced `{...}` / `(...)` / `[...]` group whose opener is the
    /// current token; returns the token range *inside* the delimiters.
    fn skip_group(&mut self, open: char, close: char) -> (usize, usize) {
        debug_assert!(self.peek().is_some_and(|t| t.is_punct(open)));
        self.pos += 1;
        let start = self.pos;
        let mut depth = 1i32;
        while let Some(t) = self.t.get(self.pos) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            self.pos += 1;
        }
        let end = self.pos;
        self.pos += 1; // past the closer
        (start, end)
    }

    /// Skip a balanced generic parameter list whose opener `<` is current.
    /// `->` inside (closure bounds like `Fn() -> T`) does not close.
    fn skip_generics(&mut self) {
        debug_assert!(self.peek().is_some_and(|t| t.is_punct('<')));
        self.pos += 1;
        let mut depth = 1i32;
        let mut prev_minus = false;
        while let Some(t) = self.t.get(self.pos) {
            match &t.kind {
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') if !prev_minus => {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        return;
                    }
                }
                _ => {}
            }
            prev_minus = t.is_punct('-');
            self.pos += 1;
        }
    }

    /// Collect attributes (`#[...]`) at the current position; `#![...]`
    /// inner attributes are skipped.
    fn attrs(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        while self.peek().is_some_and(|t| t.is_punct('#')) {
            self.pos += 1;
            let inner = self.peek().is_some_and(|t| t.is_punct('!'));
            if inner {
                self.pos += 1;
            }
            if self.peek().is_some_and(|t| t.is_punct('[')) {
                let (s, e) = self.skip_group('[', ']');
                if !inner {
                    out.push(render(&self.t[s..e]));
                }
            }
        }
        out
    }

    /// Skip to (and past) the next `;` at depth 0, or past a balanced brace
    /// group, whichever comes first — the generic "ignore this item" move.
    fn skip_item_tail(&mut self) {
        while let Some(t) = self.peek() {
            if t.is_punct(';') {
                self.pos += 1;
                return;
            }
            if t.is_punct('{') {
                self.skip_group('{', '}');
                return;
            }
            if t.is_punct('(') {
                self.skip_group('(', ')');
                continue;
            }
            if t.is_punct('[') {
                self.skip_group('[', ']');
                continue;
            }
            self.pos += 1;
        }
    }

    /// Parse items until `end` (exclusive token index).
    fn items(&mut self, end: usize) -> Vec<Item> {
        let mut out = Vec::new();
        while self.pos < end {
            let attrs = self.attrs();
            if self.pos >= end {
                break;
            }
            // Visibility + leading modifiers.
            while self.at_ident("pub") {
                self.pos += 1;
                if self.peek().is_some_and(|t| t.is_punct('(')) {
                    self.skip_group('(', ')');
                }
            }
            let mut is_unsafe_impl = false;
            while self.at_ident("unsafe")
                || self.at_ident("const")
                || self.at_ident("async")
                || self.at_ident("extern")
            {
                // `const NAME: ...` items (not `const fn`) are handled below:
                // only consume `const` when an item keyword follows.
                let kw = self.peek().and_then(Token::ident).unwrap_or("").to_string();
                let next_is_item = self
                    .t
                    .get(self.pos + 1)
                    .and_then(Token::ident)
                    .is_some_and(|n| ITEM_KEYWORDS.contains(&n));
                if kw == "const" && !next_is_item {
                    break;
                }
                if kw == "unsafe" {
                    is_unsafe_impl = true;
                }
                self.pos += 1;
                if kw == "extern"
                    && self
                        .peek()
                        .is_some_and(|t| matches!(t.kind, TokenKind::Literal))
                {
                    self.pos += 1; // abi string
                }
            }
            let _ = is_unsafe_impl;
            let Some(t) = self.peek() else { break };
            let line = t.line;
            match t.ident() {
                Some("fn") => {
                    if let Some(f) = self.parse_fn(attrs) {
                        out.push(Item::Fn(f));
                    }
                }
                Some("impl") => {
                    if let Some(i) = self.parse_impl(attrs, line) {
                        out.push(Item::Impl(i));
                    }
                }
                Some("trait") => {
                    if let Some(tr) = self.parse_trait(attrs, line) {
                        out.push(Item::Trait(tr));
                    }
                }
                Some("mod") => {
                    self.pos += 1;
                    let name = self.bump().and_then(Token::ident).unwrap_or("").to_string();
                    if self.peek().is_some_and(|t| t.is_punct('{')) {
                        let (s, e) = self.skip_group('{', '}');
                        let mut inner = Parser { t: self.t, pos: s };
                        let items = inner.items(e);
                        out.push(Item::Mod(ItemMod {
                            name,
                            items,
                            attrs,
                            line,
                        }));
                    } else {
                        // `mod foo;` — caller scans files itself.
                        self.skip_item_tail();
                    }
                }
                Some("struct") => {
                    if let Some(s) = self.parse_struct(attrs, line) {
                        out.push(Item::Struct(s));
                    }
                }
                Some("macro_rules") => {
                    self.pos += 1; // macro_rules
                    if self.peek().is_some_and(|t| t.is_punct('!')) {
                        self.pos += 1;
                    }
                    self.bump(); // name
                    self.skip_item_tail();
                }
                Some(_) => self.skip_item_tail(),
                None => {
                    // Stray punctuation at item level (e.g. stray `;`).
                    self.pos += 1;
                }
            }
        }
        out
    }

    fn parse_fn(&mut self, attrs: Vec<String>) -> Option<ItemFn> {
        let line = self.line();
        self.pos += 1; // fn
        let name = self.bump().and_then(Token::ident)?.to_string();
        if self.peek().is_some_and(|t| t.is_punct('<')) {
            self.skip_generics();
        }
        // Signature: skip to the body `{` or a `;` (trait method without
        // default), tracking nested groups so `where F: Fn() -> T` and
        // default argument-position braces don't confuse us. The first
        // paren group is the parameter list.
        let mut params = Vec::new();
        let mut saw_args = false;
        loop {
            match self.peek() {
                None => return None,
                Some(t) if t.is_punct('(') => {
                    let (s, e) = self.skip_group('(', ')');
                    if !saw_args {
                        saw_args = true;
                        params = parse_params(&self.t[s..e]);
                    }
                }
                Some(t) if t.is_punct('[') => {
                    self.skip_group('[', ']');
                }
                Some(t) if t.is_punct('<') => self.skip_generics(),
                Some(t) if t.is_punct(';') => {
                    self.pos += 1;
                    return Some(ItemFn {
                        name,
                        line,
                        attrs,
                        params,
                        body: Vec::new(),
                    });
                }
                Some(t) if t.is_punct('{') => break,
                Some(_) => self.pos += 1,
            }
        }
        let (s, e) = self.skip_group('{', '}');
        Some(ItemFn {
            name,
            line,
            attrs,
            params,
            body: self.t[s..e].to_vec(),
        })
    }

    fn parse_impl(&mut self, attrs: Vec<String>, line: usize) -> Option<ItemImpl> {
        self.pos += 1; // impl
        if self.peek().is_some_and(|t| t.is_punct('<')) {
            self.skip_generics();
        }
        // Path tokens up to `for` / `where` / `{`; idents at angle depth 0
        // are candidate significant segments.
        let mut first_path_last_ident: Option<String> = None;
        let mut second_path_last_ident: Option<String> = None;
        let mut saw_for = false;
        loop {
            match self.peek() {
                None => return None,
                Some(t) if t.is_punct('{') => break,
                Some(t) if t.is_ident("where") => {
                    // Skip the where clause up to the body.
                    while let Some(t) = self.peek() {
                        if t.is_punct('{') {
                            break;
                        }
                        if t.is_punct('<') {
                            self.skip_generics();
                        } else if t.is_punct('(') {
                            self.skip_group('(', ')');
                        } else {
                            self.pos += 1;
                        }
                    }
                }
                Some(t) if t.is_ident("for") => {
                    saw_for = true;
                    self.pos += 1;
                }
                Some(t) if t.is_punct('<') => self.skip_generics(),
                Some(t) if t.is_punct('(') => {
                    self.skip_group('(', ')');
                }
                Some(t) => {
                    if let Some(id) = t.ident() {
                        if id != "dyn" {
                            let slot = if saw_for {
                                &mut second_path_last_ident
                            } else {
                                &mut first_path_last_ident
                            };
                            *slot = Some(id.to_string());
                        }
                    }
                    self.pos += 1;
                }
            }
        }
        let (s, e) = self.skip_group('{', '}');
        let mut inner = Parser { t: self.t, pos: s };
        let fns = inner.assoc_fns(e);
        let (trait_name, self_ty) = if saw_for {
            (first_path_last_ident, second_path_last_ident?)
        } else {
            (None, first_path_last_ident?)
        };
        Some(ItemImpl {
            self_ty,
            trait_name,
            fns,
            attrs,
            line,
        })
    }

    /// Associated items of an impl/trait body: fns are parsed, everything
    /// else (assoc consts/types) is skipped.
    fn assoc_fns(&mut self, end: usize) -> Vec<ItemFn> {
        let mut out = Vec::new();
        while self.pos < end {
            let attrs = self.attrs();
            if self.pos >= end {
                break;
            }
            while self.at_ident("pub") {
                self.pos += 1;
                if self.peek().is_some_and(|t| t.is_punct('(')) {
                    self.skip_group('(', ')');
                }
            }
            while self.at_ident("unsafe")
                || self.at_ident("async")
                || self.at_ident("default")
                || self.at_ident("extern")
                || (self.at_ident("const")
                    && self.t.get(self.pos + 1).is_some_and(|t| t.is_ident("fn")))
            {
                self.pos += 1;
                if self
                    .peek()
                    .is_some_and(|t| matches!(t.kind, TokenKind::Literal))
                {
                    self.pos += 1; // extern "C"
                }
            }
            match self.peek().and_then(Token::ident) {
                Some("fn") => {
                    if let Some(f) = self.parse_fn(attrs) {
                        out.push(f);
                    }
                }
                _ => self.skip_item_tail(),
            }
        }
        out
    }

    fn parse_trait(&mut self, attrs: Vec<String>, line: usize) -> Option<ItemTrait> {
        self.pos += 1; // trait
        let name = self.bump().and_then(Token::ident)?.to_string();
        if self.peek().is_some_and(|t| t.is_punct('<')) {
            self.skip_generics();
        }
        // Supertraits / where clause up to the body.
        while let Some(t) = self.peek() {
            if t.is_punct('{') {
                break;
            }
            if t.is_punct(';') {
                self.pos += 1;
                return None; // trait alias
            }
            if t.is_punct('<') {
                self.skip_generics();
            } else if t.is_punct('(') {
                self.skip_group('(', ')');
            } else {
                self.pos += 1;
            }
        }
        let (s, e) = self.skip_group('{', '}');
        let mut inner = Parser { t: self.t, pos: s };
        let fns = inner.assoc_fns(e);
        Some(ItemTrait {
            name,
            fns,
            attrs,
            line,
        })
    }

    fn parse_struct(&mut self, attrs: Vec<String>, line: usize) -> Option<ItemStruct> {
        self.pos += 1; // struct
        let name = self.bump().and_then(Token::ident)?.to_string();
        if self.peek().is_some_and(|t| t.is_punct('<')) {
            self.skip_generics();
        }
        // Skip a where clause.
        while let Some(t) = self.peek() {
            if t.is_punct('{') || t.is_punct('(') || t.is_punct(';') {
                break;
            }
            if t.is_punct('<') {
                self.skip_generics();
            } else {
                self.pos += 1;
            }
        }
        match self.peek() {
            Some(t) if t.is_punct('{') => {
                let (s, e) = self.skip_group('{', '}');
                let fields = parse_fields(&self.t[s..e]);
                Some(ItemStruct {
                    name,
                    fields,
                    attrs,
                    line,
                })
            }
            Some(t) if t.is_punct('(') => {
                // Tuple struct: no named fields recorded.
                self.skip_group('(', ')');
                if self.peek().is_some_and(|t| t.is_punct(';')) {
                    self.pos += 1;
                }
                Some(ItemStruct {
                    name,
                    fields: Vec::new(),
                    attrs,
                    line,
                })
            }
            _ => {
                self.skip_item_tail();
                Some(ItemStruct {
                    name,
                    fields: Vec::new(),
                    attrs,
                    line,
                })
            }
        }
    }
}

/// Parse `name: Type, ...` parameters from the tokens inside a fn
/// signature's parens. `self` receivers (`self`, `&mut self`, `mut self`),
/// pattern parameters, and `_` placeholders are skipped.
fn parse_params(t: &[Token]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut p = Parser { t, pos: 0 };
    while p.pos < t.len() {
        let _ = p.attrs();
        // Strip `&`, `mut` in receiver/binding position.
        while p
            .peek()
            .is_some_and(|x| x.is_punct('&') || x.is_ident("mut"))
        {
            p.pos += 1;
        }
        let name = p.peek().and_then(Token::ident).map(str::to_string);
        let named = match name {
            Some(n) if n != "self" && n != "_" => {
                // A parameter only if a `:` follows the ident.
                if t.get(p.pos + 1).is_some_and(|x| x.is_punct(':'))
                    && !t.get(p.pos + 2).is_some_and(|x| x.is_punct(':'))
                {
                    p.pos += 2; // name :
                    Some(n)
                } else {
                    None
                }
            }
            _ => None,
        };
        let ty_start = p.pos;
        // Skip to the next comma at depth 0.
        while let Some(x) = p.peek() {
            if x.is_punct(',') {
                break;
            }
            if x.is_punct('<') {
                p.skip_generics();
            } else if x.is_punct('(') {
                p.skip_group('(', ')');
            } else if x.is_punct('[') {
                p.skip_group('[', ']');
            } else {
                p.pos += 1;
            }
        }
        if let Some(n) = named {
            let ty = render(&t[ty_start..p.pos]);
            if !ty.is_empty() {
                out.push((n, ty));
            }
        }
        p.pos += 1; // ,
    }
    out
}

/// Parse `name: Type, ...` fields from the tokens inside a struct body.
fn parse_fields(t: &[Token]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut p = Parser { t, pos: 0 };
    while p.pos < t.len() {
        let _ = p.attrs();
        while p.at_ident("pub") {
            p.pos += 1;
            if p.peek().is_some_and(|x| x.is_punct('(')) {
                p.skip_group('(', ')');
            }
        }
        let Some(name) = p.bump().and_then(Token::ident).map(str::to_string) else {
            break;
        };
        if !p.peek().is_some_and(|x| x.is_punct(':')) {
            // Not a named field (recovery) — skip to the next comma.
            while let Some(x) = p.peek() {
                if x.is_punct(',') {
                    break;
                }
                p.pos += 1;
            }
            p.pos += 1;
            continue;
        }
        p.pos += 1; // :
        let ty_start = p.pos;
        // The type runs to the next comma at depth 0.
        while let Some(x) = p.peek() {
            if x.is_punct(',') {
                break;
            }
            if x.is_punct('<') {
                p.skip_generics();
            } else if x.is_punct('(') {
                p.skip_group('(', ')');
            } else if x.is_punct('[') {
                p.skip_group('[', ']');
            } else {
                p.pos += 1;
            }
        }
        out.push((name, render(&t[ty_start..p.pos])));
        p.pos += 1; // ,
    }
    out
}

/// Join tokens back into readable text (for attrs and field types).
fn render(tokens: &[Token]) -> String {
    let mut s = String::new();
    for t in tokens {
        match &t.kind {
            TokenKind::Ident(i) => {
                if !s.is_empty() && !s.ends_with([':', '<', '(', '&', ' ']) {
                    s.push(' ');
                }
                s.push_str(i);
            }
            TokenKind::Punct(c) => s.push(*c),
            TokenKind::Literal => s.push('_'),
        }
    }
    s
}

/// Parse one source file into items + per-line comments. Lexing and item
/// parsing are resilient: malformed regions are skipped, not fatal, so one
/// odd file never takes down a workspace-wide scan.
pub fn parse_file(src: &str) -> Result<File, Error> {
    let lexed = lex(src);
    let mut p = Parser {
        t: &lexed.tokens,
        pos: 0,
    };
    let end = lexed.tokens.len();
    let items = p.items(end);
    Ok(File {
        items,
        comments: lexed.comments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(items: &[Item]) -> Vec<String> {
        items
            .iter()
            .map(|i| match i {
                Item::Fn(f) => format!("fn {}", f.name),
                Item::Impl(im) => format!(
                    "impl {}{}",
                    im.trait_name
                        .as_ref()
                        .map(|t| format!("{t} for "))
                        .unwrap_or_default(),
                    im.self_ty
                ),
                Item::Trait(t) => format!("trait {}", t.name),
                Item::Mod(m) => format!("mod {}", m.name),
                Item::Struct(s) => format!("struct {}", s.name),
            })
            .collect()
    }

    #[test]
    fn parses_fns_impls_traits_mods() {
        let src = r#"
            pub fn free(x: usize) -> usize { x + 1 }
            pub trait Tasklet: Send { fn call(&mut self) -> Progress; fn hint(&self) -> usize { 0 } }
            impl<T: Clone> Tasklet for Worker<T> where T: Send { fn call(&mut self) -> Progress { self.step() } }
            mod inner { pub fn helper() {} }
            struct S { buf: Vec<u64>, clock: Arc<Clock> }
        "#;
        let f = parse_file(src).unwrap();
        assert_eq!(
            names(&f.items),
            vec![
                "fn free",
                "trait Tasklet",
                "impl Tasklet for Worker",
                "mod inner",
                "struct S"
            ]
        );
        let Item::Trait(t) = &f.items[1] else {
            panic!()
        };
        assert_eq!(t.fns.len(), 2);
        assert!(t.fns[0].body.is_empty(), "declaration only");
        assert!(!t.fns[1].body.is_empty(), "default body kept");
        let Item::Struct(s) = &f.items[4] else {
            panic!()
        };
        assert_eq!(s.fields[0], ("buf".to_string(), "Vec<u64>".to_string()));
        assert!(s.fields[1].1.starts_with("Arc<"));
    }

    #[test]
    fn bodies_are_token_streams_with_lines() {
        let src = "fn f() {\n    g();\n    h.m(1);\n}\n";
        let f = parse_file(src).unwrap();
        let Item::Fn(func) = &f.items[0] else {
            panic!()
        };
        let idents: Vec<(&str, usize)> = func
            .body
            .iter()
            .filter_map(|t| t.ident().map(|i| (i, t.line)))
            .collect();
        assert_eq!(idents, vec![("g", 2), ("h", 3), ("m", 3)]);
    }

    #[test]
    fn strings_comments_and_chars_produce_no_idents() {
        let src = "fn f() { let s = \"unwrap() .lock()\"; // .recv()\n  let c = '\"'; let r = r#\"panic!\"#; }";
        let f = parse_file(src).unwrap();
        let Item::Fn(func) = &f.items[0] else {
            panic!()
        };
        for t in &func.body {
            if let Some(i) = t.ident() {
                assert!(
                    !["unwrap", "lock", "recv", "panic"].contains(&i),
                    "literal content leaked: {i}"
                );
            }
        }
        assert!(f.comments[0].contains(".recv()"), "{:?}", f.comments);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let f = parse_file(src).unwrap();
        let Item::Fn(func) = &f.items[0] else {
            panic!()
        };
        assert!(func.body.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn attrs_attach_to_items() {
        let src = "#[cfg(test)]\nmod tests { fn t() {} }\n#[cold]\nfn slow() {}\n";
        let f = parse_file(src).unwrap();
        let Item::Mod(m) = &f.items[0] else { panic!() };
        assert!(m.attrs.iter().any(|a| a.contains("cfg(test")));
        let Item::Fn(func) = &f.items[1] else {
            panic!()
        };
        assert!(func.has_attr("cold"));
    }

    #[test]
    fn impl_generics_and_unsafe_are_handled() {
        let src = "unsafe impl<T: Send> Sync for Ring<T> {}\nimpl Conveyor<Item> { pub fn poll_lane(&mut self) {} }";
        let f = parse_file(src).unwrap();
        let Item::Impl(a) = &f.items[0] else { panic!() };
        assert_eq!(a.trait_name.as_deref(), Some("Sync"));
        assert_eq!(a.self_ty, "Ring");
        let Item::Impl(b) = &f.items[1] else { panic!() };
        assert_eq!(b.self_ty, "Conveyor");
        assert_eq!(b.fns[0].name, "poll_lane");
    }

    #[test]
    fn params_are_captured_with_types() {
        let src = "fn f(&mut self, t: &mut dyn Tasklet, n: u32, o: &mut WorkerObs, (a, b): (u32, u32)) {}";
        let f = parse_file(src).unwrap();
        let Item::Fn(func) = &f.items[0] else {
            panic!()
        };
        let names: Vec<&str> = func.params.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["t", "n", "o"]);
        assert_eq!(func.params[0].1, "&mut dyn Tasklet");
        assert_eq!(func.params[2].1, "&mut WorkerObs");
    }

    #[test]
    fn fn_bounds_with_arrows_do_not_break_generics() {
        let src = "fn apply<F: Fn(usize) -> usize>(f: F) -> usize { f(1) }";
        let f = parse_file(src).unwrap();
        let Item::Fn(func) = &f.items[0] else {
            panic!()
        };
        assert_eq!(func.name, "apply");
        assert!(func.body.iter().any(|t| t.is_ident("f")));
    }

    #[test]
    fn numeric_ranges_and_floats_lex() {
        let src = "fn f() { for i in 0..10 { g(1.5, 0xff, 1_000u64, i.max(2)); } }";
        let f = parse_file(src).unwrap();
        let Item::Fn(func) = &f.items[0] else {
            panic!()
        };
        assert!(func.body.iter().any(|t| t.is_ident("max")));
        // The range arrives as two dot puncts.
        let dots = func.body.iter().filter(|t| t.is_punct('.')).count();
        assert!(dots >= 3, "range dots + method dot, got {dots}");
    }
}

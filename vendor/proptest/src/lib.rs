//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! The build container has no access to crates.io, so external dependencies
//! are replaced by minimal local implementations (see `vendor/README.md`).
//! This crate keeps proptest's API shape — `proptest!`, strategies
//! (ranges, tuples, `Just`, `any`, `prop_oneof!`, `prop_map`,
//! `collection::{vec, hash_map}`), `prop_assert!`/`prop_assert_eq!`, and
//! `ProptestConfig::with_cases` — over a deterministic splitmix64 generator
//! seeded from the test name, so every run explores the same case sequence.
//! Shrinking and persistence of failing cases are intentionally absent: a
//! failure reports the case index, and the deterministic seed makes it
//! reproducible by re-running the test.

pub mod test_runner {
    use std::fmt;

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic splitmix64 generator. Seeded from the test name so each
    /// test walks its own fixed case sequence on every run.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name; stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[lo, hi)`; `hi > lo` required.
        pub fn next_below(&mut self, width: u64) -> u64 {
            debug_assert!(width > 0);
            // Multiply-shift rejection-free mapping: bias is negligible for
            // the widths used in tests and determinism is what matters here.
            ((self.next_u64() as u128 * width as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values. Unlike real proptest there is no value tree or
    /// shrinking: `gen_value` draws one concrete value per test case.
    pub trait Strategy {
        type Value;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    macro_rules! impl_uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end - self.start) as u64;
                    self.start + rng.next_below(width) as $t
                }
            }
        )*};
    }
    impl_uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.next_below(width) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    /// String literals act as regex strategies in proptest. This stand-in
    /// does not implement regex generation — any pattern yields a random
    /// short string of printable ASCII plus a few non-ASCII code points,
    /// which is what the workspace's `".*"` usage needs.
    impl Strategy for &str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            let len = rng.next_below(24) as usize;
            (0..len)
                .map(|_| match rng.next_below(20) {
                    0 => 'λ',
                    1 => '✓',
                    2 => '𝕁',
                    _ => (0x20 + rng.next_below(95) as u8) as char,
                })
                .collect()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (S0/0, S1/1)
        (S0/0, S1/1, S2/2)
        (S0/0, S1/1, S2/2, S3/3)
    }

    /// One weighted alternative: (weight, generator).
    pub type UnionArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

    /// Weighted choice between boxed alternatives — the engine behind
    /// `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<UnionArm<V>>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<UnionArm<V>>) -> Self {
            let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(
                total_weight > 0,
                "prop_oneof! needs a positive total weight"
            );
            Union { arms, total_weight }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.next_below(self.total_weight);
            for (w, f) in &self.arms {
                if pick < *w as u64 {
                    return f(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weight bookkeeping is exhaustive")
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($(($($t:ident),+))*) => {$(
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($t::arbitrary(rng),)+)
                }
            }
        )*};
    }
    impl_arbitrary_tuple! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::HashMap;
    use std::hash::Hash;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.next_below(width) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    pub struct HashMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    pub fn hash_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> HashMapStrategy<K, V> {
        assert!(size.start < size.end, "empty size range");
        HashMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for HashMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Eq + Hash,
        V: Strategy,
    {
        type Value = HashMap<K::Value, V::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> HashMap<K::Value, V::Value> {
            let width = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.next_below(width) as usize;
            let mut out = HashMap::with_capacity(target);
            // Key collisions shrink the map below target; retry a bounded
            // number of times, then accept whatever landed (still in-range
            // for any key space wider than the target size).
            let mut attempts = 0;
            while out.len() < target && attempts < 16 * target + 16 {
                out.insert(self.key.gen_value(rng), self.value.gen_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
/// Supports the optional `#![proptest_config(...)]` inner attribute and any
/// number of test functions per block, mirroring real proptest's grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(
                    let $arg = {
                        use $crate::strategy::Strategy as _;
                        ($strat).gen_value(&mut rng)
                    };
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at deterministic case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Like `assert!`, but inside `proptest!` bodies: records the failure as a
/// test-case error (early-returning from the case) instead of panicking
/// mid-iteration.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __pa_left = $left;
        let __pa_right = $right;
        $crate::prop_assert!(
            __pa_left == __pa_right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __pa_left,
            __pa_right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __pa_left = $left;
        let __pa_right = $right;
        $crate::prop_assert!(__pa_left == __pa_right, $($fmt)+);
    }};
}

/// Weighted (`weight => strategy`) or uniform choice between strategies that
/// all produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        // A single Vec type variable lets every arm's value type unify (an
        // integer literal in one arm picks up the type fixed by another).
        let mut __arms: ::std::vec::Vec<(
            u32,
            ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>,
        )> = ::std::vec::Vec::new();
        $({
            let __arm = $strat;
            __arms.push((
                ($weight) as u32,
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    use $crate::strategy::Strategy as _;
                    __arm.gen_value(rng)
                }),
            ));
        })+
        $crate::strategy::Union::new(__arms)
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let mut c = crate::test_runner::TestRng::deterministic("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3u64..17,
            y in -5i64..5,
            f in 0.25f64..0.75,
            n in 1usize..4,
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn collections_respect_size_and_elements(
            v in crate::collection::vec(0u32..10, 2..6),
            m in crate::collection::hash_map(any::<u64>(), 0i64..3, 0..8),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|e| *e < 10));
            prop_assert!(m.len() < 8);
            prop_assert!(m.values().all(|e| (0..3).contains(e)));
        }

        #[test]
        fn oneof_and_map_compose(
            tag in prop_oneof![2 => Just(0u8), 1 => (10u32..20).prop_map(|v| v as u8)],
            pair in (0i64..4, any::<bool>()),
        ) {
            prop_assert!(tag == 0 || (10..20).contains(&tag));
            prop_assert!(pair.0 < 4);
        }
    }
}

//! Offline stand-in for the slice of `criterion` this workspace uses.
//!
//! The build container has no access to crates.io, so external dependencies
//! are replaced by minimal local implementations (see `vendor/README.md`).
//! This is a small wall-clock bench harness with criterion's API shape:
//! groups, throughput annotation, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. It calibrates an iteration
//! count per benchmark, runs timed batches, and prints mean ns/iter plus
//! derived element throughput. Statistical machinery (outlier detection,
//! regression against saved baselines, HTML reports) is intentionally absent.

use std::hint;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Criterion's `--test` smoke mode: `cargo bench -- --test` runs every
/// benchmark body exactly once (no calibration, no sampling) to prove it
/// still executes — CI uses it to keep benches compiling and running
/// without paying measurement time.
fn test_mode() -> bool {
    static TEST_MODE: OnceLock<bool> = OnceLock::new();
    *TEST_MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// Prevents the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let cfg = self.clone();
        run_benchmark(&cfg, name, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let cfg = self.criterion.clone();
        run_benchmark(&cfg, &full, self.throughput, f);
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(
    cfg: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    if test_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("Testing {name} ... ok");
        return;
    }
    // Calibrate: grow the per-sample iteration count until one sample takes
    // at least ~1/sample_size of the measurement window (capped by warm-up).
    let mut iters = 1u64;
    let target = cfg.measurement_time.as_nanos() as u64 / cfg.sample_size.max(1) as u64;
    let warmup_deadline = Instant::now() + cfg.warm_up_time;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as u64;
        if ns >= target.max(1) || Instant::now() >= warmup_deadline || iters >= u64::MAX / 2 {
            break;
        }
        iters = if ns == 0 {
            iters * 8
        } else {
            (iters * target / ns.max(1)).max(iters + 1)
        };
    }

    let mut samples_ns_per_iter: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    let deadline = Instant::now() + cfg.measurement_time;
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns_per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
        if Instant::now() >= deadline {
            break;
        }
    }
    samples_ns_per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples_ns_per_iter[samples_ns_per_iter.len() / 2];
    let mean = samples_ns_per_iter.iter().sum::<f64>() / samples_ns_per_iter.len() as f64;

    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 * 1e3 / median)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 * 1e9 / median / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!(
        "{:<40} median {:>10.1} ns/iter  mean {:>10.1} ns/iter  ({} samples x {} iters){}",
        name,
        median,
        mean,
        samples_ns_per_iter.len(),
        iters,
        rate
    );
}

/// Criterion's group macro: supports both the simple form
/// `criterion_group!(name, target1, target2)` and the configured form
/// `criterion_group! { name = n; config = expr; targets = t1, t2 }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_a_trivial_bench() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(10));
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(1));
        let mut ran = false;
        g.bench_function("add", |b| {
            ran = true;
            b.iter(|| black_box(1u64) + black_box(2u64));
        });
        g.finish();
        assert!(ran);
    }
}

//! Offline stand-in for the small slice of `crossbeam` this workspace uses.
//!
//! The build container has no access to crates.io, so external dependencies
//! are replaced by minimal local implementations (see `vendor/README.md`).
//! Only `utils::CachePadded` is provided: jet-queue's SPSC ring uses it to
//! keep the producer and consumer position counters on separate cache lines.

pub mod utils {
    use core::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) a cache-line boundary so two
    /// `CachePadded` values never share a cache line (no false sharing).
    ///
    /// 128-byte alignment covers the common 64-byte line size plus adjacent
    /// line prefetching on modern x86 (the same choice upstream crossbeam
    /// makes for x86_64).
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::utils::CachePadded;

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(core::mem::align_of::<CachePadded<u64>>(), 128);
        assert_eq!(p.into_inner(), 7);
    }
}

//! The model-checking runtime: a DFS explorer over thread schedules plus an
//! operational release/acquire memory model.
//!
//! Execution model
//! ---------------
//! Each `model()` iteration runs the test closure with every spawned thread
//! mapped onto a real OS thread, but only **one** thread is ever runnable:
//! every tracked operation (atomic access, `UnsafeCell` access, spawn, join,
//! yield) is a *sequence point* that hands control to the scheduler. The
//! scheduler consults a depth-first explorer that enumerates, at every
//! sequence point, which thread performs its next operation — bounded by a
//! preemption budget (`LOOM_MAX_PREEMPTIONS`, default 3) exactly like the
//! real loom.
//!
//! Memory model
//! ------------
//! Per-location store buffers with vector clocks implement the C11
//! release/acquire fragment operationally:
//!
//! * every atomic location keeps the full history of stores made to it; a
//!   load may read **any** store not ruled out by coherence (never older
//!   than one the thread has already observed, nor older than one that
//!   happens-before the load). When several stores are readable the choice
//!   is a DFS branch — this is what lets the checker exercise the "cache
//!   refresh saw a stale counter" paths deterministically.
//! * a `Release` store publishes the writer's vector clock as the message
//!   clock; an `Acquire` load that reads it joins the clock (synchronizes).
//!   `Relaxed` accesses move values but **no** clocks (modulo fences, which
//!   are modeled: a release fence stamps subsequent relaxed stores, an
//!   acquire fence promotes previously-read message clocks).
//! * RMWs read the newest store, continue its release sequence (the read
//!   store's message clock is folded into the written one) and append.
//! * `SeqCst` is approximated as `AcqRel` plus joining through a global SC
//!   clock — stronger orderings are never reported as bugs, weaker ones are.
//!
//! `UnsafeCell` accesses are checked with a FastTrack-style vector-clock
//! race detector: a write racing any access (or a read racing a write) that
//! is not ordered by happens-before panics with `"data race"`, which the
//! explorer surfaces on the iteration (schedule prefix) that triggers it.

use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Hard cap on model threads per execution (root counts as one).
pub const MAX_THREADS: usize = 4;

/// Panic message used when a sibling thread already failed the model and
/// this thread only needs to unwind out of the iteration.
pub const ABORT: &str = "loom model aborted: failure detected on another thread";

#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct VClock([u32; MAX_THREADS]);

impl VClock {
    fn join(&mut self, other: &VClock) {
        for i in 0..MAX_THREADS {
            self.0[i] = self.0[i].max(other.0[i]);
        }
    }

    /// Does this clock cover (happen-after) event `tick` on thread `tid`?
    fn covers(&self, tid: usize, tick: u32) -> bool {
        self.0[tid] >= tick
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Acq {
    Yes,
    No,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rel {
    Yes,
    No,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sc {
    Yes,
    No,
}

/// Decomposed C11 ordering, so every atomic entry point shares one
/// implementation.
#[derive(Clone, Copy, Debug)]
pub struct Ord3 {
    pub acq: Acq,
    pub rel: Rel,
    pub sc: Sc,
}

struct Store {
    value: u64,
    /// Clock transferred to acquiring readers (zero for relaxed stores made
    /// with no preceding release fence).
    msg: VClock,
    writer: usize,
    /// The writer's own clock component at the store event.
    tick: u32,
}

struct AtomicState {
    stores: Vec<Store>,
    /// Newest store index each thread has observed (coherence floor).
    seen: [usize; MAX_THREADS],
}

#[derive(Default)]
struct CellState {
    /// Tick of each thread's latest read of the cell.
    reads: [u32; MAX_THREADS],
    /// Tick of each thread's latest write to the cell.
    writes: [u32; MAX_THREADS],
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// May be scheduled.
    Ready,
    /// Waiting for thread `.0` to finish.
    Joining(usize),
    Finished,
}

struct ThreadState {
    status: Status,
    clock: VClock,
    /// Pending message clocks read by relaxed loads, promoted by an acquire
    /// fence.
    acq_pending: VClock,
    /// Clock stamped onto relaxed stores after a release fence.
    rel_fence: VClock,
}

/// One DFS branch: which alternative was taken out of how many.
#[derive(Clone, Copy, Debug)]
struct Branch {
    chosen: u32,
    total: u32,
}

struct Explorer {
    path: Vec<Branch>,
    pos: usize,
    iterations: u64,
}

impl Explorer {
    fn choice(&mut self, total: usize) -> usize {
        debug_assert!(total >= 2);
        if self.pos < self.path.len() {
            let b = self.path[self.pos];
            assert_eq!(
                b.total as usize, total,
                "loom internal error: nondeterministic replay (branch arity changed)"
            );
            self.pos += 1;
            b.chosen as usize
        } else {
            self.path.push(Branch {
                chosen: 0,
                total: total as u32,
            });
            self.pos += 1;
            0
        }
    }

    /// Advance to the next unexplored schedule; false when the space is
    /// exhausted.
    fn advance(&mut self) -> bool {
        self.pos = 0;
        self.iterations += 1;
        loop {
            match self.path.last_mut() {
                None => return false,
                Some(b) => {
                    b.chosen += 1;
                    if b.chosen < b.total {
                        return true;
                    }
                    self.path.pop();
                }
            }
        }
    }
}

struct Exec {
    explorer: Explorer,
    threads: Vec<ThreadState>,
    active: usize,
    atomics: Vec<AtomicState>,
    cells: Vec<CellState>,
    /// Global SeqCst clock (joined through by every SeqCst operation).
    sc: VClock,
    preemptions: usize,
    max_preemptions: usize,
    steps: usize,
    max_steps: usize,
    failure: Option<String>,
    /// Set between iterations; model threads must not touch state.
    running: bool,
}

impl Exec {
    fn reset_iteration(&mut self) {
        self.threads.clear();
        self.threads.push(ThreadState {
            status: Status::Ready,
            clock: VClock::default(),
            acq_pending: VClock::default(),
            rel_fence: VClock::default(),
        });
        self.active = 0;
        self.atomics.clear();
        self.cells.clear();
        self.sc = VClock::default();
        self.preemptions = 0;
        self.steps = 0;
        self.failure = None;
        self.running = true;
    }

    fn ready_others(&self, me: usize) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| t != me && self.threads[t].status == Status::Ready)
            .collect()
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.status == Status::Finished)
    }
}

fn rt() -> &'static (Mutex<Exec>, Condvar) {
    static RT: OnceLock<(Mutex<Exec>, Condvar)> = OnceLock::new();
    RT.get_or_init(|| {
        (
            Mutex::new(Exec {
                explorer: Explorer {
                    path: Vec::new(),
                    pos: 0,
                    iterations: 0,
                },
                threads: Vec::new(),
                active: usize::MAX,
                atomics: Vec::new(),
                cells: Vec::new(),
                sc: VClock::default(),
                preemptions: 0,
                max_preemptions: 3,
                steps: 0,
                max_steps: 100_000,
                failure: None,
                running: false,
            }),
            Condvar::new(),
        )
    })
}

fn lock() -> MutexGuard<'static, Exec> {
    rt().0.lock().unwrap_or_else(|e| e.into_inner())
}

/// Serializes whole `model()` calls: the runtime state is global, so two
/// model-checking tests running on parallel test threads must take turns.
fn model_lock() -> MutexGuard<'static, ()> {
    static MODEL: OnceLock<Mutex<()>> = OnceLock::new();
    MODEL
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static CURRENT: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

fn current() -> usize {
    CURRENT
        .with(|c| c.get())
        .expect("loom primitive used outside of loom::model (or from an unmanaged thread)")
}

/// True when this thread should skip scheduling/checking and apply raw
/// effects only: the iteration already failed and we are unwinding (drops of
/// user structures still perform atomic/cell calls).
fn raw_mode(ex: &Exec) -> bool {
    ex.failure.is_some() || !ex.running || std::thread::panicking()
}

/// Record a model failure, wake everyone, release the lock and panic.
fn fail(mut ex: MutexGuard<'_, Exec>, msg: String) -> ! {
    if ex.failure.is_none() {
        ex.failure = Some(msg.clone());
    }
    rt().1.notify_all();
    drop(ex);
    panic!("{msg}");
}

/// The scheduler: called at the start of every tracked operation. Decides
/// which thread performs its next operation; parks the caller until it is
/// chosen again. `voluntary` marks an explicit yield: the caller prefers to
/// hand control away and switching costs no preemption.
fn op_point(me: usize, voluntary: bool) {
    let mut ex = lock();
    if raw_mode(&ex) {
        if ex.failure.is_some() && !std::thread::panicking() {
            drop(ex);
            panic!("{ABORT}");
        }
        return;
    }
    ex.steps += 1;
    if ex.steps > ex.max_steps {
        let steps = ex.steps;
        fail(
            ex,
            format!("loom: iteration exceeded {steps} steps (livelock or unbounded spin?)"),
        );
    }
    let others = ex.ready_others(me);
    let me_ready = ex.threads[me].status == Status::Ready;
    debug_assert!(me_ready, "op_point from a non-ready thread");

    // Candidate threads for the next operation. `choice 0` = the cheapest
    // continuation so DFS explores low-preemption schedules first.
    let mut cands: Vec<usize> = Vec::new();
    if voluntary {
        if others.is_empty() {
            cands.push(me);
        } else {
            cands.extend(&others);
        }
    } else {
        cands.push(me);
        if ex.preemptions < ex.max_preemptions {
            cands.extend(&others);
        }
    }
    let next = if cands.len() > 1 {
        let idx = ex.explorer.choice(cands.len());
        cands[idx]
    } else {
        cands[0]
    };
    if next != me {
        if !voluntary {
            ex.preemptions += 1;
        }
        ex.active = next;
        rt().1.notify_all();
        while ex.active != me && ex.failure.is_none() && ex.running {
            ex = rt().1.wait(ex).unwrap_or_else(|e| e.into_inner());
        }
        if ex.failure.is_some() {
            drop(ex);
            panic!("{ABORT}");
        }
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

pub fn atomic_new(init: u64) -> usize {
    let me = current();
    let mut ex = lock();
    if raw_mode(&ex) {
        // Still allocate so ids stay unique during unwinds.
        let id = ex.atomics.len();
        ex.atomics.push(AtomicState {
            stores: vec![Store {
                value: init,
                msg: VClock::default(),
                writer: me,
                tick: 0,
            }],
            seen: [0; MAX_THREADS],
        });
        return id;
    }
    ex.threads[me].clock.0[me] += 1;
    let tick = ex.threads[me].clock.0[me];
    let msg = ex.threads[me].clock;
    let id = ex.atomics.len();
    ex.atomics.push(AtomicState {
        stores: vec![Store {
            value: init,
            msg,
            writer: me,
            tick,
        }],
        seen: [0; MAX_THREADS],
    });
    id
}

pub fn atomic_load(id: usize, ord: Ord3) -> u64 {
    let me = current();
    op_point(me, false);
    let mut ex = lock();
    if raw_mode(&ex) {
        return ex.atomics[id].stores.last().unwrap().value;
    }
    // Coherence floor: never read older than something already observed or
    // than a store that happens-before this load.
    let clock = ex.threads[me].clock;
    let a = &ex.atomics[id];
    let newest = a.stores.len() - 1;
    // `seen` points one past the store read last time (coherence-progress
    // bound: a repeated load of the same location may not re-observe the
    // same stale store, so spin loops always make progress and the DFS tree
    // stays finite; this explores a subset of C11 behaviours). Clamp to the
    // newest store, which is always readable.
    let mut floor = a.seen[me].min(newest);
    for (j, s) in a.stores.iter().enumerate().skip(floor + 1) {
        if clock.covers(s.writer, s.tick) {
            floor = j;
        }
    }
    let count = newest - floor + 1;
    // Branch over readable stores, newest first (choice 0 = newest).
    let idx = if count > 1 {
        newest - ex.explorer.choice(count)
    } else {
        newest
    };
    let a = &mut ex.atomics[id];
    a.seen[me] = a.seen[me].max(idx + 1);
    let value = a.stores[idx].value;
    let msg = a.stores[idx].msg;
    match ord.acq {
        Acq::Yes => ex.threads[me].clock.join(&msg),
        Acq::No => ex.threads[me].acq_pending.join(&msg),
    }
    if ord.sc == Sc::Yes {
        let sc = ex.sc;
        ex.threads[me].clock.join(&sc);
        let clock = ex.threads[me].clock;
        ex.sc.join(&clock);
    }
    value
}

pub fn atomic_store(id: usize, value: u64, ord: Ord3) {
    let me = current();
    op_point(me, false);
    let mut ex = lock();
    if raw_mode(&ex) {
        ex.atomics[id].stores.push(Store {
            value,
            msg: VClock::default(),
            writer: me,
            tick: 0,
        });
        return;
    }
    if ord.sc == Sc::Yes {
        let sc = ex.sc;
        ex.threads[me].clock.join(&sc);
    }
    ex.threads[me].clock.0[me] += 1;
    let tick = ex.threads[me].clock.0[me];
    let msg = match ord.rel {
        Rel::Yes => ex.threads[me].clock,
        Rel::No => ex.threads[me].rel_fence,
    };
    if ord.sc == Sc::Yes {
        let clock = ex.threads[me].clock;
        ex.sc.join(&clock);
    }
    let a = &mut ex.atomics[id];
    a.stores.push(Store {
        value,
        msg,
        writer: me,
        tick,
    });
    let newest = a.stores.len() - 1;
    a.seen[me] = newest;
}

/// Fetch-modify: reads the newest store (RMW atomicity), continues its
/// release sequence, appends the new value. Returns the old value.
pub fn atomic_rmw(id: usize, ord: Ord3, f: impl FnOnce(u64) -> u64) -> u64 {
    let me = current();
    op_point(me, false);
    let mut ex = lock();
    if raw_mode(&ex) {
        let old = ex.atomics[id].stores.last().unwrap().value;
        ex.atomics[id].stores.push(Store {
            value: f(old),
            msg: VClock::default(),
            writer: me,
            tick: 0,
        });
        return old;
    }
    let newest = ex.atomics[id].stores.len() - 1;
    let old = ex.atomics[id].stores[newest].value;
    let read_msg = ex.atomics[id].stores[newest].msg;
    match ord.acq {
        Acq::Yes => ex.threads[me].clock.join(&read_msg),
        Acq::No => ex.threads[me].acq_pending.join(&read_msg),
    }
    if ord.sc == Sc::Yes {
        let sc = ex.sc;
        ex.threads[me].clock.join(&sc);
    }
    ex.threads[me].clock.0[me] += 1;
    let tick = ex.threads[me].clock.0[me];
    let mut msg = match ord.rel {
        Rel::Yes => ex.threads[me].clock,
        Rel::No => ex.threads[me].rel_fence,
    };
    // Release-sequence continuation: an RMW carries the prior message clock
    // forward even when itself relaxed.
    msg.join(&read_msg);
    if ord.sc == Sc::Yes {
        let clock = ex.threads[me].clock;
        ex.sc.join(&clock);
    }
    let a = &mut ex.atomics[id];
    a.stores.push(Store {
        value: f(old),
        msg,
        writer: me,
        tick,
    });
    let newest = a.stores.len() - 1;
    a.seen[me] = newest;
    old
}

/// Compare-exchange: success path is an RMW, failure path a load with the
/// failure ordering.
pub fn atomic_cas(id: usize, expected: u64, new: u64, ok: Ord3, err: Ord3) -> Result<u64, u64> {
    let me = current();
    op_point(me, false);
    let mut ex = lock();
    if raw_mode(&ex) {
        let cur = ex.atomics[id].stores.last().unwrap().value;
        if cur == expected {
            ex.atomics[id].stores.push(Store {
                value: new,
                msg: VClock::default(),
                writer: me,
                tick: 0,
            });
            return Ok(cur);
        }
        return Err(cur);
    }
    let newest = ex.atomics[id].stores.len() - 1;
    let cur = ex.atomics[id].stores[newest].value;
    let read_msg = ex.atomics[id].stores[newest].msg;
    if cur == expected {
        // Success: one RMW on the newest store.
        match ok.acq {
            Acq::Yes => ex.threads[me].clock.join(&read_msg),
            Acq::No => ex.threads[me].acq_pending.join(&read_msg),
        }
        if ok.sc == Sc::Yes {
            let sc = ex.sc;
            ex.threads[me].clock.join(&sc);
        }
        ex.threads[me].clock.0[me] += 1;
        let tick = ex.threads[me].clock.0[me];
        let mut msg = match ok.rel {
            Rel::Yes => ex.threads[me].clock,
            Rel::No => ex.threads[me].rel_fence,
        };
        msg.join(&read_msg);
        if ok.sc == Sc::Yes {
            let clock = ex.threads[me].clock;
            ex.sc.join(&clock);
        }
        let a = &mut ex.atomics[id];
        a.stores.push(Store {
            value: new,
            msg,
            writer: me,
            tick,
        });
        let newest = a.stores.len() - 1;
        a.seen[me] = newest;
        Ok(cur)
    } else {
        // Failure: a load of the newest store with the failure ordering.
        match err.acq {
            Acq::Yes => ex.threads[me].clock.join(&read_msg),
            Acq::No => ex.threads[me].acq_pending.join(&read_msg),
        }
        ex.atomics[id].seen[me] = newest;
        Err(cur)
    }
}

pub fn fence(ord: Ord3) {
    let me = current();
    op_point(me, false);
    let mut ex = lock();
    if raw_mode(&ex) {
        return;
    }
    if ord.acq == Acq::Yes {
        let pending = ex.threads[me].acq_pending;
        ex.threads[me].clock.join(&pending);
    }
    if ord.rel == Rel::Yes {
        ex.threads[me].rel_fence = ex.threads[me].clock;
    }
    if ord.sc == Sc::Yes {
        let sc = ex.sc;
        ex.threads[me].clock.join(&sc);
        let clock = ex.threads[me].clock;
        ex.sc.join(&clock);
        ex.threads[me].rel_fence = clock;
    }
}

// ---------------------------------------------------------------------------
// UnsafeCell race detection
// ---------------------------------------------------------------------------

pub fn cell_new() -> usize {
    let me = current();
    let mut ex = lock();
    let id = ex.cells.len();
    let mut st = CellState::default();
    if !raw_mode(&ex) {
        ex.threads[me].clock.0[me] += 1;
        st.writes[me] = ex.threads[me].clock.0[me];
    }
    ex.cells.push(st);
    id
}

pub fn cell_access(id: usize, write: bool) {
    let me = current();
    op_point(me, false);
    let mut ex = lock();
    if raw_mode(&ex) {
        return;
    }
    let clock = ex.threads[me].clock;
    let writes = ex.cells[id].writes;
    let reads = ex.cells[id].reads;
    for u in 0..MAX_THREADS {
        if u == me {
            continue;
        }
        if writes[u] > clock.0[u] {
            let kind = if write { "write" } else { "read" };
            fail(
                ex,
                format!(
                    "data race: concurrent {kind} of UnsafeCell #{id} by thread {me} \
                     races with un-synchronized write by thread {u}"
                ),
            );
        }
        if write && reads[u] > clock.0[u] {
            fail(
                ex,
                format!(
                    "data race: concurrent write of UnsafeCell #{id} by thread {me} \
                     races with un-synchronized read by thread {u}"
                ),
            );
        }
    }
    ex.threads[me].clock.0[me] += 1;
    let tick = ex.threads[me].clock.0[me];
    let c = &mut ex.cells[id];
    if write {
        c.writes[me] = tick;
    } else {
        c.reads[me] = tick;
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

pub struct JoinHandle<T> {
    tid: usize,
    os: std::thread::JoinHandle<Option<T>>,
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let me = current();
    op_point(me, false);
    let mut ex = lock();
    if !ex.running {
        drop(ex);
        panic!("loom::thread::spawn used outside of loom::model");
    }
    let tid = ex.threads.len();
    if tid >= MAX_THREADS {
        fail(ex, format!("loom: more than {MAX_THREADS} model threads"));
    }
    // Child inherits the parent's clock (spawn synchronizes-with the start
    // of the child).
    ex.threads[me].clock.0[me] += 1;
    let clock = ex.threads[me].clock;
    ex.threads.push(ThreadState {
        status: Status::Ready,
        clock,
        acq_pending: VClock::default(),
        rel_fence: VClock::default(),
    });
    drop(ex);
    let os = std::thread::spawn(move || {
        CURRENT.with(|c| c.set(Some(tid)));
        // Park until first scheduled.
        {
            let mut ex = lock();
            while ex.active != tid && ex.failure.is_none() && ex.running {
                ex = rt().1.wait(ex).unwrap_or_else(|e| e.into_inner());
            }
            if ex.failure.is_some() || !ex.running {
                drop(ex);
                finish_thread(tid);
                return None;
            }
        }
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        let value = match out {
            Ok(v) => Some(v),
            Err(payload) => {
                let msg = payload_msg(&payload);
                let ex = lock();
                if ex.failure.is_none() {
                    // First failure wins; fail() panics, catch locally so the
                    // OS thread still finishes cleanly.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        fail(ex, format!("loom model thread {tid} panicked: {msg}"))
                    }));
                }
                None
            }
        };
        finish_thread(tid);
        value
    });
    JoinHandle { tid, os }
}

fn payload_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Mark `tid` finished, wake joiners, hand control onward.
fn finish_thread(tid: usize) {
    let mut ex = lock();
    if ex.threads.len() <= tid {
        return;
    }
    ex.threads[tid].status = Status::Finished;
    for t in 0..ex.threads.len() {
        if ex.threads[t].status == Status::Joining(tid) {
            ex.threads[t].status = Status::Ready;
        }
    }
    if ex.failure.is_some() || !ex.running {
        rt().1.notify_all();
        return;
    }
    let others = ex.ready_others(tid);
    if let Some(&next) = others.first() {
        // Handing off at thread exit is not a preemption.
        ex.active = next;
    }
    rt().1.notify_all();
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        let me = current();
        op_point(me, false);
        let mut ex = lock();
        if !raw_mode(&ex) {
            while ex.threads[self.tid].status != Status::Finished {
                ex.threads[me].status = Status::Joining(self.tid);
                let others = ex.ready_others(me);
                match others.first() {
                    // Join-yield is voluntary: no preemption charge; branch
                    // over who runs if several are ready.
                    Some(_) => {
                        let next = if others.len() > 1 {
                            let idx = ex.explorer.choice(others.len());
                            others[idx]
                        } else {
                            others[0]
                        };
                        ex.active = next;
                        rt().1.notify_all();
                    }
                    None => {
                        if ex.threads[self.tid].status != Status::Finished {
                            fail(
                                ex,
                                format!(
                                    "deadlock: thread {me} joins {} but no thread is runnable",
                                    self.tid
                                ),
                            );
                        }
                    }
                }
                while ex.active != me && ex.failure.is_none() && ex.running {
                    ex = rt().1.wait(ex).unwrap_or_else(|e| e.into_inner());
                }
                if ex.failure.is_some() {
                    drop(ex);
                    panic!("{ABORT}");
                }
            }
            // Join synchronizes-with thread end.
            let child_clock = ex.threads[self.tid].clock;
            ex.threads[me].clock.join(&child_clock);
        }
        drop(ex);
        match self.os.join() {
            Ok(Some(v)) => Ok(v),
            Ok(None) => Err(Box::new("loom model thread failed".to_string())),
            Err(e) => Err(e),
        }
    }
}

pub fn yield_now() {
    let me = current();
    op_point(me, true);
}

// ---------------------------------------------------------------------------
// The model driver
// ---------------------------------------------------------------------------

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Exhaustively check `f` under every schedule within the preemption bound.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let _serial = model_lock();
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 3);
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 4_000_000) as u64;
    {
        let mut ex = lock();
        ex.explorer = Explorer {
            path: Vec::new(),
            pos: 0,
            iterations: 0,
        };
        ex.max_preemptions = max_preemptions;
        ex.max_steps = env_usize("LOOM_MAX_STEPS", 100_000);
    }
    loop {
        {
            let mut ex = lock();
            ex.reset_iteration();
        }
        CURRENT.with(|c| c.set(Some(0)));
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        if let Err(payload) = &out {
            let msg = payload_msg(payload.as_ref() as &(dyn std::any::Any + Send));
            let ex = lock();
            if ex.failure.is_none() {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fail(ex, msg)));
            }
        }
        // Drive remaining threads to completion (they abort fast on
        // failure; on success they may legitimately still have work).
        finish_root();
        CURRENT.with(|c| c.set(None));
        let (failure, exhausted, iterations) = {
            let mut ex = lock();
            ex.running = false;
            let failure = ex.failure.clone();
            let more = ex.explorer.advance();
            (failure, !more, ex.explorer.iterations)
        };
        if let Some(msg) = failure {
            if std::env::var_os("LOOM_LOG").is_some() {
                eprintln!("loom: failure after {iterations} executions");
            }
            // Prefer the recorded first failure (e.g. a data race on a
            // sibling thread) over the root's secondary ABORT unwind.
            match out {
                Err(payload)
                    if payload_msg(payload.as_ref() as &(dyn std::any::Any + Send)) == msg =>
                {
                    std::panic::resume_unwind(payload)
                }
                _ => panic!("{msg}"),
            }
        }
        if exhausted {
            if std::env::var_os("LOOM_LOG").is_some() {
                eprintln!("loom: explored {iterations} executions");
            }
            return;
        }
        if iterations >= max_iterations {
            panic!(
                "loom: exceeded LOOM_MAX_ITERATIONS={max_iterations} executions; \
                 shrink the model or raise the limit"
            );
        }
    }
}

/// Root-thread epilogue for one iteration: mark thread 0 finished and keep
/// scheduling the remaining threads until everything finished.
fn finish_root() {
    finish_thread(0);
    let mut ex = lock();
    loop {
        if ex.all_finished() {
            break;
        }
        if ex.failure.is_none() && ex.running {
            let ready = ex.ready_others(0);
            if ready.is_empty() {
                let ex2 = ex;
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    fail(
                        ex2,
                        "deadlock: no runnable thread but the model has not finished".to_string(),
                    )
                }));
                ex = lock();
                continue;
            }
            if !ready.contains(&ex.active) || ex.threads[ex.active].status != Status::Ready {
                ex.active = ready[0];
            }
            rt().1.notify_all();
        } else {
            rt().1.notify_all();
        }
        let (guard, _timeout) = rt()
            .1
            .wait_timeout(ex, std::time::Duration::from_millis(50))
            .unwrap_or_else(|e| e.into_inner());
        ex = guard;
    }
}

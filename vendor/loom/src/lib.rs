//! Offline stand-in for the [`loom`](https://crates.io/crates/loom)
//! permutation-testing model checker.
//!
//! The build container has no crates.io access, so this workspace ships a
//! small but *real* model checker with loom's API shape (the subset jet-rs
//! uses): [`model`] exhaustively explores thread interleavings (bounded by
//! `LOOM_MAX_PREEMPTIONS`), atomics follow an operational release/acquire
//! memory model in which relaxed loads can observe stale values, and
//! [`cell::UnsafeCell`] accesses are checked for data races with vector
//! clocks. A missing `Release`/`Acquire` pair in the SPSC queue therefore
//! *fails* under this checker exactly as it would under upstream loom — see
//! `rt` for the model's semantics and its (documented) approximations.
//!
//! Environment knobs: `LOOM_MAX_PREEMPTIONS` (default 3),
//! `LOOM_MAX_ITERATIONS`, `LOOM_MAX_STEPS`, `LOOM_LOG` (print the number of
//! explored executions).

pub mod rt;

/// Exhaustively run `f` under every thread interleaving within the
/// preemption bound, checking atomic-ordering visibility and `UnsafeCell`
/// data races. Panics on the first failing execution.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    rt::model(f)
}

pub mod thread {
    pub use crate::rt::JoinHandle;

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        crate::rt::spawn(f)
    }

    /// Voluntarily hand the schedule to another thread (models
    /// `std::thread::yield_now` / a spin-loop backoff point).
    pub fn yield_now() {
        crate::rt::yield_now()
    }
}

pub mod hint {
    /// Modeled as a yield: a spinning thread must let others run.
    pub fn spin_loop() {
        crate::rt::yield_now()
    }
}

pub mod sync {
    pub use self::arc::Arc;

    pub mod atomic {
        use crate::rt::{self, Acq, Ord3, Rel, Sc};

        pub use std::sync::atomic::Ordering;

        fn decompose_load(ord: Ordering) -> Ord3 {
            match ord {
                Ordering::Relaxed => Ord3 {
                    acq: Acq::No,
                    rel: Rel::No,
                    sc: Sc::No,
                },
                Ordering::Acquire => Ord3 {
                    acq: Acq::Yes,
                    rel: Rel::No,
                    sc: Sc::No,
                },
                Ordering::SeqCst => Ord3 {
                    acq: Acq::Yes,
                    rel: Rel::No,
                    sc: Sc::Yes,
                },
                Ordering::Release | Ordering::AcqRel => {
                    panic!("invalid ordering for a load: {ord:?}")
                }
                _ => panic!("unknown ordering"),
            }
        }

        fn decompose_store(ord: Ordering) -> Ord3 {
            match ord {
                Ordering::Relaxed => Ord3 {
                    acq: Acq::No,
                    rel: Rel::No,
                    sc: Sc::No,
                },
                Ordering::Release => Ord3 {
                    acq: Acq::No,
                    rel: Rel::Yes,
                    sc: Sc::No,
                },
                Ordering::SeqCst => Ord3 {
                    acq: Acq::No,
                    rel: Rel::Yes,
                    sc: Sc::Yes,
                },
                Ordering::Acquire | Ordering::AcqRel => {
                    panic!("invalid ordering for a store: {ord:?}")
                }
                _ => panic!("unknown ordering"),
            }
        }

        fn decompose_rmw(ord: Ordering) -> Ord3 {
            match ord {
                Ordering::Relaxed => Ord3 {
                    acq: Acq::No,
                    rel: Rel::No,
                    sc: Sc::No,
                },
                Ordering::Acquire => Ord3 {
                    acq: Acq::Yes,
                    rel: Rel::No,
                    sc: Sc::No,
                },
                Ordering::Release => Ord3 {
                    acq: Acq::No,
                    rel: Rel::Yes,
                    sc: Sc::No,
                },
                Ordering::AcqRel => Ord3 {
                    acq: Acq::Yes,
                    rel: Rel::Yes,
                    sc: Sc::No,
                },
                Ordering::SeqCst => Ord3 {
                    acq: Acq::Yes,
                    rel: Rel::Yes,
                    sc: Sc::Yes,
                },
                _ => panic!("unknown ordering"),
            }
        }

        /// C11 fence. `Acquire` promotes message clocks collected by earlier
        /// relaxed loads; `Release` stamps later relaxed stores.
        pub fn fence(ord: Ordering) {
            let o = match ord {
                Ordering::Acquire => Ord3 {
                    acq: Acq::Yes,
                    rel: Rel::No,
                    sc: Sc::No,
                },
                Ordering::Release => Ord3 {
                    acq: Acq::No,
                    rel: Rel::Yes,
                    sc: Sc::No,
                },
                Ordering::AcqRel => Ord3 {
                    acq: Acq::Yes,
                    rel: Rel::Yes,
                    sc: Sc::No,
                },
                Ordering::SeqCst => Ord3 {
                    acq: Acq::Yes,
                    rel: Rel::Yes,
                    sc: Sc::Yes,
                },
                _ => panic!("invalid ordering for a fence: {ord:?}"),
            };
            rt::fence(o)
        }

        macro_rules! atomic_int {
            ($name:ident, $t:ty) => {
                /// Model-checked atomic. Holds no data: the value lives in
                /// the model's per-location store history.
                #[derive(Debug)]
                pub struct $name {
                    id: usize,
                }

                impl $name {
                    pub fn new(v: $t) -> Self {
                        $name {
                            id: rt::atomic_new(v as u64),
                        }
                    }

                    pub fn load(&self, ord: Ordering) -> $t {
                        rt::atomic_load(self.id, decompose_load(ord)) as $t
                    }

                    pub fn store(&self, v: $t, ord: Ordering) {
                        rt::atomic_store(self.id, v as u64, decompose_store(ord))
                    }

                    pub fn swap(&self, v: $t, ord: Ordering) -> $t {
                        rt::atomic_rmw(self.id, decompose_rmw(ord), |_| v as u64) as $t
                    }

                    pub fn fetch_add(&self, v: $t, ord: Ordering) -> $t {
                        rt::atomic_rmw(self.id, decompose_rmw(ord), |old| {
                            (old as $t).wrapping_add(v) as u64
                        }) as $t
                    }

                    pub fn fetch_sub(&self, v: $t, ord: Ordering) -> $t {
                        rt::atomic_rmw(self.id, decompose_rmw(ord), |old| {
                            (old as $t).wrapping_sub(v) as u64
                        }) as $t
                    }

                    pub fn compare_exchange(
                        &self,
                        expected: $t,
                        new: $t,
                        ok: Ordering,
                        err: Ordering,
                    ) -> Result<$t, $t> {
                        rt::atomic_cas(
                            self.id,
                            expected as u64,
                            new as u64,
                            decompose_rmw(ok),
                            decompose_load(err),
                        )
                        .map(|v| v as $t)
                        .map_err(|v| v as $t)
                    }

                    pub fn compare_exchange_weak(
                        &self,
                        expected: $t,
                        new: $t,
                        ok: Ordering,
                        err: Ordering,
                    ) -> Result<$t, $t> {
                        self.compare_exchange(expected, new, ok, err)
                    }
                }
            };
        }

        atomic_int!(AtomicUsize, usize);
        atomic_int!(AtomicU64, u64);
        atomic_int!(AtomicU32, u32);

        /// Model-checked atomic bool (stored as 0/1 in the model).
        #[derive(Debug)]
        pub struct AtomicBool {
            id: usize,
        }

        impl AtomicBool {
            pub fn new(v: bool) -> Self {
                AtomicBool {
                    id: rt::atomic_new(v as u64),
                }
            }

            pub fn load(&self, ord: Ordering) -> bool {
                rt::atomic_load(self.id, decompose_load(ord)) != 0
            }

            pub fn store(&self, v: bool, ord: Ordering) {
                rt::atomic_store(self.id, v as u64, decompose_store(ord))
            }

            pub fn swap(&self, v: bool, ord: Ordering) -> bool {
                rt::atomic_rmw(self.id, decompose_rmw(ord), |_| v as u64) != 0
            }
        }
    }

    mod arc {
        use super::atomic::{AtomicUsize, Ordering};
        use std::ops::Deref;

        struct Inner<T: ?Sized> {
            /// Shadow refcount: a *tracked* atomic mirroring the real one so
            /// the model records the release/acquire edges `Arc` provides
            /// (last-drop synchronizes with every earlier drop). The real
            /// memory management is still `std::sync::Arc`.
            shadow: AtomicUsize,
            value: T,
        }

        /// Model-aware `Arc`: defers storage to `std::sync::Arc` but plays
        /// the refcount through the checker so structures dropped through an
        /// `Arc` do not produce false data-race reports.
        pub struct Arc<T: ?Sized> {
            inner: std::sync::Arc<Inner<T>>,
        }

        impl<T> Arc<T> {
            pub fn new(value: T) -> Self {
                Arc {
                    inner: std::sync::Arc::new(Inner {
                        shadow: AtomicUsize::new(1),
                        value,
                    }),
                }
            }
        }

        impl<T: ?Sized> Clone for Arc<T> {
            fn clone(&self) -> Self {
                self.inner.shadow.fetch_add(1, Ordering::Relaxed);
                Arc {
                    inner: self.inner.clone(),
                }
            }
        }

        impl<T: ?Sized> Deref for Arc<T> {
            type Target = T;
            fn deref(&self) -> &T {
                &self.inner.value
            }
        }

        impl<T: ?Sized> Drop for Arc<T> {
            fn drop(&mut self) {
                if self.inner.shadow.fetch_sub(1, Ordering::Release) == 1 {
                    // Last reference: acquire everything the other droppers
                    // released before `T::drop` runs (via the inner Arc).
                    super::atomic::fence(Ordering::Acquire);
                }
            }
        }

        // SAFETY: same bounds as `std::sync::Arc` — the shadow counter adds
        // no thread affinity.
        unsafe impl<T: ?Sized + Send + Sync> Send for Arc<T> {}
        // SAFETY: as above.
        unsafe impl<T: ?Sized + Send + Sync> Sync for Arc<T> {}
    }
}

pub mod cell {
    use crate::rt;

    /// Model-checked `UnsafeCell`: every access is declared to the race
    /// detector. Mirrors loom's closure-based API (`with` / `with_mut`).
    #[derive(Debug)]
    pub struct UnsafeCell<T> {
        id: usize,
        data: std::cell::UnsafeCell<T>,
    }

    impl<T> UnsafeCell<T> {
        pub fn new(value: T) -> Self {
            UnsafeCell {
                id: rt::cell_new(),
                data: std::cell::UnsafeCell::new(value),
            }
        }

        /// Immutable access: races with concurrent writes are detected.
        #[inline]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            rt::cell_access(self.id, false);
            f(self.data.get() as *const T)
        }

        /// Mutable access: races with any concurrent access are detected.
        #[inline]
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            rt::cell_access(self.id, true);
            f(self.data.get())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::cell::UnsafeCell;
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    /// Test-only cell shared across threads (the tests provide the
    /// synchronization under scrutiny).
    struct RacyCell(UnsafeCell<u64>);
    // SAFETY: accesses are checked by the model's race detector; the whole
    // point of these tests is to validate that checking.
    unsafe impl Sync for RacyCell {}
    unsafe impl Send for RacyCell {}

    #[test]
    fn message_passing_release_acquire_is_race_free() {
        super::model(|| {
            let pair = Arc::new((AtomicUsize::new(0), RacyCell(UnsafeCell::new(0u64))));
            let p2 = pair.clone();
            let t = super::thread::spawn(move || {
                p2.1 .0.with_mut(|p| unsafe { *p = 42 });
                p2.0.store(1, Ordering::Release);
            });
            let (flag, cell) = &*pair;
            if flag.load(Ordering::Acquire) == 1 {
                let v = cell.0.with(|p| unsafe { *p });
                assert_eq!(v, 42);
            }
            t.join().unwrap();
        });
    }

    #[test]
    #[should_panic(expected = "data race")]
    fn message_passing_relaxed_store_is_a_race() {
        super::model(|| {
            let pair = Arc::new((AtomicUsize::new(0), RacyCell(UnsafeCell::new(0u64))));
            let p2 = pair.clone();
            let t = super::thread::spawn(move || {
                p2.1 .0.with_mut(|p| unsafe { *p = 42 });
                // BUG under test: Relaxed publish does not order the cell
                // write before the flag for the reader.
                p2.0.store(1, Ordering::Relaxed);
            });
            let (flag, cell) = &*pair;
            if flag.load(Ordering::Acquire) == 1 {
                let _ = cell.0.with(|p| unsafe { *p });
            }
            t.join().unwrap();
        });
    }

    #[test]
    #[should_panic(expected = "data race")]
    fn message_passing_relaxed_load_is_a_race() {
        super::model(|| {
            let pair = Arc::new((AtomicUsize::new(0), RacyCell(UnsafeCell::new(0u64))));
            let p2 = pair.clone();
            let t = super::thread::spawn(move || {
                p2.1 .0.with_mut(|p| unsafe { *p = 42 });
                p2.0.store(1, Ordering::Release);
            });
            let (flag, cell) = &*pair;
            if flag.load(Ordering::Relaxed) == 1 {
                let _ = cell.0.with(|p| unsafe { *p });
            }
            t.join().unwrap();
        });
    }

    #[test]
    fn relaxed_loads_observe_stale_values() {
        // The checker must explore executions where an Acquire load still
        // reads an *older* store (nothing forces freshness).
        let saw_stale = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let saw_fresh = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let (stale, fresh) = (saw_stale.clone(), saw_fresh.clone());
        super::model(move || {
            let flag = Arc::new(AtomicUsize::new(0));
            let f2 = flag.clone();
            let t = super::thread::spawn(move || {
                f2.store(1, Ordering::Release);
            });
            match flag.load(Ordering::Acquire) {
                0 => stale.store(true, std::sync::atomic::Ordering::SeqCst),
                _ => fresh.store(true, std::sync::atomic::Ordering::SeqCst),
            }
            t.join().unwrap();
        });
        assert!(saw_stale.load(std::sync::atomic::Ordering::SeqCst));
        assert!(saw_fresh.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn arc_drop_synchronizes_last_owner() {
        super::model(|| {
            let cell = Arc::new(RacyCell(UnsafeCell::new(0u64)));
            let c2 = cell.clone();
            let t = super::thread::spawn(move || {
                c2.0.with_mut(|p| unsafe { *p = 7 });
                // c2 dropped here.
            });
            t.join().unwrap();
            drop(cell); // last owner: must not report a race with the write
        });
    }

    #[test]
    fn rmw_is_atomic_across_threads() {
        super::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = n.clone();
            let t = super::thread::spawn(move || {
                n2.fetch_add(1, Ordering::Relaxed);
            });
            n.fetch_add(1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
        });
    }
}
